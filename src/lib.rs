//! # product-synthesis
//!
//! A from-scratch Rust reproduction of Nguyen, Fuxman, Paparizos, Freire &
//! Agrawal, *Synthesizing Products for Online Catalogs*, PVLDB 4(7), 2011.
//!
//! Given merchant offers that cannot be matched to any existing catalog
//! product, the pipeline synthesizes *new* structured product instances:
//!
//! 1. **Web-page attribute extraction** ([`extract`]) scrapes two-column
//!    specification tables from offer landing pages;
//! 2. **Offline learning** ([`synthesis::offline`]) learns attribute
//!    correspondences `⟨Ap, Ao, M, C⟩` from historical offer-to-product
//!    matches, with automatically constructed training data;
//! 3. **Schema reconciliation, clustering and value fusion**
//!    ([`synthesis::runtime`]) translate offers into catalog vocabulary,
//!    group them by key attributes (MPN/UPC) and fuse each cluster into a
//!    single specification.
//!
//! This facade re-exports the workspace crates under one roof. See the
//! `examples/` directory for end-to-end usage, `pse-bench` for experiment
//! drivers regenerating every table and figure of the paper, and DESIGN.md
//! for the system inventory.
//!
//! ```
//! use product_synthesis::datagen::{World, WorldConfig};
//! use product_synthesis::synthesis::{FnProvider, OfflineLearner, RuntimePipeline};
//!
//! // A miniature shopping world standing in for Bing Shopping data.
//! let world = World::generate(WorldConfig::tiny());
//! let provider = FnProvider(|o: &product_synthesis::core::Offer| world.page_spec(o.id));
//!
//! // Offline: learn attribute correspondences from historical matches.
//! let outcome = OfflineLearner::new()
//!     .learn(&world.catalog, &world.offers, &world.historical, &provider);
//!
//! // Runtime: synthesize products from the offers.
//! let result = RuntimePipeline::new(outcome.correspondences)
//!     .process(&world.catalog, &world.offers, &provider);
//! assert!(!result.products.is_empty());
//! ```

pub use pse_assignment as assignment;
pub use pse_baselines as baselines;
pub use pse_core as core;
pub use pse_datagen as datagen;
pub use pse_eval as eval;
pub use pse_extract as extract;
pub use pse_html as html;
pub use pse_ml as ml;
pub use pse_query as query;
pub use pse_serve as serve;
pub use pse_store as store;
pub use pse_synthesis as synthesis;
pub use pse_text as text;
pub use pse_wal as wal;
