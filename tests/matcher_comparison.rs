//! Cross-crate integration of the matcher comparison (the Figures 6–8
//! machinery): every matcher runs on the same world and is scored by the
//! same oracle, and the paper's qualitative orderings hold.

use product_synthesis::baselines::{
    ComaConfig, ComaMatcher, ComaStrategy, DumasMatcher, NaiveBayesMatcher, SingleFeature,
    SingleFeatureScorer,
};
use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::eval::correspondence::labeled_curve;
use product_synthesis::synthesis::{
    ExtractingProvider, OfflineConfig, OfflineLearner, SpecProvider,
};

fn world() -> World {
    World::generate(WorldConfig {
        num_offers: 1_200,
        num_merchants: 10,
        leaf_categories_per_top: [2, 4, 1, 1],
        products_per_category: 30,
        ..WorldConfig::default()
    })
}

/// Cache extracted specs so each matcher sees identical inputs.
fn cached_provider(world: &World) -> impl SpecProvider + '_ {
    let extracting = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    let specs: Vec<_> = world.offers.iter().map(|o| extracting.spec(o)).collect();
    product_synthesis::synthesis::FnProvider(move |o: &Offer| specs[o.id.index()].clone())
}

#[test]
fn classifier_beats_single_features_at_matched_coverage() {
    let world = world();
    let provider = cached_provider(&world);
    let ours =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let js = SingleFeatureScorer::new(SingleFeature::JsMc).score_candidates(
        &world.catalog,
        &world.offers,
        &world.historical,
        &provider,
    );
    let jaccard = SingleFeatureScorer::new(SingleFeature::JaccardMc).score_candidates(
        &world.catalog,
        &world.offers,
        &world.historical,
        &provider,
    );

    let ours_curve = labeled_curve("ours", &ours.scored, &world.truth);
    let js_curve = labeled_curve("js", &js, &world.truth);
    let jac_curve = labeled_curve("jaccard", &jaccard, &world.truth);

    // Figure 6's claim: at a fixed target precision the classifier covers
    // at least as much as either single feature.
    for precision in [0.95, 0.9] {
        let ours_cov = ours_curve.coverage_at_precision(precision);
        assert!(
            ours_cov >= js_curve.coverage_at_precision(precision),
            "JS-MC beat the classifier at precision {precision}"
        );
        assert!(
            ours_cov >= jac_curve.coverage_at_precision(precision),
            "Jaccard-MC beat the classifier at precision {precision}"
        );
    }
}

#[test]
fn conditioning_beats_no_matching_at_high_precision() {
    let world = world();
    let provider = cached_provider(&world);
    let ours =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let unconditioned = OfflineLearner::with_config(OfflineConfig {
        match_conditioning: false,
        ..OfflineConfig::default()
    })
    .learn(&world.catalog, &world.offers, &world.historical, &provider);

    let ours_curve = labeled_curve("ours", &ours.scored, &world.truth);
    let flat_curve = labeled_curve("no-matching", &unconditioned.scored, &world.truth);
    let p = 0.95;
    assert!(
        ours_curve.coverage_at_precision(p) > flat_curve.coverage_at_precision(p),
        "conditioning should dominate at precision {p}: {} vs {}",
        ours_curve.coverage_at_precision(p),
        flat_curve.coverage_at_precision(p)
    );
}

#[test]
fn all_baselines_produce_scorable_output() {
    let world = world();
    let provider = cached_provider(&world);

    let nb = NaiveBayesMatcher::new().score_candidates(&world.catalog, &world.offers, &provider);
    let dumas = DumasMatcher::new().score_candidates(
        &world.catalog,
        &world.offers,
        &world.historical,
        &provider,
    );
    let coma = ComaMatcher::new(ComaConfig::new(ComaStrategy::Combined)).score_candidates(
        &world.catalog,
        &world.offers,
        &provider,
    );

    for (name, scored) in [("nb", &nb), ("dumas", &dumas), ("coma", &coma)] {
        assert!(!scored.is_empty(), "{name} produced no candidates");
        let curve = labeled_curve(name, scored, &world.truth);
        assert!(curve.evaluated > 0, "{name} evaluated nothing");
        // Every matcher must clear a random-guess bar on its own output.
        assert!(
            curve.overall_precision() > 0.1,
            "{name} precision {} is below sanity",
            curve.overall_precision()
        );
    }

    // The matchers that exploit instance-level alignment (ours, DUMAS) are
    // more precise overall than the purely marginal COMA combined matcher.
    let ours =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let ours_curve = labeled_curve("ours", &ours.scored, &world.truth);
    let coma_curve = labeled_curve("coma", &coma, &world.truth);
    let p = 0.9;
    assert!(
        ours_curve.coverage_at_precision(p) >= coma_curve.coverage_at_precision(p),
        "ours {} vs coma {}",
        ours_curve.coverage_at_precision(p),
        coma_curve.coverage_at_precision(p)
    );
}

#[test]
fn coma_delta_restricts_candidates() {
    let world = world();
    let provider = cached_provider(&world);
    let tight = ComaMatcher::new(ComaConfig::new(ComaStrategy::Combined)).score_candidates(
        &world.catalog,
        &world.offers,
        &provider,
    );
    let loose = ComaMatcher::new(ComaConfig::with_unbounded_delta(ComaStrategy::Combined))
        .score_candidates(&world.catalog, &world.offers, &provider);
    assert!(tight.len() < loose.len(), "δ=0.01 must prune candidates");

    // Figure 9's claim: the default δ keeps higher-precision output overall.
    let tight_curve = labeled_curve("tight", &tight, &world.truth);
    let loose_curve = labeled_curve("loose", &loose, &world.truth);
    assert!(tight_curve.overall_precision() > loose_curve.overall_precision());
}
