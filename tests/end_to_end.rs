//! End-to-end integration: world generation → landing pages → extraction →
//! offline learning → reconciliation → clustering → fusion → oracle
//! evaluation, across crate boundaries.

use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::eval::synthesis_eval::{evaluate_synthesis, per_top_level};
use product_synthesis::synthesis::{
    ExtractingProvider, OfflineLearner, RuntimePipeline, SpecProvider,
};

fn small_world() -> World {
    World::generate(WorldConfig {
        num_offers: 800,
        num_merchants: 8,
        leaf_categories_per_top: [2, 3, 1, 1],
        products_per_category: 25,
        ..WorldConfig::default()
    })
}

#[test]
fn full_pipeline_through_html_extraction() {
    let world = small_world();
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));

    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    assert!(outcome.model.is_some(), "classifier must train at this scale");
    assert!(outcome.stats.training_positives > 0);
    assert!(outcome.correspondences.len() > 50);

    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let result = RuntimePipeline::new(outcome.correspondences).process(
        &world.catalog,
        &unmatched,
        &provider,
    );

    assert!(result.offers_reconciled > 0);
    assert!(!result.products.is_empty());
    assert!(result.offers_clustered <= result.offers_reconciled);

    // Synthesized specs conform to catalog schemas.
    for p in &result.products {
        let schema = world.catalog.taxonomy().schema(p.category);
        for pair in p.spec.iter() {
            assert!(schema.contains(&pair.name), "{} not in schema", pair.name);
        }
        assert!(!p.offers.is_empty());
    }

    // Oracle quality: the pipeline must be meaningfully precise end to end,
    // even through noisy HTML extraction.
    let quality = evaluate_synthesis(&world, &result.products);
    assert!(
        quality.attribute_precision() > 0.75,
        "attribute precision {}",
        quality.attribute_precision()
    );

    // Per-top-level rows partition the products (Table 3 invariant).
    let rows = per_top_level(&world, &result.products);
    let total: usize = rows.iter().map(|(_, q)| q.products).sum();
    assert_eq!(total, result.products.len());
}

#[test]
fn pipeline_is_deterministic() {
    let run = || {
        let world = small_world();
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let outcome = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let result = RuntimePipeline::new(outcome.correspondences).process(
            &world.catalog,
            &world.offers,
            &provider,
        );
        let mut keys: Vec<String> =
            result.products.iter().map(|p| format!("{}:{}", p.category, p.key_value)).collect();
        keys.sort();
        (result.products.len(), result.total_attributes(), keys)
    };
    assert_eq!(run(), run());
}

#[test]
fn clusters_group_cross_merchant_offers_for_same_product() {
    let world = small_world();
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let result = RuntimePipeline::new(outcome.correspondences).process(
        &world.catalog,
        &world.offers,
        &provider,
    );
    // Some cluster must span multiple merchants (the whole point of schema
    // reconciliation on key attributes).
    let cross_merchant = result.products.iter().any(|p| {
        let merchants: std::collections::HashSet<_> =
            p.offers.iter().map(|o| world.offers[o.index()].merchant).collect();
        merchants.len() > 1
    });
    assert!(cross_merchant, "expected at least one cross-merchant cluster");

    // Clusters should be overwhelmingly pure (one true product each).
    let mut pure = 0usize;
    let mut impure = 0usize;
    for p in &result.products {
        let products: std::collections::HashSet<_> =
            p.offers.iter().map(|o| world.truth.product_of(*o)).collect();
        if products.len() == 1 {
            pure += 1;
        } else {
            impure += 1;
        }
    }
    assert!(
        pure as f64 / (pure + impure).max(1) as f64 > 0.95,
        "cluster purity too low: {pure} pure vs {impure} impure"
    );
}

#[test]
fn reconciliation_filters_extraction_noise() {
    let world = World::generate(WorldConfig {
        num_offers: 600,
        noise_table_probability: 1.0, // every page carries a noisy table
        ..WorldConfig::tiny()
    });
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);

    // Raw extraction picks up reviewer-name pairs; reconciled offers must
    // contain catalog attribute names only.
    let mut checked = 0;
    for offer in world.offers.iter().take(100) {
        let spec = provider.spec(offer);
        let reconciled = product_synthesis::synthesis::runtime::reconcile(
            offer.id,
            offer.merchant,
            offer.category.unwrap(),
            &spec,
            &outcome.correspondences,
        );
        let schema = world.catalog.taxonomy().schema(offer.category.unwrap());
        for (attr, _) in reconciled.pairs() {
            assert!(schema.contains(attr), "non-schema attribute {attr} survived");
            checked += 1;
        }
    }
    assert!(checked > 0);
}
