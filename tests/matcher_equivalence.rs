//! The inverted-index title matcher and the interned DUMAS scorer are pure
//! optimizations: their outputs must be **byte-identical** to the exhaustive
//! / string-path references, at every thread count.

use product_synthesis::baselines::DumasMatcher;
use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::synthesis::{ExtractingProvider, SpecProvider, TitleMatcher};

fn world() -> World {
    World::generate(WorldConfig {
        num_offers: 1_500,
        num_merchants: 12,
        leaf_categories_per_top: [2, 4, 1, 1],
        products_per_category: 30,
        ..WorldConfig::default()
    })
}

/// Cache extracted specs so both matcher paths see identical inputs.
fn cached_specs(world: &World) -> Vec<product_synthesis::core::Spec> {
    let extracting = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    world.offers.iter().map(|o| extracting.spec(o)).collect()
}

#[test]
fn blocked_matcher_is_byte_identical_to_naive_scan() {
    let world = world();
    let specs = cached_specs(&world);
    let matcher = TitleMatcher::new(&world.catalog);
    let mut matched = 0usize;
    for offer in &world.offers {
        let spec = &specs[offer.id.index()];
        let blocked = matcher.match_offer(offer, spec);
        let naive = matcher.match_offer_naive(offer, spec);
        match (&blocked, &naive) {
            (None, None) => {}
            (Some(b), Some(n)) => {
                assert_eq!(b.product, n.product, "offer {:?}", offer.id);
                assert_eq!(b.kind, n.kind, "offer {:?}", offer.id);
                assert_eq!(
                    b.similarity.to_bits(),
                    n.similarity.to_bits(),
                    "offer {:?}: blocked {} vs naive {}",
                    offer.id,
                    b.similarity,
                    n.similarity
                );
                matched += 1;
            }
            _ => panic!("offer {:?}: blocked={blocked:?} naive={naive:?}", offer.id),
        }
    }
    // The world is built so the matcher actually matches things; an
    // all-`None` run would make the equivalence vacuous.
    assert!(matched > 100, "only {matched} offers matched");
}

#[test]
fn dumas_interned_path_matches_string_reference() {
    let world = world();
    let specs = cached_specs(&world);
    let provider =
        product_synthesis::synthesis::FnProvider(|o: &Offer| specs[o.id.index()].clone());
    let dumas = DumasMatcher::default();
    let fast = dumas.score_candidates(&world.catalog, &world.offers, &world.historical, &provider);
    let reference = dumas.score_candidates_reference(
        &world.catalog,
        &world.offers,
        &world.historical,
        &provider,
    );
    assert_eq!(fast.len(), reference.len());
    for (f, r) in fast.iter().zip(&reference) {
        assert_eq!(f.catalog_attribute, r.catalog_attribute);
        assert_eq!(f.merchant_attribute, r.merchant_attribute);
        assert_eq!(f.merchant, r.merchant);
        assert_eq!(f.category, r.category);
        assert_eq!(f.is_name_identity, r.is_name_identity);
        assert_eq!(f.score.to_bits(), r.score.to_bits(), "{f:?} vs {r:?}");
    }
    assert!(!fast.is_empty());
}

#[test]
fn matcher_outputs_identical_across_thread_counts() {
    let world = world();
    let specs = cached_specs(&world);
    let run = || {
        let matcher = TitleMatcher::new(&world.catalog);
        let matches: Vec<_> = world
            .offers
            .iter()
            .filter_map(|o| matcher.match_offer(o, &specs[o.id.index()]))
            .map(|m| (m.offer, m.product, m.similarity.to_bits(), m.kind))
            .collect();
        let provider =
            product_synthesis::synthesis::FnProvider(|o: &Offer| specs[o.id.index()].clone());
        let dumas = DumasMatcher::default()
            .score_candidates(&world.catalog, &world.offers, &world.historical, &provider)
            .into_iter()
            .map(|c| format!("{:?}:{}", c, c.score.to_bits()))
            .collect::<Vec<_>>();
        (matches, dumas)
    };
    let (m1, d1) = pse_par::with_threads(1, run);
    let (m2, d2) = pse_par::with_threads(2, run);
    let (m4, d4) = pse_par::with_threads(4, run);
    assert_eq!(m1, m2);
    assert_eq!(m1, m4);
    assert_eq!(d1, d2);
    assert_eq!(d1, d4);
}
