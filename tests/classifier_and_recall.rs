//! Integration tests for the title-based category classifier (Section 2)
//! and the Table 4 recall protocol.

use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::eval::recall::recall_report;
use product_synthesis::synthesis::category::TitleClassifier;
use product_synthesis::synthesis::{ExtractingProvider, OfflineLearner, RuntimePipeline};

#[test]
fn title_classifier_recovers_categories() {
    let world = World::generate(WorldConfig { num_offers: 1_000, ..WorldConfig::default() });
    // Train on historical offers, evaluate on the rest.
    let (train, test): (Vec<&Offer>, Vec<&Offer>) =
        world.offers.iter().partition(|o| world.historical.product_of(o.id).is_some());
    let classifier =
        TitleClassifier::train(train.iter().map(|o| (o.title.as_str(), o.category.unwrap())));
    let accuracy =
        classifier.accuracy(test.iter().map(|o| (o.title.as_str(), o.category.unwrap())));
    assert!(accuracy > 0.7, "category classifier accuracy {accuracy} too low");
}

#[test]
fn pipeline_recovers_from_missing_categories_via_classifier() {
    let world = World::generate(WorldConfig::tiny());
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);

    // Strip categories from half the offers, then restore them with the
    // classifier before running the pipeline.
    let classifier = TitleClassifier::train_from_offers(&world.offers);
    let mut offers = world.offers.clone();
    for (i, o) in offers.iter_mut().enumerate() {
        if i % 2 == 0 {
            o.category = None;
        }
    }
    for o in offers.iter_mut() {
        if o.category.is_none() {
            o.category = classifier.classify(&o.title).map(|(c, _)| c);
        }
    }
    let result =
        RuntimePipeline::new(outcome.correspondences).process(&world.catalog, &offers, &provider);
    assert!(
        !result.products.is_empty(),
        "pipeline should still synthesize with classifier-restored categories"
    );
}

#[test]
fn recall_grows_with_offer_set_size() {
    let world = World::generate(WorldConfig {
        num_offers: 2_500,
        num_merchants: 10,
        leaf_categories_per_top: [1, 2, 1, 1],
        products_per_category: 20,
        ..WorldConfig::default()
    });
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let result = RuntimePipeline::new(outcome.correspondences).process(
        &world.catalog,
        &world.offers,
        &provider,
    );
    let report = recall_report(&world, &result.products, 10);
    assert!(report.large.products > 0, "need some products with >= 10 offers");
    assert!(report.small.products > 0, "need some products with < 10 offers");

    // Table 4's shape: bigger offer sets pool more evidence and synthesize
    // more attributes; recall is at least as high.
    assert!(report.large.avg_pooled_pairs() > report.small.avg_pooled_pairs());
    assert!(report.large.avg_synthesized() >= report.small.avg_synthesized());
    assert!(
        report.large.recall() >= report.small.recall() - 0.05,
        "large-set recall {} should not trail small-set recall {}",
        report.large.recall(),
        report.small.recall()
    );
    // Precision stays comparable across buckets (both high).
    assert!(report.large.quality.attribute_precision() > 0.7);
    assert!(report.small.quality.attribute_precision() > 0.7);
}
