//! Concurrency smoke for the HTTP serving layer (ISSUE 5): one server on
//! an ephemeral port, 8 client threads mixing reads and ingests. No
//! request may come back with a 5xx other than a deliberate
//! backpressure 503 (retried), no worker may die, and the final served
//! state must equal a sequential replay of the same batches into a single
//! `ProductStore`.
//!
//! The ingest batches are cluster-disjoint (no product cluster spans two
//! threads' batches), so the final state is independent of the arrival
//! interleaving — which is exactly what makes "equals sequential replay"
//! a meaningful assertion under concurrency.

use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Duration;

use product_synthesis::core::{CorrespondenceSet, Offer, Spec};
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::serve::{http_request, shard_of, ServerConfig, ShardedStore};
use product_synthesis::store::ProductStore;
use product_synthesis::synthesis::runtime::{reconcile_batch, KeyAttributes};
use product_synthesis::synthesis::{
    ExtractingProvider, FnProvider, OfflineLearner, RuntimeConfig, SpecProvider,
};

const CLIENT_THREADS: usize = 8;

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    /// Cluster-disjoint ingest batches, one per client thread, with specs
    /// materialized into the offers (the `POST /ingest` wire format).
    batches: Vec<Vec<Offer>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .map(|o| Offer { spec: provider.spec(o), ..o.clone() })
            .collect();
        assert!(corpus.len() >= 20, "tiny world must leave a usable unmatched corpus");

        // Partition by cluster key so no cluster spans two batches: offers
        // of one cluster always land with the same thread.
        let keys = KeyAttributes::new(&RuntimeConfig::default().key_attributes);
        let reconciled = reconcile_batch(&corpus, &offline.correspondences, &spec_provider());
        let slot_of: HashMap<u64, usize> = reconciled
            .iter()
            .filter_map(|r| {
                let (attr, value) = keys.route(r)?;
                Some((r.offer.0, shard_of(&(r.category, attr, value), CLIENT_THREADS)))
            })
            .collect();
        let mut batches: Vec<Vec<Offer>> = vec![Vec::new(); CLIENT_THREADS];
        for offer in &corpus {
            let slot = slot_of.get(&offer.id.0).copied().unwrap_or(0);
            batches[slot].push(offer.clone());
        }
        Fixture { world, correspondences: offline.correspondences, batches }
    })
}

fn spec_provider() -> FnProvider<impl Fn(&Offer) -> Spec + Sync> {
    FnProvider(|o: &Offer| o.spec.clone())
}

#[test]
fn concurrent_clients_reach_the_sequential_state() {
    let f = fixture();
    let store = ShardedStore::new(f.correspondences.clone(), 4);
    let handle =
        product_synthesis::serve::start(store, f.world.catalog.clone(), ServerConfig::default())
            .expect("server starts");
    let addr = handle.addr().to_string();

    // 8 clients: each interleaves reads with ingesting its own batch in
    // two halves, retrying on deliberate backpressure 503s.
    std::thread::scope(|scope| {
        for (i, batch) in f.batches.iter().enumerate() {
            let addr = addr.clone();
            scope.spawn(move || {
                let read = |path: &str| {
                    let (status, body) =
                        http_request(&addr, "GET", path, None).expect("read request completes");
                    assert!(
                        matches!(status, 200 | 404 | 503),
                        "unexpected status {status} for GET {path}: {body}"
                    );
                };
                let ingest = |offers: &[Offer]| {
                    let body = serde_json::to_string(&offers.to_vec()).expect("offers serialize");
                    loop {
                        let (status, reply) = http_request(&addr, "POST", "/ingest", Some(&body))
                            .expect("ingest request completes");
                        match status {
                            200 => break,
                            503 => std::thread::sleep(Duration::from_millis(10)),
                            other => panic!("ingest must not fail: {other} {reply}"),
                        }
                    }
                };
                read("/healthz");
                let (first, second) = batch.split_at(batch.len() / 2);
                ingest(first);
                read(&format!("/products/{}", i + 1));
                read("/product?category=1&attr=MPN&key=nonexistent-key");
                ingest(second);
                read("/metrics");
            });
        }
    });

    // Sequential replay of the same batches into one single-threaded
    // store must produce the exact served state.
    let mut sequential = ProductStore::new(f.correspondences.clone());
    for batch in &f.batches {
        sequential.ingest(&f.world.catalog, batch, &spec_provider());
    }
    let served = handle.shutdown().expect("clean shutdown");
    assert_eq!(
        serde_json::to_string(&served.products()).expect("products serialize"),
        serde_json::to_string(&sequential.products()).expect("products serialize"),
        "concurrent HTTP ingest must equal the sequential replay"
    );
    assert_eq!(served.snapshot_json(), sequential.snapshot_json());
}
