//! Crash-point durability (ISSUE 8 tentpole): an arbitrary stream of
//! durable ingests, retracts, and compaction folds, crashed by truncating
//! the WAL at an arbitrary byte, must recover to exactly the
//! durably-committed prefix — byte-identical (via `snapshot_json`) to a
//! plain sequential [`ProductStore`] fed the same committed operations.
//!
//! The corpus is the same "Table-2" set the experiment drivers use: the
//! offers of a generated world that match no historical product.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use std::time::{Duration, Instant};

use product_synthesis::core::{CorrespondenceSet, Offer, OfferId, Spec};
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::serve::{durable_ingest, durable_retract, open_durable, ShardedStore};
use product_synthesis::store::ProductStore;
use product_synthesis::synthesis::runtime::reconcile_batch;
use product_synthesis::synthesis::{ExtractingProvider, FnProvider, OfflineLearner, SpecProvider};
use product_synthesis::wal::{
    read_wal, recover, Durability, DurabilityConfig, GroupCommitConfig, WalRecord, WAL_HEADER_LEN,
};
use proptest::prelude::*;

struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
    specs: HashMap<u64, Spec>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .cloned()
            .collect();
        assert!(corpus.len() >= 20, "tiny world must leave a usable unmatched corpus");
        let specs = corpus.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        Fixture { world, correspondences: offline.correspondences, corpus, specs }
    })
}

fn provider(f: &Fixture) -> FnProvider<impl Fn(&Offer) -> Spec + Sync + '_> {
    FnProvider(move |o: &Offer| f.specs[&o.id.0].clone())
}

/// A fresh directory per proptest case, so truncations never interfere.
fn case_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pse-crash-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn dcfg(dir: &std::path::Path) -> DurabilityConfig {
    dcfg_group(dir, GroupCommitConfig::default())
}

fn dcfg_group(dir: &std::path::Path, group: GroupCommitConfig) -> DurabilityConfig {
    DurabilityConfig {
        wal_path: dir.join("wal.log"),
        snapshot_dir: dir.join("segments"),
        compaction_threshold_bytes: 1 << 20,
        group,
    }
}

/// One committed operation, replayable against a plain store.
#[derive(Clone)]
enum AppliedOp {
    Ingest(Vec<Offer>),
    Retract(Vec<OfferId>),
}

/// Run raw op codes through the durable single-shard write protocol
/// (reconcile → log + fsync → apply → mark dirty; folds via
/// `write_snapshot`). Returns the ops folded into segments, the current
/// WAL generation's tail ops with their exact record end offsets, and
/// the final WAL length.
fn apply_ops(
    f: &Fixture,
    dir: &std::path::Path,
    raw_ops: &[(u8, usize)],
) -> (Vec<AppliedOp>, Vec<(AppliedOp, u64)>, u64) {
    let (_, mut dur, _) = Durability::open(dcfg(dir), &f.world.catalog, || {
        ProductStore::new(f.correspondences.clone())
    })
    .unwrap();
    let mut store = ProductStore::new(f.correspondences.clone());
    let p = provider(f);

    let mut folded: Vec<AppliedOp> = Vec::new();
    let mut tail: Vec<(AppliedOp, u64)> = Vec::new();
    let mut cursor = 0usize;
    let mut live: Vec<OfferId> = Vec::new();
    for &(kind, param) in raw_ops {
        match kind % 3 {
            0 => {
                // Ingest the next 1–7 corpus offers.
                let take = (1 + param % 7).min(f.corpus.len() - cursor);
                if take == 0 {
                    continue;
                }
                let batch = &f.corpus[cursor..cursor + take];
                cursor += take;
                let reconciled = reconcile_batch(batch, store.correspondences(), &p);
                dur.log(&WalRecord::Ingest(reconciled.clone())).unwrap();
                store.ingest_reconciled(&f.world.catalog, reconciled);
                dur.mark_dirty([0]);
                live.extend(batch.iter().map(|o| o.id));
                tail.push((AppliedOp::Ingest(batch.to_vec()), dur.wal_len()));
            }
            1 => {
                // Retract 1–3 of the earliest still-live offers.
                let take = (1 + param % 3).min(live.len());
                if take == 0 {
                    continue;
                }
                let ids: Vec<OfferId> = live.drain(..take).collect();
                dur.log(&WalRecord::Retract(ids.clone())).unwrap();
                store.retract(&f.world.catalog, &ids);
                dur.mark_dirty([0]);
                tail.push((AppliedOp::Retract(ids), dur.wal_len()));
            }
            _ => {
                // Fold the WAL into segments and rotate the log: every
                // tail op becomes segment-durable, immune to truncation.
                dur.write_snapshot(1, store.config(), store.correspondences(), |_| {
                    store.clusters_value()
                })
                .unwrap();
                folded.extend(tail.drain(..).map(|(op, _)| op));
            }
        }
    }
    let wal_len = dur.wal_len();
    (folded, tail, wal_len)
}

/// The sequential oracle: a plain store fed exactly the committed ops.
fn replay(f: &Fixture, ops: impl IntoIterator<Item = AppliedOp>) -> ProductStore {
    let mut store = ProductStore::new(f.correspondences.clone());
    let p = provider(f);
    for op in ops {
        match op {
            AppliedOp::Ingest(batch) => {
                store.ingest(&f.world.catalog, &batch, &p);
            }
            AppliedOp::Retract(ids) => {
                store.retract(&f.world.catalog, &ids);
            }
        }
    }
    store
}

proptest! {
    /// Arbitrary ops, arbitrary crash point: truncate the WAL anywhere
    /// at or past its header and recovery must produce exactly the state
    /// of the segment-durable ops plus the WAL-tail records that end at
    /// or before the cut — nothing more, nothing less, byte-identical.
    #[test]
    fn recovery_equals_the_durably_committed_prefix(
        raw_ops in prop::collection::vec((0u8..=255, 0usize..10_000), 1..10),
        raw_cut in 0u64..1_000_000,
    ) {
        let f = fixture();
        let dir = case_dir("prop");
        let (folded, tail, wal_len) = apply_ops(f, &dir, &raw_ops);

        // Crash: tear the log at an arbitrary byte.
        let cut = WAL_HEADER_LEN + raw_cut % (wal_len - WAL_HEADER_LEN + 1);
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join("wal.log"))
            .unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let committed: Vec<AppliedOp> = folded
            .into_iter()
            .chain(tail.iter().filter(|(_, end)| *end <= cut).map(|(op, _)| op.clone()))
            .collect();
        let expected_replayed =
            tail.iter().filter(|(_, end)| *end <= cut).count();
        let expected_torn =
            cut - tail.iter().map(|(_, end)| *end).filter(|end| *end <= cut)
                .max()
                .unwrap_or(WAL_HEADER_LEN);

        let (recovered, stats) = recover(&dcfg(&dir), &f.world.catalog, || {
            ProductStore::new(f.correspondences.clone())
        })
        .unwrap()
        .expect("an opened durable dir always recovers");
        prop_assert_eq!(stats.wal_records_replayed, expected_replayed, "cut {}", cut);
        prop_assert_eq!(stats.torn_bytes, expected_torn, "cut {}", cut);
        prop_assert_eq!(
            recovered.snapshot_json(),
            replay(f, committed).snapshot_json(),
            "cut {} of {} ({} tail records)", cut, wal_len, tail.len()
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Deterministic fold-then-tear: ingest, fold into segments, ingest two
/// more batches, then tear the second one mid-record. The fold must keep
/// the pre-fold state segment-durable, and the tail must replay exactly
/// one record.
#[test]
fn fold_then_torn_tail_recovers_fold_plus_first_tail_record() {
    let f = fixture();
    let dir = case_dir("fold");
    let raw_ops = [
        (0u8, 6usize), // ingest 7
        (2, 0),        // fold
        (0, 2),        // ingest 3 (tail record 1)
        (0, 4),        // ingest 5 (tail record 2)
    ];
    let (folded, tail, wal_len) = apply_ops(f, &dir, &raw_ops);
    assert_eq!(folded.len(), 1);
    assert_eq!(tail.len(), 2);

    // Tear one byte into the second tail record's frame.
    let cut = tail[0].1 + 1;
    assert!(cut < wal_len);
    let file = std::fs::OpenOptions::new().write(true).open(dir.join("wal.log")).unwrap();
    file.set_len(cut).unwrap();
    drop(file);

    let (recovered, stats) =
        recover(&dcfg(&dir), &f.world.catalog, || ProductStore::new(f.correspondences.clone()))
            .unwrap()
            .expect("durable state exists");
    assert_eq!(stats.segments_loaded, 1);
    assert_eq!(stats.wal_records_replayed, 1);
    assert_eq!(stats.torn_bytes, 1);
    let committed: Vec<AppliedOp> = folded.into_iter().chain([tail[0].0.clone()]).collect();
    assert_eq!(recovered.snapshot_json(), replay(f, committed).snapshot_json());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The concurrent oracle: replay WAL records exactly as `read_wal`
/// decoded them. With overlapping group commits the log itself is the
/// only authority on commit order, so the expected state is a plain
/// sequential store fed the decoded records — not any writer's idea of
/// what it submitted.
fn replay_records(f: &Fixture, records: impl IntoIterator<Item = WalRecord>) -> ProductStore {
    let mut store = ProductStore::new(f.correspondences.clone());
    for record in records {
        match record {
            WalRecord::Ingest(reconciled) => {
                store.ingest_reconciled(&f.world.catalog, reconciled);
            }
            WalRecord::Retract(ids) => {
                store.retract(&f.world.catalog, &ids);
            }
        }
    }
    store
}

proptest! {
    /// PR 9's write path under crash-point fire: N writer threads push
    /// interleaved ingests and retracts through the pipelined
    /// group-commit protocol (`durable_ingest` / `durable_retract`),
    /// the WAL is torn at an arbitrary byte, and recovery must equal a
    /// sequential replay of exactly the records whose frames survived
    /// the cut — whatever group boundaries and thread interleavings the
    /// scheduler produced.
    #[test]
    fn concurrent_group_commits_recover_to_the_committed_log_prefix(
        writers in 2usize..5,
        batch in 1usize..4,
        group_size in 1usize..9,
        raw_cut in 0u64..100_000_000,
    ) {
        let f = fixture();
        let dir = case_dir("group");
        let dcfg = dcfg_group(
            &dir,
            GroupCommitConfig { group_size, group_wait: Duration::from_micros(300) },
        );
        let seed = ShardedStore::from_store(ProductStore::new(f.correspondences.clone()), 1);
        let (store, ctx, _) = open_durable(dcfg.clone(), &f.world.catalog, seed).unwrap();
        let p = provider(f);

        std::thread::scope(|s| {
            for w in 0..writers {
                let (store, ctx, p) = (&store, &ctx, &p);
                s.spawn(move || {
                    // Writer `w` owns the strided slice corpus[w],
                    // corpus[w + writers], …: disjoint across writers, so
                    // each retraction targets an offer its own earlier
                    // commit ingested (program order ⇒ log order per
                    // thread; cross-thread order is the scheduler's).
                    let mine: Vec<Offer> =
                        f.corpus.iter().skip(w).step_by(writers).cloned().collect();
                    let mut prev_first: Option<OfferId> = None;
                    for chunk in mine.chunks(batch).take(3) {
                        durable_ingest(store, ctx, &f.world.catalog, chunk, p).unwrap();
                        if let Some(id) = prev_first.take() {
                            durable_retract(store, ctx, &f.world.catalog, &[id]).unwrap();
                        }
                        prev_first = Some(chunk[0].id);
                    }
                });
            }
        });
        drop((store, ctx)); // crash: the WAL tail is never folded

        let full = read_wal(&dcfg.wal_path, 0).unwrap().expect("wal exists");
        prop_assert_eq!(full.torn_bytes, 0, "acknowledged commits must be intact on disk");
        let wal_len = full.durable_len;
        let cut = WAL_HEADER_LEN + raw_cut % (wal_len - WAL_HEADER_LEN + 1);
        let file = std::fs::OpenOptions::new().write(true).open(&dcfg.wal_path).unwrap();
        file.set_len(cut).unwrap();
        drop(file);

        let committed: Vec<WalRecord> = full
            .records
            .iter()
            .filter(|(_, end)| *end <= cut)
            .map(|(record, _)| record.clone())
            .collect();
        let expected_replayed = committed.len();

        let (recovered, stats) = recover(&dcfg, &f.world.catalog, || {
            ProductStore::new(f.correspondences.clone())
        })
        .unwrap()
        .expect("an opened durable dir always recovers");
        prop_assert_eq!(
            stats.wal_records_replayed, expected_replayed,
            "cut {} of {} ({} records logged)", cut, wal_len, full.records.len()
        );
        prop_assert_eq!(
            recovered.snapshot_json(),
            replay_records(f, committed).snapshot_json(),
            "cut {} of {} ({} writers, batch {}, group {})",
            cut, wal_len, writers, batch, group_size
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Integration-level lone-writer regression (the unit version lives in
/// `pse-wal`): with a huge group and a huge bounded wait, a single
/// thread's `durable_ingest` must commit through the self-clocking path
/// — every active writer has staged, so the group cannot grow — rather
/// than waiting out `group_wait` once per commit.
#[test]
fn lone_durable_ingest_does_not_wait_for_a_full_group() {
    let f = fixture();
    let dir = case_dir("lone");
    let dcfg =
        dcfg_group(&dir, GroupCommitConfig { group_size: 64, group_wait: Duration::from_secs(30) });
    let seed = ShardedStore::from_store(ProductStore::new(f.correspondences.clone()), 1);
    let (store, ctx, _) = open_durable(dcfg.clone(), &f.world.catalog, seed).unwrap();
    let p = provider(f);

    let started = Instant::now();
    for chunk in f.corpus.chunks(4).take(3) {
        durable_ingest(&store, &ctx, &f.world.catalog, chunk, &p).unwrap();
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(10),
        "lone writer stalled {elapsed:?} — a 30s group_wait leaked into the commit path"
    );

    // Acknowledged means on disk, not merely staged.
    let tail = read_wal(&dcfg.wal_path, 0).unwrap().expect("wal exists");
    assert_eq!(tail.records.len(), 3);
    assert_eq!(tail.torn_bytes, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
