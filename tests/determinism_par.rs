//! The byte-identical-output guarantee: the pipeline synthesizes exactly
//! the same products no matter how many `pse-par` worker threads run.
//!
//! This is the contract the ISSUE calls out — parallelism must change
//! wall-clock time and nothing else. We run the full honest path (render
//! landing pages → extract → learn correspondences → reconcile → cluster
//! → fuse) once at 1 thread and once at 4, serialize everything that
//! downstream consumers see, and compare the bytes.

use pse_datagen::{World, WorldConfig};
use pse_synthesis::{OfflineLearner, RuntimePipeline, SpecProvider};

fn run_pipeline(world: &World) -> (String, String) {
    let provider =
        pse_synthesis::ExtractingProvider::new(|o: &pse_core::Offer| world.landing_page(o.id));
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let unmatched: Vec<pse_core::Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let pipeline = RuntimePipeline::new(offline.correspondences.clone());
    let synthesis = pipeline.process(&world.catalog, &unmatched, &provider);
    let products = serde_json::to_string_pretty(&synthesis.products).expect("products serialize");
    let scored = serde_json::to_string_pretty(&offline.scored).expect("candidates serialize");
    (products, scored)
}

#[test]
fn synthesized_products_are_byte_identical_at_any_thread_count() {
    let world = World::generate(WorldConfig::tiny());
    let (products_1, scored_1) = pse_par::with_threads(1, || run_pipeline(&world));
    let (products_4, scored_4) = pse_par::with_threads(4, || run_pipeline(&world));

    assert!(!products_1.is_empty());
    assert_eq!(products_1, products_4, "synthesized products differ across thread counts");
    assert_eq!(scored_1, scored_4, "scored candidates differ across thread counts");
}

#[test]
fn observability_does_not_change_outputs() {
    // The PSE_OBS contract: instrumentation records on the side and never
    // influences a pipeline byte. Same world, obs off vs on, at a thread
    // count that exercises the par timeline hooks.
    let world = World::generate(WorldConfig::tiny());
    pse_obs::set_enabled(false);
    let (products_off, scored_off) = pse_par::with_threads(4, || run_pipeline(&world));
    pse_obs::set_enabled(true);
    pse_obs::reset();
    let (products_on, scored_on) = pse_par::with_threads(4, || run_pipeline(&world));
    let report = pse_obs::report();
    pse_obs::set_enabled(false);
    pse_obs::reset();

    assert_eq!(products_off, products_on, "synthesized products differ with observability on");
    assert_eq!(scored_off, scored_on, "scored candidates differ with observability on");
    // And the side channel actually observed the run.
    assert_eq!(report.validate(), Ok(()));
    assert!(report.span("offline.learn").is_some());
    assert!(report.span("runtime.process").is_some());
    assert!(report.counter("runtime.offers_in").unwrap_or(0) > 0);

    // The serving layer honors the same contract: request tracing, the
    // per-endpoint latency histograms and the flight recorder all record
    // on the side — product-endpoint responses are byte-identical with
    // observability off vs on.
    let provider =
        pse_synthesis::ExtractingProvider::new(|o: &pse_core::Offer| world.landing_page(o.id));
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let unmatched: Vec<pse_core::Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let store = pse_serve::ShardedStore::new(offline.correspondences, 2);
    store.ingest(&world.catalog, &unmatched, &provider);
    let handle = pse_serve::start(store, world.catalog.clone(), pse_serve::ServerConfig::default())
        .expect("server starts");
    let addr = handle.addr().to_string();
    let p = &handle.store().products()[0];
    let paths = [
        "/healthz".to_string(),
        format!("/products/{}", p.category.0),
        format!("/product?category={}&attr={}&key={}", p.category.0, p.key_attribute, p.key_value),
        "/nope".to_string(),
    ];
    // The error envelope's `trace_id` is the one sanctioned difference
    // between obs on and off — blank it before comparing.
    let blank_trace_id = |body: String| match body.find("\"trace_id\":\"") {
        None => body,
        Some(start) => {
            let value_start = start + "\"trace_id\":\"".len();
            let value_end = value_start + body[value_start..].find('"').unwrap();
            format!("{}{}", &body[..value_start], &body[value_end..])
        }
    };
    let fetch = |path: &String| {
        let (status, body) = pse_serve::http_request(&addr, "GET", path, None).unwrap();
        (status, blank_trace_id(body))
    };
    let responses_off: Vec<(u16, String)> = paths.iter().map(fetch).collect();
    pse_obs::set_enabled(true);
    let responses_on: Vec<(u16, String)> = paths.iter().map(fetch).collect();
    pse_obs::set_enabled(false);
    pse_obs::reset();
    for ((path, off), on) in paths.iter().zip(&responses_off).zip(&responses_on) {
        assert_eq!(off, on, "observability changed the serve response for {path}");
    }
    handle.shutdown().expect("clean shutdown");
}

#[test]
fn page_derivation_is_byte_identical_at_any_thread_count() {
    let world = World::generate(WorldConfig::tiny());
    let ids: Vec<pse_core::OfferId> = world.offers.iter().map(|o| o.id).collect();
    let pages_1 = pse_par::with_threads(1, || world.landing_pages(&ids));
    let pages_4 = pse_par::with_threads(4, || world.landing_pages(&ids));
    assert_eq!(pages_1, pages_4);
    let specs_1 = pse_par::with_threads(1, || world.page_specs(&ids));
    let specs_4 = pse_par::with_threads(4, || world.page_specs(&ids));
    assert_eq!(specs_1, specs_4);
}

#[test]
fn provider_extraction_is_pure_per_offer() {
    // The Sync supertrait on SpecProvider assumes spec() is a pure function
    // of the offer; verify for the honest extracting provider.
    let world = World::generate(WorldConfig::tiny());
    let provider =
        pse_synthesis::ExtractingProvider::new(|o: &pse_core::Offer| world.landing_page(o.id));
    for offer in world.offers.iter().take(20) {
        assert_eq!(provider.spec(offer), provider.spec(offer));
    }
}
