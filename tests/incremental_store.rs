//! Batch-equivalence of the incremental product store (ISSUE 3 tentpole):
//! ingesting any partition of an offer stream, in any batch sizes, with a
//! snapshot/restore cycle anywhere in between, yields byte-identical
//! products to one `RuntimePipeline::process` call over the concatenation
//! — at 1 and at 4 worker threads.
//!
//! The corpus is the same "Table-2" set the experiment drivers use: the
//! offers of a generated world that match no historical product.

use std::collections::HashMap;
use std::sync::OnceLock;

use product_synthesis::core::{CorrespondenceSet, Offer, OfferId, Spec};
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::store::ProductStore;
use product_synthesis::synthesis::{
    ExtractingProvider, FnProvider, FusionStrategy, OfflineLearner, RuntimeConfig, RuntimePipeline,
    SpecProvider,
};
use proptest::prelude::*;

/// World + learned correspondences + unmatched corpus, built once. Specs
/// are pre-extracted so every test sees the same pure provider without
/// re-parsing landing pages per proptest case.
struct Fixture {
    world: World,
    correspondences: CorrespondenceSet,
    corpus: Vec<Offer>,
    specs: HashMap<u64, Spec>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let world = World::generate(WorldConfig::tiny());
        let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
        let offline = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let corpus: Vec<Offer> = world
            .offers
            .iter()
            .filter(|o| world.historical.product_of(o.id).is_none())
            .cloned()
            .collect();
        assert!(corpus.len() >= 20, "tiny world must leave a usable unmatched corpus");
        let specs = corpus.iter().map(|o| (o.id.0, provider.spec(o))).collect();
        Fixture { world, correspondences: offline.correspondences, corpus, specs }
    })
}

fn provider(f: &Fixture) -> FnProvider<impl Fn(&Offer) -> Spec + Sync + '_> {
    FnProvider(move |o: &Offer| f.specs[&o.id.0].clone())
}

fn products_json(products: &[product_synthesis::synthesis::SynthesizedProduct]) -> String {
    serde_json::to_string_pretty(&products.to_vec()).expect("products serialize")
}

/// One-shot batch pipeline over the whole corpus, with a given config.
fn one_shot(f: &Fixture, config: RuntimeConfig) -> String {
    let pipeline = RuntimePipeline::with_config(f.correspondences.clone(), config);
    let result = pipeline.process(&f.world.catalog, &f.corpus, &provider(f));
    assert!(!result.products.is_empty());
    products_json(&result.products)
}

/// The default-config baseline, computed once.
fn baseline(f: &Fixture) -> &'static str {
    static BASELINE: OnceLock<String> = OnceLock::new();
    BASELINE.get_or_init(|| one_shot(f, RuntimeConfig::default()))
}

/// Ingest the corpus in the batches delimited by sorted `cuts`.
fn ingest_partition(f: &Fixture, store: &mut ProductStore, cuts: &[usize]) {
    let mut start = 0;
    for &cut in cuts {
        store.ingest(&f.world.catalog, &f.corpus[start..cut], &provider(f));
        start = cut;
    }
    store.ingest(&f.world.catalog, &f.corpus[start..], &provider(f));
}

proptest! {
    #[test]
    fn arbitrary_batch_partition_matches_one_shot(
        raw_cuts in prop::collection::vec(0usize..10_000, 0..6),
    ) {
        let f = fixture();
        let n = f.corpus.len();
        let mut cuts: Vec<usize> = raw_cuts.into_iter().map(|c| c % (n + 1)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        for threads in [1, 4] {
            let got = pse_par::with_threads(threads, || {
                let mut store = ProductStore::new(f.correspondences.clone());
                ingest_partition(f, &mut store, &cuts);
                products_json(&store.products())
            });
            prop_assert_eq!(&got, baseline(f), "partition {:?} at {} threads", cuts, threads);
        }
    }

    #[test]
    fn snapshot_restore_midstream_matches_one_shot(
        raw_cut in 0usize..10_000,
        raw_snap in 0usize..10_000,
    ) {
        let f = fixture();
        let n = f.corpus.len();
        // Two batches split at `cut`; snapshot/restore happens after batch
        // one, then again after batch two (`snap` picks which to compare).
        let cut = raw_cut % (n + 1);
        let verify_final_roundtrip = raw_snap % 2 == 0;
        let mut store = ProductStore::new(f.correspondences.clone());
        store.ingest(&f.world.catalog, &f.corpus[..cut], &provider(f));
        let mut store = ProductStore::restore_json(&store.snapshot_json())
            .expect("mid-stream snapshot restores");
        store.ingest(&f.world.catalog, &f.corpus[cut..], &provider(f));
        prop_assert_eq!(&products_json(&store.products()), baseline(f), "cut {}", cut);
        if verify_final_roundtrip {
            let snap = store.snapshot_json();
            let restored = ProductStore::restore_json(&snap).expect("final snapshot restores");
            prop_assert_eq!(restored.snapshot_json(), snap, "round-trip bytes");
        }
    }
}

#[test]
fn retraction_matches_never_ingested() {
    let f = fixture();
    let n = f.corpus.len();
    let (keep, extra) = f.corpus.split_at(n / 2);
    let mut reference = ProductStore::new(f.correspondences.clone());
    reference.ingest(&f.world.catalog, keep, &provider(f));

    let mut store = ProductStore::new(f.correspondences.clone());
    store.ingest(&f.world.catalog, &f.corpus, &provider(f));
    let ids: Vec<OfferId> = extra.iter().map(|o| o.id).collect();
    store.retract(&f.world.catalog, &ids);

    assert_eq!(
        products_json(&store.products()),
        products_json(&reference.products()),
        "retracting the second half must equal never ingesting it"
    );
}

#[test]
fn all_fusion_strategies_are_batch_equivalent_end_to_end() {
    // The non-default strategies were previously only unit-tested in
    // fusion.rs; drive each through the full pipeline and the store.
    let f = fixture();
    let mut distinct = Vec::new();
    for strategy in [
        FusionStrategy::CentroidVote,
        FusionStrategy::MajorityExact,
        FusionStrategy::LongestValue,
        FusionStrategy::FirstSeen,
    ] {
        let config = RuntimeConfig { fusion: strategy, ..RuntimeConfig::default() };
        let expected = one_shot(f, config.clone());
        let mut store = ProductStore::with_config(f.correspondences.clone(), config);
        ingest_partition(f, &mut store, &[f.corpus.len() / 3, 2 * f.corpus.len() / 3]);
        assert_eq!(products_json(&store.products()), expected, "{strategy:?}");
        distinct.push(expected);
    }
    distinct.dedup();
    assert!(distinct.len() > 1, "strategies must actually disagree somewhere on this corpus");
}

#[test]
fn store_emits_observability() {
    let f = fixture();
    pse_obs::set_enabled(true);
    pse_obs::reset();
    let mut store = ProductStore::new(f.correspondences.clone());
    let mid = f.corpus.len() / 2;
    store.ingest(&f.world.catalog, &f.corpus[..mid], &provider(f));
    let store2 = ProductStore::restore_json(&store.snapshot_json()).unwrap();
    drop(store2);
    store.ingest(&f.world.catalog, &f.corpus[mid..], &provider(f));
    // Retract an offer that certainly routed to a cluster.
    let retractable = store.products()[0].offers[0];
    store.retract(&f.world.catalog, &[retractable]);
    let report = pse_obs::report();
    pse_obs::set_enabled(false);
    pse_obs::reset();

    assert_eq!(report.validate(), Ok(()));
    for span in ["store.ingest", "store.ingest.store.refuse", "store.snapshot", "store.retract"] {
        assert!(report.span(span).is_some(), "missing span {span}");
    }
    assert_eq!(report.counter("store.ingest"), Some(f.corpus.len() as u64));
    assert!(report.counter("store.clusters_dirty").unwrap_or(0) > 0);
    assert!(report.counter("store.refused").unwrap_or(0) > 0);
    assert_eq!(report.counter("store.snapshot"), Some(1));
    assert_eq!(report.counter("store.retracted"), Some(1));
}
