//! Bootstrap integration: a deployment with *no* historical matches at all.
//!
//! Section 3.1 lists automated title matchers among the sources of
//! historical offer-to-product associations. This test exercises that
//! cold-start path end to end: bootstrap matches with the
//! [`TitleMatcher`], feed them to the offline learner, and synthesize.

use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::eval::synthesis_eval::evaluate_synthesis;
use product_synthesis::synthesis::{
    ExtractingProvider, OfflineLearner, RuntimePipeline, SpecProvider, TitleMatcher,
};

#[test]
fn cold_start_via_title_matching() {
    let world = World::generate(WorldConfig {
        num_offers: 1_000,
        num_merchants: 8,
        leaf_categories_per_top: [2, 3, 1, 1],
        products_per_category: 25,
        ..WorldConfig::default()
    });
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));

    // 1. Bootstrap historical matches from titles + extracted identifiers —
    //    ignore the generator's own match set entirely.
    let matcher = TitleMatcher::new(&world.catalog);
    let bootstrapped = matcher.bootstrap(&world.offers, |o| provider.spec(o));
    assert!(
        bootstrapped.len() > world.offers.len() / 4,
        "bootstrap matched only {} of {} offers",
        bootstrapped.len(),
        world.offers.len()
    );

    // Bootstrap quality: the vast majority of proposed matches are right
    // (identifier matches are exact; title matches clear a margin).
    let correct = bootstrapped.iter().filter(|(o, p)| world.truth.product_of(*o) == *p).count();
    let precision = correct as f64 / bootstrapped.len() as f64;
    assert!(precision > 0.9, "bootstrap match precision {precision}");

    // 2. Learn correspondences from the bootstrapped history.
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &bootstrapped, &provider);
    assert!(outcome.correspondences.len() > 30);

    // 3. Synthesize and evaluate.
    let result = RuntimePipeline::new(outcome.correspondences).process(
        &world.catalog,
        &world.offers,
        &provider,
    );
    assert!(!result.products.is_empty());
    let quality = evaluate_synthesis(&world, &result.products);
    assert!(
        quality.attribute_precision() > 0.7,
        "cold-start attribute precision {}",
        quality.attribute_precision()
    );
}
