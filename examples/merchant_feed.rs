//! Operating from a raw merchant feed: offers arrive with a title, a price
//! and a landing-page URL but almost no structured data (paper Figure 3).
//! The pipeline fetches each landing page, extracts the specification table
//! from its HTML, and shows how schema reconciliation filters the noise the
//! extractor inevitably picks up (review tables, marketing rows).
//!
//! Run with: `cargo run --release --example merchant_feed`

use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::extract::extract_pairs;
use product_synthesis::synthesis::runtime::reconcile;
use product_synthesis::synthesis::{ExtractingProvider, OfflineLearner, SpecProvider};

fn main() {
    let world = World::generate(WorldConfig {
        num_offers: 3_000,
        noise_table_probability: 0.8, // extra-noisy pages for the demo
        ..WorldConfig::default()
    });

    // Show one raw landing page fragment and what the extractor sees.
    let offer = &world.offers[0];
    let html = world.landing_page(offer.id);
    println!("feed entry: {:?} (${:.2})", offer.title, offer.price());
    println!("landing page: {} bytes of HTML at {}", html.len(), offer.url);

    let raw = extract_pairs(&html);
    println!("\nextracted {} raw pairs (noise included):", raw.len());
    for pair in raw.iter() {
        println!("  {:<24} {}", pair.name, pair.value);
    }

    // Learn correspondences, then reconcile the same offer: junk pairs
    // (reviews, shipping, condition) are discarded because no
    // correspondence was ever learned for them.
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);

    let spec = provider.spec(offer);
    let reconciled = reconcile(
        offer.id,
        offer.merchant,
        offer.category.expect("feed offers carry categories here"),
        &spec,
        &outcome.correspondences,
    );
    println!("\nafter schema reconciliation ({} pairs survive):", reconciled.pairs().len());
    for (attr, value) in reconciled.pairs() {
        println!("  {attr:<24} {value}");
    }
    let dropped = spec.len() - reconciled.pairs().len();
    println!("\n{dropped} noisy/junk pairs were filtered by reconciliation");
}
