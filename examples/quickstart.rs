//! Quickstart: generate a small shopping world, learn attribute
//! correspondences from historical matches, and synthesize new products
//! from the unmatched offers — the full pipeline of the paper in ~60 lines.
//!
//! Run with: `cargo run --release --example quickstart`

use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::synthesis::{ExtractingProvider, OfflineLearner, RuntimePipeline};

fn main() {
    // 1. A synthetic world standing in for a Product Search Engine's data:
    //    catalog, merchants with private vocabularies, offers with rendered
    //    HTML landing pages, and historical offer-to-product matches.
    let world = World::generate(WorldConfig::default());
    let stats = world.stats();
    println!(
        "world: {} categories, {} products, {} merchants, {} offers ({} historically matched)",
        stats.categories, stats.products, stats.merchants, stats.offers, stats.historical_matches,
    );

    // 2. The honest provider: fetch the landing page, extract two-column
    //    spec tables (Section 4 of the paper).
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));

    // 3. Offline Learning (Section 3): distributional-similarity features
    //    over match-conditioned bags, automatically labeled training set,
    //    logistic-regression classifier.
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    println!(
        "offline: {} candidates -> {} training examples ({} positive) -> {} correspondences",
        outcome.stats.candidates,
        outcome.stats.training_examples,
        outcome.stats.training_positives,
        outcome.correspondences.len(),
    );

    // 4. Run-Time Offer Processing (Section 4) over the offers that match
    //    no catalog product: reconcile -> cluster by MPN/UPC -> fuse.
    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let result = RuntimePipeline::new(outcome.correspondences).process(
        &world.catalog,
        &unmatched,
        &provider,
    );
    println!(
        "runtime: {} offers in -> {} reconciled -> {} clustered -> {} products ({} attributes)",
        result.offers_in,
        result.offers_reconciled,
        result.offers_clustered,
        result.products.len(),
        result.total_attributes(),
    );

    // 5. Show one synthesized product.
    if let Some(p) = result.products.iter().max_by_key(|p| p.offers.len()) {
        let category = &world.catalog.taxonomy().category(p.category).name;
        println!("\nsample product (category {category}, fused from {} offers):", p.offers.len());
        for pair in p.spec.iter() {
            println!("  {:<22} {}", pair.name, pair.value);
        }
    }
}
