//! The paper's running example (Figures 2 and 5): hard-drive offers from
//! heterogeneous merchants. One merchant uses the catalog's own attribute
//! names ("Speed", "Interface"); another says "RPM" and "Int. Type" with
//! reformatted values. The offline learner must discover the cross-merchant
//! correspondences from value distributions alone, and the runtime pipeline
//! must fuse both merchants' offers into a single product.
//!
//! Run with: `cargo run --release --example hard_drives`

use product_synthesis::core::{
    AttributeDef, AttributeKind, Catalog, CategorySchema, HistoricalMatches, Merchant, MerchantId,
    Offer, OfferId, Spec, Taxonomy,
};
use product_synthesis::synthesis::{FnProvider, OfflineLearner, RuntimePipeline};

fn main() {
    // Catalog: the hard-drive category of Figure 5.
    let mut taxonomy = Taxonomy::new();
    let computing = taxonomy.add_top_level("Computing");
    let hd = taxonomy.add_leaf(
        computing,
        "Hard Drives",
        CategorySchema::from_attributes([
            AttributeDef::key("MPN", AttributeKind::Identifier),
            AttributeDef::new("Brand", AttributeKind::Text),
            AttributeDef::new("Speed", AttributeKind::Numeric),
            AttributeDef::new("Interface", AttributeKind::Text),
            AttributeDef::new("Capacity", AttributeKind::Numeric),
        ]),
    );
    let mut catalog = Catalog::new(taxonomy);

    let drives = [
        ("Seagate", "Barracuda", "ST3500", "5400", "ATA 100", "250 GB"),
        ("Western Digital", "Raptor", "WD740GD", "7200", "IDE 133", "74 GB"),
        ("Seagate", "Momentus", "ST9160", "5400", "IDE 133", "160 GB"),
        ("Hitachi", "Deskstar", "39T2525", "7200", "ATA 133", "500 GB"),
        ("Hitachi", "Ultrastar", "38L2392", "10000", "SCSI 320", "300 GB"),
    ];
    let mut products = Vec::new();
    for (brand, series, mpn, speed, iface, cap) in drives {
        let pid = catalog.add_product(
            hd,
            format!("{brand} {series} {mpn}"),
            Spec::from_pairs([
                ("MPN", mpn),
                ("Brand", brand),
                ("Speed", speed),
                ("Interface", iface),
                ("Capacity", cap),
            ]),
        );
        products.push(pid);
    }

    let merchants = [
        Merchant { id: MerchantId(0), name: "DriveDepot".into() },
        Merchant { id: MerchantId(1), name: "Microwarehouse".into() },
    ];

    // Historical offers. DriveDepot (merchant 0) uses catalog names
    // verbatim — those name identities become the training set. Micro-
    // warehouse (merchant 1) uses its own dialect.
    let mut offers = Vec::new();
    let mut historical = HistoricalMatches::new();
    let mut next_id = 0u64;
    let mut mk_offer = |merchant: u32, title: &str, pairs: &[(&str, &str)]| {
        let o = Offer {
            id: OfferId(next_id),
            merchant: MerchantId(merchant),
            price_cents: 9900 + next_id * 371,
            image_url: None,
            category: Some(hd),
            url: format!("https://shop{merchant}.example.com/{next_id}"),
            title: title.to_string(),
            spec: Spec::from_pairs(pairs.iter().copied()),
        };
        next_id += 1;
        o
    };

    for (i, (brand, series, mpn, speed, iface, cap)) in drives.iter().enumerate() {
        let o = mk_offer(
            0,
            &format!("{brand} {series} HD"),
            &[
                ("MPN", mpn),
                ("Brand", brand),
                ("Speed", speed),
                ("Interface", iface),
                ("Capacity", cap),
            ],
        );
        historical.insert(o.id, products[i]);
        offers.push(o);
        let o = mk_offer(
            1,
            &format!("{brand} {series}"),
            &[
                ("Mfr. Part #", mpn),
                ("Manufacturer", brand),
                ("RPM", &format!("{speed} rpm")),
                ("Int. Type", &format!("{iface} mb/s")),
                ("Hard Disk Size", cap.trim_end_matches(" GB")),
            ],
        );
        historical.insert(o.id, products[i]);
        offers.push(o);
    }

    let provider = FnProvider(|o: &Offer| o.spec.clone());
    let outcome = OfflineLearner::new().learn(&catalog, &offers, &historical, &provider);

    println!("learned correspondences (catalog <- merchant, score):");
    let mut all: Vec<_> = outcome.correspondences.iter().collect();
    all.sort_by(|a, b| (a.merchant, &a.catalog_attribute).cmp(&(b.merchant, &b.catalog_attribute)));
    for c in &all {
        let m = &merchants[c.merchant.index()].name;
        println!(
            "  [{m:<15}] {:<10} <- {:<15} ({:.2})",
            c.catalog_attribute, c.merchant_attribute, c.score
        );
    }

    // A new drive appears at both merchants but is missing from the catalog:
    // the pipeline synthesizes it.
    let new_offers = vec![
        mk_offer(
            0,
            "Samsung SpinPoint NEW",
            &[
                ("MPN", "HD501LJ"),
                ("Brand", "Samsung"),
                ("Speed", "7200"),
                ("Interface", "SATA 300"),
                ("Capacity", "500 GB"),
            ],
        ),
        mk_offer(
            1,
            "Samsung SpinPoint T166",
            &[
                ("Mfr. Part #", "HD-501-LJ"),
                ("Manufacturer", "Samsung"),
                ("RPM", "7200 rpm"),
                ("Int. Type", "SATA 300 mb/s"),
                ("Hard Disk Size", "500"),
            ],
        ),
    ];
    let result =
        RuntimePipeline::new(outcome.correspondences).process(&catalog, &new_offers, &provider);
    println!(
        "\nsynthesized {} product(s) from {} new offers:",
        result.products.len(),
        new_offers.len()
    );
    for p in &result.products {
        println!("  key {} = {} (from {} offers)", p.key_attribute, p.key_value, p.offers.len());
        for pair in p.spec.iter() {
            println!("    {:<12} {}", pair.name, pair.value);
        }
    }
}
