//! Incremental catalog growth: offers stream in batch by batch; each batch
//! is reconciled with the correspondences learned offline and synthesized
//! into products. The example tracks how coverage grows and how fusion
//! quality improves as more offers accumulate per product — the dynamics
//! behind the paper's Table 4 (products with more offers synthesize more
//! attributes).
//!
//! Run with: `cargo run --release --example catalog_growth`

use product_synthesis::core::Offer;
use product_synthesis::datagen::{World, WorldConfig};
use product_synthesis::eval::synthesis_eval::evaluate_synthesis;
use product_synthesis::synthesis::{ExtractingProvider, OfflineLearner, RuntimePipeline};

fn main() {
    let world = World::generate(WorldConfig { num_offers: 12_000, ..WorldConfig::default() });
    let provider = ExtractingProvider::new(|o: &Offer| world.landing_page(o.id));

    // Learn once from the historical offers.
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let pipeline = RuntimePipeline::new(outcome.correspondences);

    // Stream the unmatched offers in batches.
    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    println!(
        "{:>7} {:>9} {:>10} {:>12} {:>10} {:>10}",
        "offers", "products", "attrs", "attrs/prod", "attr-prec", "prod-prec"
    );
    let batch = unmatched.len().div_ceil(6).max(1);
    let mut seen: Vec<Offer> = Vec::new();
    for chunk in unmatched.chunks(batch) {
        seen.extend_from_slice(chunk);
        // Re-synthesize over everything seen so far: clusters grow richer.
        let result = pipeline.process(&world.catalog, &seen, &provider);
        let quality = evaluate_synthesis(&world, &result.products);
        println!(
            "{:>7} {:>9} {:>10} {:>12.2} {:>10.3} {:>10.3}",
            seen.len(),
            result.products.len(),
            result.total_attributes(),
            quality.avg_attributes_per_product(),
            quality.attribute_precision(),
            quality.product_precision(),
        );
    }
    println!("\nmore offers per product -> more synthesized attributes per product");
}
