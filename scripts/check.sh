#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a change lands.
# Usage: scripts/check.sh  (run from anywhere; cd's to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
cargo fmt --check

# Observability smoke: one instrumented pipeline run must produce an
# OBS_REPORT.json that passes schema validation (required stage spans and
# counters present, no NaN/negative durations).
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    table2 --smoke --quiet --obs --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check

# Blocking smoke: the fig8 sweep with --verify-blocking re-runs the title
# matcher exhaustively over every offer and exits non-zero if the
# inverted-index blocked path disagrees with the naive scan anywhere.
cargo run --release -q -p pse-bench --bin experiments -- \
    fig8 --smoke --quiet --verify-blocking --out target/check-results

# Incremental smoke: replay the Table-2 corpus through the persistent store
# in 4 batches. The subcommand exits non-zero if the store's products diverge
# from a one-shot RuntimePipeline::process over the same corpus, and the
# obs_check run validates the store.* spans and counters in the report.
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    incremental --smoke --quiet --obs --batches 4 --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check

echo "tier-1 gate: all green"
