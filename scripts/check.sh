#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a change lands.
# Usage: scripts/check.sh  (run from anywhere; cd's to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
# new_without_default stays named even though -D warnings already covers
# it: every `new()` constructor in the workspace API must keep a Default.
cargo clippy --workspace -- -D warnings -D clippy::new-without-default
cargo fmt --check

# Observability smoke: one instrumented pipeline run must produce an
# OBS_REPORT.json that passes schema validation (required stage spans and
# counters present, no NaN/negative durations).
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    table2 --smoke --quiet --obs --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check

# Blocking smoke: the fig8 sweep with --verify-blocking re-runs the title
# matcher exhaustively over every offer and exits non-zero if the
# inverted-index blocked path disagrees with the naive scan anywhere.
cargo run --release -q -p pse-bench --bin experiments -- \
    fig8 --smoke --quiet --verify-blocking --out target/check-results

# Incremental smoke: replay the Table-2 corpus through the persistent store
# in 4 batches. The subcommand exits non-zero if the store's products diverge
# from a one-shot RuntimePipeline::process over the same corpus, and the
# obs_check run validates the store.* spans and counters in the report.
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    incremental --smoke --quiet --obs --batches 4 --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check

# Serving smoke: start the sharded HTTP server on an ephemeral port, drive
# it over real sockets (healthz, a second-half ingest, point lookups, then
# graceful shutdown with a snapshot flush), and validate the serve.* spans
# and counters in the observability report.
rm -f target/check-results/serve.port
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    serve --smoke --quiet --obs --shards 4 \
    --port-file target/check-results/serve.port --out target/check-results &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 150); do
    [ -s target/check-results/serve.port ] && break
    sleep 0.2
done
[ -s target/check-results/serve.port ] || {
    echo "serve smoke: server never wrote its port file" >&2
    exit 1
}
ADDR="$(cat target/check-results/serve.port)"
http_get() { cargo run --release -q -p pse-serve --bin http_get -- "$@"; }
http_get GET "http://$ADDR/healthz"
http_get POST "http://$ADDR/ingest" @target/check-results/serve_batch.json >/dev/null
head -3 target/check-results/serve_queries.txt | while read -r q; do
    http_get GET "http://$ADDR$q" >/dev/null
done
http_get GET "http://$ADDR/metrics" >/dev/null
# Structured search over a real socket: any query must come back as the
# typed envelope (interpretation + ranked hits), even when nothing matches.
http_get GET "http://$ADDR/search?q=usb&k=3" | grep -q '"hits":' || {
    echo "serve smoke: /search returned no typed envelope" >&2
    exit 1
}
# Flight recorder over real sockets: the requests above must be visible
# in /debug/requests, and one of their ids must resolve via /debug/trace.
DEBUG_JSON="$(http_get GET "http://$ADDR/debug/requests")"
printf '%s' "$DEBUG_JSON" | grep -q '"recorded":' || {
    echo "serve smoke: /debug/requests returned no recorder state" >&2
    exit 1
}
TRACE_ID="$(printf '%s' "$DEBUG_JSON" | sed -n 's/.*"id":"\([0-9a-f]\{1,16\}\)".*/\1/p' | head -1)"
[ -n "$TRACE_ID" ] || {
    echo "serve smoke: /debug/requests listed no trace ids" >&2
    exit 1
}
http_get GET "http://$ADDR/debug/trace/$TRACE_ID" | grep -q '"spans":' || {
    echo "serve smoke: /debug/trace/$TRACE_ID returned no span tree" >&2
    exit 1
}
http_get POST "http://$ADDR/shutdown" >/dev/null
wait "$SERVE_PID"
test -s target/check-results/serve.snapshot.json
cargo run --release -q -p pse-bench --bin obs_check

# Read-heavy smoke: the 99/1 serve-bench mix hammers the snapshot response
# cache (GET /products/{category}) while churn writes invalidate it; the
# obs_check run validates the gated serve.cache.* counters in the report.
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    serve-bench --read-heavy --smoke --quiet --obs \
    --workers 4 --requests 400 --shards 4 --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check

# Search smoke: replay ground-truth free-text queries against GET /search
# at 1 and 2 shards. The subcommand exits non-zero if response bodies
# diverge across shard counts or quality drops below the floors
# (precision@1 >= 0.80, recall@10 >= 0.70); the obs_check run validates
# the gated query.* counters and the query.candidates histogram, and the
# grep re-asserts the floors from the merged BENCH_par.json record.
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    search-bench --smoke --quiet --obs \
    --workers 4 --requests 400 --shards 1,2 --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check
grep -q '"thresholds_met": true' BENCH_par.json || {
    echo "search bench: precision/recall floors not met" >&2
    exit 1
}
grep -q '"shard_counts_agree": true' BENCH_par.json || {
    echo "search bench: /search bodies diverged across shard counts" >&2
    exit 1
}

# Observability-overhead smoke: the point-lookup mix twice, obs off then
# on (request tracing + endpoint histograms + flight recorder live); the
# comparison lands in BENCH_par.json under "serve_obs_overhead" and the
# obs_check run validates the per-endpoint RED consistency rules.
cargo run --release -q -p pse-bench --bin experiments -- \
    serve-bench --obs-overhead --smoke --quiet --obs \
    --workers 4 --requests 600 --shards 4 --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check

# Crash drill: serve durably (WAL + segmented snapshots), ingest over the
# wire, then SIGKILL the server — no graceful shutdown, no JSON snapshot.
# The read-only wal-replay oracle rebuilds what the crashed directory
# proves was committed, the restarted server recovers from the same
# directory, and every /products/{category} response must be
# byte-identical to the oracle's.
rm -rf target/check-results/drill-wal target/check-results/drill_expected
rm -f target/check-results/drill.port target/check-results/drill-restart.port
cargo run --release -q -p pse-bench --bin experiments -- \
    serve --smoke --quiet --wal-dir target/check-results/drill-wal \
    --compact-bytes 65536 --shards 4 \
    --port-file target/check-results/drill.port --out target/check-results &
DRILL_PID=$!
trap 'kill -9 "$DRILL_PID" 2>/dev/null || true' EXIT
for _ in $(seq 1 150); do
    [ -s target/check-results/drill.port ] && break
    sleep 0.2
done
[ -s target/check-results/drill.port ] || {
    echo "crash drill: server never wrote its port file" >&2
    exit 1
}
ADDR="$(cat target/check-results/drill.port)"
http_get POST "http://$ADDR/ingest" @target/check-results/serve_batch.json >/dev/null
http_get GET "http://$ADDR/healthz" >/dev/null
kill -9 "$DRILL_PID"
wait "$DRILL_PID" 2>/dev/null || true

cargo run --release -q -p pse-bench --bin experiments -- \
    wal-replay --smoke --quiet --wal-dir target/check-results/drill-wal \
    --out target/check-results
test -s target/check-results/drill_expected/categories.txt

PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    serve --smoke --quiet --obs --wal-dir target/check-results/drill-wal \
    --compact-bytes 65536 --shards 4 \
    --port-file target/check-results/drill-restart.port --out target/check-results &
DRILL_PID=$!
for _ in $(seq 1 150); do
    [ -s target/check-results/drill-restart.port ] && break
    sleep 0.2
done
[ -s target/check-results/drill-restart.port ] || {
    echo "crash drill: restarted server never wrote its port file" >&2
    exit 1
}
ADDR="$(cat target/check-results/drill-restart.port)"
while read -r c; do
    http_get GET "http://$ADDR/products/$c" > target/check-results/drill_got.json
    cmp -s target/check-results/drill_got.json \
        "target/check-results/drill_expected/cat_$c.json" || {
        echo "crash drill: /products/$c diverged from the wal-replay oracle" >&2
        exit 1
    }
done < target/check-results/drill_expected/categories.txt
http_get POST "http://$ADDR/shutdown" >/dev/null
wait "$DRILL_PID"
cargo run --release -q -p pse-bench --bin obs_check

# Durability bench: WAL churn + incremental segmented snapshots, then the
# restore race; results land in BENCH_par.json under "durability", and the
# segmented restore must actually beat the JSON restore.
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    snapshot-bench --smoke --quiet --obs --batches 4 --shards 4 \
    --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check
grep -q '"segmented_restore_faster": true' BENCH_par.json || {
    echo "durability bench: segmented restore was not faster than JSON" >&2
    exit 1
}

# Ingest-scale smoke: stream 1e5 offers (mixed scenario: flash-sale
# bursts, merchant churn, retraction waves) from the constant-memory
# OfferStream through the durable group-commit write path, against a
# per-batch-fsync serial baseline, ending in a crash-drill restart that
# must recover byte-identically. Results merge into BENCH_par.json under
# "ingest_scale"; grouped commits must beat the serial baseline.
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    ingest-bench --smoke --quiet --obs --offers 100000 --baseline-offers 50000 \
    --batch-size 1 --scenario mixed --shards 4 --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check
grep -q '"recovery_equal": true' BENCH_par.json || {
    echo "ingest bench: recovery diverged from the live store" >&2
    exit 1
}
grep -q '"group_commit_faster": true' BENCH_par.json || {
    echo "ingest bench: group commit did not beat per-batch fsync" >&2
    exit 1
}

echo "tier-1 gate: all green"
