#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a change lands.
# Usage: scripts/check.sh  (run from anywhere; cd's to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
cargo fmt --check

echo "tier-1 gate: all green"
