#!/usr/bin/env bash
# Tier-1 gate: everything that must be green before a change lands.
# Usage: scripts/check.sh  (run from anywhere; cd's to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace -- -D warnings
cargo fmt --check

# Observability smoke: one instrumented pipeline run must produce an
# OBS_REPORT.json that passes schema validation (required stage spans and
# counters present, no NaN/negative durations).
PSE_OBS=1 cargo run --release -q -p pse-bench --bin experiments -- \
    table2 --smoke --quiet --obs --out target/check-results
cargo run --release -q -p pse-bench --bin obs_check

echo "tier-1 gate: all green"
