//! Deterministic case runner for the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed or rejected test case.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}

fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(128)
}

/// Runs `body` against `PROPTEST_CASES` deterministic inputs. The seed
/// for every case derives from the test name, so failures reproduce.
pub fn run<F>(name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let base = fnv1a(name);
    let mut rejected = 0u64;
    for case in 0..cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > cases * 4 {
                    panic!("proptest {name}: too many rejected cases ({rejected})");
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {name}: case {case} (seed {seed:#x}) failed:\n{msg}\n\
                     (re-run is deterministic; no shrinking in the offline stub)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_when_body_passes() {
        run("always_ok", |_| Ok(()));
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn panics_when_body_fails() {
        run("always_fails", |_| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn deterministic_rng_per_case() {
        use rand::Rng;
        let mut first = Vec::new();
        run("det", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        run("det", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
