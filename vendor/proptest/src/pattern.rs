//! Generator for the regex-like string patterns proptest accepts as
//! string strategies. Supports the subset this workspace uses:
//! literals, `.`, character classes `[a-z0-9 ]` (ranges, literals,
//! `\xHH` escapes, leading `^` negation is NOT supported), groups with
//! alternation `(a|bc)`, and the quantifiers `{n}`, `{m,n}`, `?`, `*`,
//! `+` (the last two capped at 8 repetitions).

use rand::rngs::StdRng;
use rand::RngExt;

#[derive(Debug, Clone)]
enum Atom {
    Literal(char),
    /// `.`: any printable char (mostly ASCII, occasionally multibyte).
    AnyChar,
    Class(Vec<char>),
    /// Alternation of sequences.
    Group(Vec<Vec<(Atom, Quant)>>),
}

#[derive(Debug, Clone, Copy)]
struct Quant {
    min: u32,
    max: u32,
}

const ONE: Quant = Quant { min: 1, max: 1 };

#[derive(Debug, Clone)]
pub struct Pattern {
    seq: Vec<(Atom, Quant)>,
}

struct PatParser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    src: &'a str,
}

impl<'a> PatParser<'a> {
    fn fail(&self, msg: &str) -> ! {
        panic!("proptest stub: unsupported pattern {:?}: {msg}", self.src)
    }

    fn parse_escape(&mut self) -> char {
        match self.chars.next() {
            Some('x') => {
                let hi = self.chars.next().unwrap_or_else(|| self.fail("truncated \\x"));
                let lo = self.chars.next().unwrap_or_else(|| self.fail("truncated \\x"));
                let code = u32::from_str_radix(&format!("{hi}{lo}"), 16)
                    .unwrap_or_else(|_| self.fail("bad \\x escape"));
                char::from_u32(code).unwrap_or_else(|| self.fail("bad \\x escape"))
            }
            Some('n') => '\n',
            Some('r') => '\r',
            Some('t') => '\t',
            Some(c) => c,
            None => self.fail("trailing backslash"),
        }
    }

    fn parse_class(&mut self) -> Vec<char> {
        let mut chars = Vec::new();
        loop {
            let c = match self.chars.next() {
                Some(']') => return chars,
                Some('\\') => self.parse_escape(),
                Some(c) => c,
                None => self.fail("unterminated class"),
            };
            // Range `a-z` if `-` is followed by a non-`]` char.
            if self.chars.peek() == Some(&'-') {
                let mut ahead = self.chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&']') | None => chars.push(c),
                    Some(_) => {
                        self.chars.next(); // the '-'
                        let hi = match self.chars.next() {
                            Some('\\') => self.parse_escape(),
                            Some(h) => h,
                            None => self.fail("unterminated range"),
                        };
                        if (hi as u32) < (c as u32) {
                            self.fail("inverted range");
                        }
                        for code in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(code) {
                                chars.push(ch);
                            }
                        }
                    }
                }
            } else {
                chars.push(c);
            }
        }
    }

    fn parse_quant(&mut self) -> Quant {
        match self.chars.peek() {
            Some('{') => {
                self.chars.next();
                let mut min = String::new();
                while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                    min.push(self.chars.next().unwrap());
                }
                let min: u32 = min.parse().unwrap_or_else(|_| self.fail("bad quantifier"));
                let max = match self.chars.next() {
                    Some('}') => min,
                    Some(',') => {
                        let mut max = String::new();
                        while matches!(self.chars.peek(), Some(c) if c.is_ascii_digit()) {
                            max.push(self.chars.next().unwrap());
                        }
                        if self.chars.next() != Some('}') {
                            self.fail("unterminated quantifier");
                        }
                        max.parse().unwrap_or_else(|_| self.fail("bad quantifier"))
                    }
                    _ => self.fail("unterminated quantifier"),
                };
                Quant { min, max }
            }
            Some('?') => {
                self.chars.next();
                Quant { min: 0, max: 1 }
            }
            Some('*') => {
                self.chars.next();
                Quant { min: 0, max: 8 }
            }
            Some('+') => {
                self.chars.next();
                Quant { min: 1, max: 8 }
            }
            _ => ONE,
        }
    }

    /// Parses a sequence of quantified atoms up to (not past) `|`, `)`,
    /// or end of input.
    fn parse_seq(&mut self) -> Vec<(Atom, Quant)> {
        let mut seq = Vec::new();
        loop {
            let atom = match self.chars.peek() {
                None | Some('|') | Some(')') => return seq,
                Some('.') => {
                    self.chars.next();
                    Atom::AnyChar
                }
                Some('[') => {
                    self.chars.next();
                    Atom::Class(self.parse_class())
                }
                Some('(') => {
                    self.chars.next();
                    let mut alternatives = vec![self.parse_seq()];
                    while self.chars.peek() == Some(&'|') {
                        self.chars.next();
                        alternatives.push(self.parse_seq());
                    }
                    if self.chars.next() != Some(')') {
                        self.fail("unterminated group");
                    }
                    Atom::Group(alternatives)
                }
                Some('\\') => {
                    self.chars.next();
                    Atom::Literal(self.parse_escape())
                }
                Some(&c) => {
                    if matches!(c, '{' | '}' | '*' | '+' | '?' | '^' | '$') {
                        self.fail("unsupported metachar in this position");
                    }
                    self.chars.next();
                    Atom::Literal(c)
                }
            };
            let quant = self.parse_quant();
            seq.push((atom, quant));
        }
    }
}

impl Pattern {
    pub fn compile(src: &str) -> Pattern {
        let mut parser = PatParser { chars: src.chars().peekable(), src };
        let seq = parser.parse_seq();
        if parser.chars.next().is_some() {
            panic!("proptest stub: unsupported pattern {src:?}: trailing `|` or `)`");
        }
        Pattern { seq }
    }

    pub fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        gen_seq(&self.seq, rng, &mut out);
        out
    }
}

fn gen_seq(seq: &[(Atom, Quant)], rng: &mut StdRng, out: &mut String) {
    for (atom, quant) in seq {
        let reps = if quant.min == quant.max {
            quant.min
        } else {
            rng.random_range(quant.min..=quant.max)
        };
        for _ in 0..reps {
            gen_atom(atom, rng, out);
        }
    }
}

/// Extra characters `.` occasionally produces beyond printable ASCII,
/// exercising multibyte and non-Latin handling.
const EXOTIC: &[char] = &['é', 'ß', '漢', '€', 'Ω', 'ñ', '→', '🦀'];

fn gen_atom(atom: &Atom, rng: &mut StdRng, out: &mut String) {
    match atom {
        Atom::Literal(c) => out.push(*c),
        Atom::AnyChar => {
            if rng.random_bool(0.9) {
                // Printable ASCII 0x20..=0x7E.
                out.push(char::from(rng.random_range(0x20u8..0x7F)));
            } else {
                out.push(EXOTIC[rng.random_range(0..EXOTIC.len())]);
            }
        }
        Atom::Class(chars) => {
            out.push(chars[rng.random_range(0..chars.len())]);
        }
        Atom::Group(alternatives) => {
            let pick = rng.random_range(0..alternatives.len());
            gen_seq(&alternatives[pick], rng, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Pattern;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples(pat: &str, n: usize) -> Vec<String> {
        let compiled = Pattern::compile(pat);
        let mut rng = StdRng::seed_from_u64(99);
        (0..n).map(|_| compiled.generate(&mut rng)).collect()
    }

    #[test]
    fn class_with_quantifier() {
        for s in samples("[a-z0-9 ]{1,12}", 200) {
            assert!((1..=12).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == ' '));
        }
    }

    #[test]
    fn dot_len_bounds() {
        for s in samples(".{0,24}", 200) {
            assert!(s.chars().count() <= 24);
        }
    }

    #[test]
    fn exact_literal() {
        assert_eq!(samples("MPN", 3), vec!["MPN", "MPN", "MPN"]);
    }

    #[test]
    fn group_alternation_and_escape() {
        let pat = r"(<[a-z/!]{0,4}[a-z ='\x22]{0,8}>?|[a-z&;#0-9 ]{0,6}){0,24}";
        for s in samples(pat, 100) {
            for c in s.chars() {
                assert!(
                    "<>/!='\" &;#".contains(c) || c.is_ascii_lowercase() || c.is_ascii_digit(),
                    "unexpected {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn escaped_hex_is_quote() {
        assert_eq!(samples(r"\x22", 1), vec!["\""]);
    }

    #[test]
    fn fixed_count_class() {
        for s in samples("[A-Z]{3}", 50) {
            assert_eq!(s.len(), 3);
            assert!(s.chars().all(|c| c.is_ascii_uppercase()));
        }
    }
}
