//! Offline stand-in for the parts of `proptest` this workspace uses.
//!
//! Implements the `proptest!` runner macro, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, strategies for regex-like string
//! patterns, numeric ranges, tuples, `prop::collection::vec`,
//! `any::<T>()`, `Just`, and the `prop_map` / `prop_flat_map`
//! combinators.
//!
//! Differences from real proptest: no shrinking (a failing case reports
//! its deterministic seed instead), and case generation is uniform
//! rather than size-biased. Case seeds derive from the test name, so
//! runs are reproducible; set `PROPTEST_CASES` to change the case count
//! (default 128).

pub mod pattern;
pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::vec;
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Runs each `#[test] fn name(binding in strategy, ...) { body }` body
/// against `PROPTEST_CASES` generated inputs (default 128).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pse_proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __pse_proptest_rng,
                        );
                    )+
                    #[allow(unreachable_code)]
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })()
                });
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)
            )));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)*), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}
