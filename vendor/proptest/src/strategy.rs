//! Value-generation strategies: the stand-in for proptest's `Strategy`
//! trait and the combinators this workspace uses.

use crate::pattern::Pattern;
use rand::rngs::StdRng;
use rand::RngExt;

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String patterns (regex subset) are strategies producing `String`.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        Pattern::compile(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        Pattern::compile(self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.source.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut StdRng) -> T::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        // Finite values across a wide dynamic range.
        let mag: f64 = rng.random::<f64>() * 2e6 - 1e6;
        mag / (1.0 + rng.random::<f64>() * 1e3)
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Element-count specification for `collection::vec`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.random_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, count)` — count may be a `usize`,
/// `Range<usize>`, or `RangeInclusive<usize>`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = vec(0usize..5, 2..7);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn flat_map_threads_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = (1usize..=4, 1usize..=4)
            .prop_flat_map(|(r, c)| vec(0.0f64..1.0, r * c).prop_map(move |d| (r, c, d)));
        for _ in 0..50 {
            let (r, c, d) = strat.generate(&mut rng);
            assert_eq!(d.len(), r * c);
        }
    }

    #[test]
    fn string_strategy_compiles_pattern() {
        let mut rng = StdRng::seed_from_u64(3);
        let s = "[a-c]{2,4}".generate(&mut rng);
        assert!((2..=4).contains(&s.len()));
    }
}
