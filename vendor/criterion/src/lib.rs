//! Offline stand-in for the parts of `criterion` this workspace uses:
//! `Criterion`, benchmark groups, `Bencher::iter` / `iter_batched` /
//! `iter_custom`, `BatchSize`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is simple adaptive wall-clock sampling: a short warmup
//! sizes the per-sample iteration count so each benchmark stays around
//! `sample_size × ~10 ms`, then the median per-iteration time is
//! reported. Results also accumulate in a process-wide registry that
//! `all_results()` exposes, so bench binaries can emit machine-readable
//! summaries.

use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
pub struct BenchResult {
    pub id: String,
    pub median_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// All results measured so far in this process, in execution order.
pub fn all_results() -> Vec<BenchResult> {
    RESULTS.lock().unwrap().clone()
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    /// Iterations the routine must run this sample.
    iters: u64,
    /// Measured duration of those iterations.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    // Warmup sample: one iteration, used to size the real samples.
    let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));

    // Aim for ~10ms per sample, capped so slow benchmarks stay bounded.
    let target = Duration::from_millis(10);
    let iters = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let samples =
        if per_iter > Duration::from_millis(100) { sample_size.clamp(2, 5) } else { sample_size };

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        times.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = times[times.len() / 2];

    println!("{id:<50} time: [{}]   ({samples} samples × {iters} iters)", fmt_ns(median));
    RESULTS.lock().unwrap().push(BenchResult {
        id: id.to_string(),
        median_ns: median,
        samples,
        iters_per_sample: iters,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags cargo passes (e.g. `--bench`).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop_add", |b| b.iter(|| black_box(1u64) + 1));
        let results = all_results();
        let r = results.iter().find(|r| r.id == "noop_add").unwrap();
        assert!(r.median_ns > 0.0);
    }

    #[test]
    fn groups_prefix_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(2).bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
        assert!(all_results().iter().any(|r| r.id == "grp/inner"));
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        c.sample_size(2).bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        assert!(all_results().iter().any(|r| r.id == "batched"));
    }
}
