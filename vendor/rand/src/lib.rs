//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! Provides a deterministic, platform-stable PRNG (`rngs::StdRng`,
//! xoshiro256++ seeded via SplitMix64), the `Rng` core trait, the
//! `RngExt` convenience extension (`random`, `random_bool`,
//! `random_range`, `random_ratio`), `SeedableRng::seed_from_u64`, and
//! `seq::SliceRandom::shuffle`.
//!
//! The same `seed_from_u64` seed yields the same stream on every
//! platform — a property the workspace's reproducibility guarantees
//! rely on.

/// Core random source: everything is derived from `next_u64`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a raw random source
/// (the stand-in for rand's `StandardUniform` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` without modulo bias (rejection from
/// the widened multiply, Lemire's method).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_in<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        start + u * (end - start)
    }
}

/// Convenience methods over any `Rng` (rand 0.9+ naming).
pub trait RngExt: Rng {
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }

    fn random_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(numerator <= denominator);
        assert!(denominator > 0);
        uniform_below(self, denominator as u64) < numerator as u64
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    ///
    /// Not the upstream `StdRng` algorithm (upstream is ChaCha12), but
    /// identical in contract: seedable, platform-stable, and
    /// statistically strong enough for data generation and shuffling.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngExt};

    /// Slice shuffling (Fisher–Yates) and sampling helpers.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    use super::Rng;

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.random_range(1..=3usize);
            assert!((1..=3).contains(&i));
        }
    }

    #[test]
    fn uniform_f64_is_half_on_average() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.random::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits={hits}");
    }
}
