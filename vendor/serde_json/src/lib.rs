//! Offline stand-in for the parts of `serde_json` this workspace uses:
//! `to_string`, `to_string_pretty`, `to_value`, `from_str`, and
//! `from_value`, all over the JSON-like `serde::Value` tree of the
//! sibling `serde` stub.
//!
//! Numbers print losslessly: integers as integers, floats via Rust's
//! shortest-round-trip `Display`, so `to_string` → `from_str` is exact.

pub use serde::Value;
use serde::{Deserialize, Serialize};

pub type Error = serde::Error;
pub type Result<T> = std::result::Result<T, Error>;

// ---- serialization ---------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep the float/integer distinction through a round-trip.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's `null`.
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => fmt_f64(*x, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

// ---- parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> Error {
        serde::Error(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let c = if (0xD800..0xE000).contains(&cp) {
                                // Surrogate pair: expect a following low surrogate.
                                if self.bytes.get(self.pos + 5) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 6) == Some(&b'u')
                                {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 7..self.pos + 11)
                                        .ok_or_else(|| self.err("truncated surrogate pair"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("bad surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("bad codepoint"))?
                            };
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.err("invalid integer"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.err("invalid integer"))
        }
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    T::from_value(&value)
}

pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-7i64).unwrap()).unwrap(), -7);
        assert!(from_str::<bool>("true").unwrap());
        let x = 0.1f64 + 0.2;
        assert_eq!(from_str::<f64>(&to_string(&x).unwrap()).unwrap(), x);
    }

    #[test]
    fn roundtrip_string_escapes() {
        let s = "a \"quoted\" line\nwith\ttabs and unicode: é 漢 \\".to_string();
        assert_eq!(from_str::<String>(&to_string(&s).unwrap()).unwrap(), s);
    }

    #[test]
    fn roundtrip_containers() {
        let v: Vec<Option<u32>> = vec![Some(1), None, Some(3)];
        assert_eq!(from_str::<Vec<Option<u32>>>(&to_string(&v).unwrap()).unwrap(), v);
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), vec![1u32, 2]);
        m.insert("b".to_string(), vec![]);
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<u32>>>(&to_string(&m).unwrap())
                .unwrap(),
            m
        );
    }

    #[test]
    fn floats_stay_floats() {
        let s = to_string(&2.0f64).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str::<f64>(&s).unwrap(), 2.0);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }
}
