//! Offline stand-in for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` for non-generic structs and enums.
//!
//! The input item is parsed directly from the `proc_macro` token stream
//! (no `syn`/`quote` in an offline build), and the generated impls are
//! rendered as source text targeting the `Value`-tree data model of the
//! sibling `serde` stub. Externally-tagged enum representation matches
//! real serde: unit variants as strings, data variants as single-entry
//! objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    /// Named fields in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count).
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

/// Skips `#[...]` attribute groups and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(tt) if is_punct(tt, '#') => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
                    other => panic!("serde_derive stub: malformed attribute, got {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => return,
        }
    }
}

/// Consumes type tokens up to (not including) a top-level `,`,
/// tracking `<`/`>` nesting so commas inside generics don't terminate.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle: i32 = 0;
    while let Some(tt) = tokens.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
        tokens.next();
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                names.push(id.to_string());
                match tokens.next() {
                    Some(tt) if is_punct(&tt, ':') => {}
                    other => panic!("serde_derive stub: expected `:` after field, got {other:?}"),
                }
                skip_type(&mut tokens);
                // consume the separating comma, if any
                if let Some(tt) = tokens.peek() {
                    if is_punct(tt, ',') {
                        tokens.next();
                    }
                }
            }
            None => return names,
            other => panic!("serde_derive stub: unexpected token in fields: {other:?}"),
        }
    }
}

fn count_tuple_fields(group: TokenStream) -> usize {
    let mut tokens = group.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut tokens);
        if tokens.peek().is_none() {
            return count;
        }
        count += 1;
        skip_type(&mut tokens);
        if let Some(tt) = tokens.peek() {
            if is_punct(tt, ',') {
                tokens.next();
            }
        }
    }
}

fn parse_variants(group: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        match tokens.next() {
            Some(TokenTree::Ident(id)) => {
                let name = id.to_string();
                let fields = match tokens.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = g.stream();
                        tokens.next();
                        Fields::Tuple(count_tuple_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = g.stream();
                        tokens.next();
                        Fields::Named(parse_named_fields(g))
                    }
                    _ => Fields::Unit,
                };
                // skip an optional discriminant `= expr`
                if let Some(tt) = tokens.peek() {
                    if is_punct(tt, '=') {
                        tokens.next();
                        while let Some(tt) = tokens.peek() {
                            if is_punct(tt, ',') {
                                break;
                            }
                            tokens.next();
                        }
                    }
                }
                if let Some(tt) = tokens.peek() {
                    if is_punct(tt, ',') {
                        tokens.next();
                    }
                }
                variants.push(Variant { name, fields });
            }
            None => return variants,
            other => panic!("serde_derive stub: unexpected token in enum body: {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(tt) if is_punct(tt, '<')) {
        panic!("serde_derive stub: generic types are not supported (type `{name}`)");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(tt) if is_punct(&tt, ';') => Fields::Unit,
                other => panic!("serde_derive stub: unexpected struct body: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let variants = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_variants(g.stream())
                }
                other => panic!("serde_derive stub: unexpected enum body: {other:?}"),
            };
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive stub: cannot derive for `{other}` items"),
    }
}

// ---- Serialize -------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
                }
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(x0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", "),
                            )
                        }
                        Fields::Named(fs) => {
                            let binds = fs.join(", ");
                            let entries: Vec<String> = fs
                                .iter()
                                .map(|f| format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                ))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                                entries = entries.join(", "),
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

// ---- Deserialize -----------------------------------------------------------

fn named_fields_ctor(path: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: match {source}.get(\"{f}\") {{\n\
                     Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                     None => ::serde::Deserialize::missing_field(\"{f}\")?,\n\
                 }}"
            )
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => {
                    let ctor = named_fields_ctor(name, fs, "v");
                    format!(
                        "match v {{\n\
                             ::serde::Value::Object(_) => Ok({ctor}),\n\
                             other => Err(::serde::Error::expected(\"object for struct {name}\", other)),\n\
                         }}"
                    )
                }
                Fields::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => Ok({name}({items})),\n\
                             other => Err(::serde::Error::expected(\"array of {n} for struct {name}\", other)),\n\
                         }}",
                        items = items.join(", ")
                    )
                }
                Fields::Unit => format!(
                    "match v {{\n\
                         ::serde::Value::Null => Ok({name}),\n\
                         other => Err(::serde::Error::expected(\"null for unit struct {name}\", other)),\n\
                     }}"
                ),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     ::serde::Value::Array(items) if items.len() == {n} => Ok({name}::{vn}({items})),\n\
                                     other => Err(::serde::Error::expected(\"array of {n} for variant {vn}\", other)),\n\
                                 }},",
                                items = items.join(", ")
                            ))
                        }
                        Fields::Named(fs) => {
                            let ctor = named_fields_ctor(&format!("{name}::{vn}"), fs, "inner");
                            Some(format!(
                                "\"{vn}\" => match inner {{\n\
                                     ::serde::Value::Object(_) => Ok({ctor}),\n\
                                     other => Err(::serde::Error::expected(\"object for variant {vn}\", other)),\n\
                                 }},"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => Err(::serde::Error(format!(\"unknown unit variant `{{other}}` for enum {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, inner) = &fields[0];\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\n\
                                     other => Err(::serde::Error(format!(\"unknown variant `{{other}}` for enum {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             other => Err(::serde::Error::expected(\"enum {name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n"),
            )
        }
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive stub: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive stub: generated Deserialize impl failed to parse")
}
