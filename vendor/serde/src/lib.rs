//! Offline stand-in for the parts of `serde` this workspace uses.
//!
//! Instead of serde's visitor architecture, serialization goes through
//! a JSON-like [`Value`] tree: `Serialize` renders a value into a
//! `Value`, `Deserialize` rebuilds one from it. `serde_json` (the
//! sibling stub) prints and parses `Value` as real JSON, so
//! `#[derive(Serialize, Deserialize)]` + `serde_json::to_string` /
//! `from_str` round-trip exactly as with the real crates.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-like serialization data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers.
    U64(u64),
    /// Negative integers.
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path + expectation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn expected(what: &str, got: &Value) -> Error {
        let got = match got {
            Value::Null => "null".to_string(),
            Value::Bool(_) => "a bool".to_string(),
            Value::U64(n) => format!("integer {n}"),
            Value::I64(n) => format!("integer {n}"),
            Value::F64(x) => format!("number {x}"),
            Value::Str(s) => format!("string {s:?}"),
            Value::Array(_) => "an array".to_string(),
            Value::Object(_) => "an object".to_string(),
        };
        Error(format!("expected {what}, got {got}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for absent object fields; only `Option` accepts absence.
    fn missing_field(field: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{field}`")))
    }
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) if *n <= <$t>::MAX as u64 => Ok(*n as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U64(*self as u64) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) if *n <= <$t>::MAX as u64 => Ok(*n as $t),
                    Value::I64(n) if <$t>::try_from(*n).is_ok() => Ok(*n as $t),
                    _ => Err(Error::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", v)),
        }
    }
}

// ---- reference / container impls ------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed.try_into().map_err(|_| Error(format!("expected array of length {N}")))
            }
            _ => Err(Error::expected("fixed-size array", v)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = [$($idx),+].len();
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected("tuple array", v)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys
/// round-trip without a string encoding.
fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(entries.map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect())
}

fn map_entries_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Array(items) => items
            .iter()
            .map(|pair| match pair {
                Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                }
                _ => Err(Error::expected("[key, value] pair", pair)),
            })
            .collect(),
        _ => Err(Error::expected("map as array of pairs", v)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by serialized key rendering.
        let mut entries: Vec<(Value, Value)> =
            self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect();
        entries.sort_by(|(a, _), (b, _)| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(entries.into_iter().map(|(k, v)| Value::Array(vec![k, v])).collect())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_entries_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_entries_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_value(&self) -> Value {
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(items)
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
