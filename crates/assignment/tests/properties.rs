//! Property-based tests: the Hungarian solver is exact (matches brute
//! force), produces valid matchings, and dominates greedy.

use proptest::prelude::*;
use pse_assignment::{greedy_max_matching, hungarian_max_matching, total_weight, Matrix};

fn brute_force(weights: &Matrix) -> f64 {
    fn rec(w: &Matrix, row: usize, used: &mut Vec<bool>) -> f64 {
        if row == w.rows() {
            return 0.0;
        }
        let mut best = rec(w, row + 1, used);
        for c in 0..w.cols() {
            if !used[c] && w[(row, c)] > 0.0 {
                used[c] = true;
                best = best.max(w[(row, c)] + rec(w, row + 1, used));
                used[c] = false;
            }
        }
        best
    }
    rec(weights, 0, &mut vec![false; weights.cols()])
}

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=5, 1usize..=5).prop_flat_map(|(r, c)| {
        prop::collection::vec(0.0f64..1.0, r * c).prop_map(move |data| {
            let mut m = Matrix::zeros(r, c);
            for i in 0..r {
                for j in 0..c {
                    // Zero out ~30% of cells to exercise sparse cases.
                    let v = data[i * c + j];
                    m[(i, j)] = if v < 0.3 { 0.0 } else { v };
                }
            }
            m
        })
    })
}

proptest! {
    #[test]
    fn hungarian_matches_brute_force(m in arb_matrix()) {
        let h = total_weight(&hungarian_max_matching(&m));
        let b = brute_force(&m);
        prop_assert!((h - b).abs() < 1e-9, "hungarian={h} brute={b}");
    }

    #[test]
    fn matchings_are_valid(m in arb_matrix()) {
        for solve in [hungarian_max_matching, greedy_max_matching] {
            let sol = solve(&m);
            let mut rows: Vec<_> = sol.iter().map(|a| a.row).collect();
            let mut cols: Vec<_> = sol.iter().map(|a| a.col).collect();
            rows.sort_unstable();
            cols.sort_unstable();
            let rl = rows.len();
            let cl = cols.len();
            rows.dedup();
            cols.dedup();
            prop_assert_eq!(rows.len(), rl, "duplicate row");
            prop_assert_eq!(cols.len(), cl, "duplicate col");
            for a in &sol {
                prop_assert!(a.weight > 0.0);
                prop_assert!((a.weight - m[(a.row, a.col)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn greedy_bounded_by_hungarian(m in arb_matrix()) {
        let g = total_weight(&greedy_max_matching(&m));
        let h = total_weight(&hungarian_max_matching(&m));
        prop_assert!(g <= h + 1e-9);
        prop_assert!(g >= 0.5 * h - 1e-9, "greedy is a 1/2-approximation");
    }
}
