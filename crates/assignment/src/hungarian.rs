//! Exact maximum-weight bipartite matching via the Hungarian algorithm.
//!
//! The implementation is the classic O(n³) shortest-augmenting-path variant
//! with row/column potentials, solving the *minimum-cost* assignment on the
//! negated weight matrix. Rectangular inputs are padded with zero-weight
//! cells; padded matches and matches of non-positive weight are omitted from
//! the result, so the returned assignment only pairs rows and columns that
//! genuinely help the objective.

use crate::{Assignment, Matrix};

/// Compute a maximum-weight matching of `weights`.
///
/// Returns at most `min(rows, cols)` assignments, each with strictly
/// positive weight, such that no row or column is used twice and the total
/// weight is maximal among all matchings.
///
/// ```
/// use pse_assignment::{hungarian_max_matching, Matrix};
/// let w = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.7]]);
/// let m = hungarian_max_matching(&w);
/// // Choosing (0,0)+(1,1) = 1.6 beats (1,0)+(0,1) = 0.9.
/// assert_eq!(m.len(), 2);
/// assert!((pse_assignment::total_weight(&m) - 1.6).abs() < 1e-12);
/// ```
pub fn hungarian_max_matching(weights: &Matrix) -> Vec<Assignment> {
    let rows = weights.rows();
    let cols = weights.cols();
    if rows == 0 || cols == 0 {
        return Vec::new();
    }
    let n = rows.max(cols);

    // cost[i][j] = -weight for real cells, 0 for padding; 1-based internally
    // per the standard potentials formulation.
    let cost = |i: usize, j: usize| -> f64 {
        if i < rows && j < cols {
            -weights[(i, j)]
        } else {
            0.0
        }
    };

    const INF: f64 = f64::INFINITY;
    // Potentials u (rows) and v (cols); way[j] = previous column on the
    // augmenting path; p[j] = row matched to column j (0 = none; 1-based).
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1];
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = Vec::new();
    for (j, &i) in p.iter().enumerate().take(n + 1).skip(1) {
        if i == 0 {
            continue;
        }
        let (r, c) = (i - 1, j - 1);
        if r < rows && c < cols {
            let w = weights[(r, c)];
            if w > 0.0 {
                out.push(Assignment { row: r, col: c, weight: w });
            }
        }
    }
    out.sort_by_key(|a| a.row);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_weight;

    /// Brute-force optimum over all row→col injections (for small inputs).
    fn brute_force(weights: &Matrix) -> f64 {
        fn rec(weights: &Matrix, row: usize, used: &mut Vec<bool>) -> f64 {
            if row == weights.rows() {
                return 0.0;
            }
            // Option: leave this row unmatched.
            let mut best = rec(weights, row + 1, used);
            for c in 0..weights.cols() {
                if !used[c] {
                    used[c] = true;
                    let w = weights[(row, c)].max(0.0);
                    best = best.max(w + rec(weights, row + 1, used));
                    used[c] = false;
                }
            }
            best
        }
        rec(weights, 0, &mut vec![false; weights.cols()])
    }

    #[test]
    fn simple_square() {
        let w = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.7]]);
        let m = hungarian_max_matching(&w);
        assert_eq!(m.len(), 2);
        assert!((total_weight(&m) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn rectangular_wide_and_tall() {
        let wide = Matrix::from_rows(&[&[0.2, 0.9, 0.3]]);
        let m = hungarian_max_matching(&wide);
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].row, m[0].col), (0, 1));

        let tall = Matrix::from_rows(&[&[0.2], &[0.9], &[0.3]]);
        let m = hungarian_max_matching(&tall);
        assert_eq!(m.len(), 1);
        assert_eq!((m[0].row, m[0].col), (1, 0));
    }

    #[test]
    fn zero_weights_are_not_matched() {
        let w = Matrix::zeros(3, 3);
        assert!(hungarian_max_matching(&w).is_empty());
    }

    #[test]
    fn empty_inputs() {
        assert!(hungarian_max_matching(&Matrix::zeros(0, 5)).is_empty());
        assert!(hungarian_max_matching(&Matrix::zeros(5, 0)).is_empty());
    }

    #[test]
    fn greedy_trap() {
        // Greedy picks (0,0)=0.9 then (1,1)=0.1 for 1.0 total;
        // the optimum is (0,1)+(1,0) = 0.8 + 0.8 = 1.6.
        let w = Matrix::from_rows(&[&[0.9, 0.8], &[0.8, 0.1]]);
        let m = hungarian_max_matching(&w);
        assert!((total_weight(&m) - 1.6).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_matrices() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let rows = rng.random_range(1..=5);
            let cols = rng.random_range(1..=5);
            let w = Matrix::from_fn(rows, cols, |_, _| {
                // Mix of positives and zeros.
                if rng.random_bool(0.3) {
                    0.0
                } else {
                    rng.random::<f64>()
                }
            });
            let m = hungarian_max_matching(&w);
            let opt = brute_force(&w);
            assert!(
                (total_weight(&m) - opt).abs() < 1e-9,
                "hungarian={} brute={} matrix={w:?}",
                total_weight(&m),
                opt
            );
            // No row/col reuse.
            let mut rs: Vec<_> = m.iter().map(|a| a.row).collect();
            let mut cs: Vec<_> = m.iter().map(|a| a.col).collect();
            rs.sort_unstable();
            rs.dedup();
            cs.sort_unstable();
            cs.dedup();
            assert_eq!(rs.len(), m.len());
            assert_eq!(cs.len(), m.len());
        }
    }
}
