//! Bipartite assignment solvers.
//!
//! DUMAS (Bilke & Naumann, ICDE 2005) turns its averaged field-similarity
//! matrix into attribute correspondences by solving a *maximum-weight
//! bipartite matching* problem. This crate provides an exact O(n³)
//! Hungarian (Kuhn–Munkres) solver plus a greedy solver used for ablations.

pub mod greedy;
pub mod hungarian;
pub mod matrix;

pub use greedy::greedy_max_matching;
pub use hungarian::hungarian_max_matching;
pub use matrix::Matrix;

/// One matched pair `(row, column)` with its weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// Row index in the weight matrix.
    pub row: usize,
    /// Column index in the weight matrix.
    pub col: usize,
    /// Weight of the matched cell.
    pub weight: f64,
}

/// Total weight of a set of assignments.
pub fn total_weight(assignments: &[Assignment]) -> f64 {
    assignments.iter().map(|a| a.weight).sum()
}
