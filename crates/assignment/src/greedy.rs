//! Greedy bipartite matching — a fast approximation used for ablations.

use crate::{Assignment, Matrix};

/// Greedily match the highest-weight remaining cell until no positive cell
/// is left. Runs in O(R·C·log(R·C)). Greedy is a ½-approximation of the
/// optimum; [`crate::hungarian_max_matching`] is exact.
pub fn greedy_max_matching(weights: &Matrix) -> Vec<Assignment> {
    let mut cells: Vec<Assignment> = (0..weights.rows())
        .flat_map(|r| {
            (0..weights.cols()).filter_map(move |c| {
                let w = weights[(r, c)];
                (w > 0.0).then_some(Assignment { row: r, col: c, weight: w })
            })
        })
        .collect();
    cells.sort_by(|a, b| b.weight.total_cmp(&a.weight));
    let mut row_used = vec![false; weights.rows()];
    let mut col_used = vec![false; weights.cols()];
    let mut out = Vec::new();
    for cell in cells {
        if !row_used[cell.row] && !col_used[cell.col] {
            row_used[cell.row] = true;
            col_used[cell.col] = true;
            out.push(cell);
        }
    }
    out.sort_by_key(|a| a.row);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hungarian_max_matching, total_weight};

    #[test]
    fn picks_best_cell_first() {
        let w = Matrix::from_rows(&[&[0.9, 0.8], &[0.8, 0.1]]);
        let m = greedy_max_matching(&w);
        // Greedy total = 0.9 + 0.1 = 1.0 < optimum 1.6.
        assert!((total_weight(&m) - 1.0).abs() < 1e-12);
        assert!(total_weight(&m) <= total_weight(&hungarian_max_matching(&w)));
    }

    #[test]
    fn greedy_is_at_least_half_of_optimum() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let w = Matrix::from_fn(4, 4, |_, _| rng.random::<f64>());
            let g = total_weight(&greedy_max_matching(&w));
            let h = total_weight(&hungarian_max_matching(&w));
            assert!(g >= 0.5 * h - 1e-9, "g={g} h={h}");
            assert!(g <= h + 1e-9);
        }
    }

    #[test]
    fn ignores_non_positive_cells() {
        let w = Matrix::from_rows(&[&[0.0, -1.0], &[0.0, 0.0]]);
        assert!(greedy_max_matching(&w).is_empty());
    }
}
