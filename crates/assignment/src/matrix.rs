//! A dense row-major `f64` matrix used as the weight input of the solvers.

/// Dense row-major matrix of weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix filled with `fill`.
    pub fn filled(rows: usize, cols: usize, fill: f64) -> Self {
        Self { rows, cols, data: vec![fill; rows * cols] }
    }

    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Build from nested slices.
    ///
    /// # Panics
    /// Panics when rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n_cols = rows.first().map_or(0, |r| r.len());
        assert!(rows.iter().all(|r| r.len() == n_cols), "ragged rows");
        Self {
            rows: rows.len(),
            cols: n_cols,
            data: rows.iter().flat_map(|r| r.iter().copied()).collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element-wise addition of another matrix of the same shape.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scale every element by `k`.
    pub fn scale(&mut self, k: f64) {
        for a in &mut self.data {
            *a *= k;
        }
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_fn_matches_layout() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 10 + c) as f64);
        assert_eq!(m[(1, 2)], 12.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn arithmetic() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a[(0, 0)], 1.5);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }
}
