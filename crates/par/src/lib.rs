//! # pse-par — deterministic data-parallel executor
//!
//! A zero-dependency data-parallel executor built on
//! [`std::thread::scope`]. Every entry point is **order-preserving and
//! deterministic**: output `i` is always the result of input `i`, no
//! matter how many worker threads run, so parallelism changes
//! wall-clock time and nothing else. The pipeline's byte-identical
//! output guarantee (experiment tables, CSV series, serialized
//! correspondences) rests on this property.
//!
//! ## Thread-count knob
//!
//! The worker count is resolved per call, in priority order:
//!
//! 1. a scoped override installed by [`with_threads`] (used by tests
//!    and benchmarks to compare 1-thread vs N-thread in one process),
//! 2. the `PSE_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! `PSE_THREADS=1` (or `with_threads(1, ..)`) forces the sequential
//! path through the same API — no threads are spawned at all.
//!
//! ## Panic propagation
//!
//! If a worker panics, every worker is still joined (no detached
//! threads, no deadlock) and then the panic payload of the **first**
//! failing chunk (in input order) is resumed on the caller's thread.
//!
//! ## Observability
//!
//! When `pse-obs` instrumentation is on (`PSE_OBS=1`), every entry point
//! records one timeline event per chunk — worker id, chunk index, item
//! count, start/stop — labelled with the caller's active span path, and
//! worker threads inherit that path so spans opened inside chunks stay
//! attributed to the forking stage. While off (the default), the only
//! cost is one relaxed atomic load per call; recording never changes
//! results either way.

use std::cell::Cell;
use std::panic::resume_unwind;
use std::thread;

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Resolves the worker count for the current call context.
pub fn current_threads() -> usize {
    if let Some(n) = THREAD_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("PSE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `f` with the worker count pinned to `n` on this thread
/// (overriding `PSE_THREADS`), restoring the previous setting on exit —
/// including on panic.
pub fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(THREAD_OVERRIDE.with(|c| c.replace(Some(n.max(1)))));
    f()
}

/// Joins workers in chunk order, preserving output order and resuming
/// the first panic only after every worker has been joined.
fn join_ordered<U>(handles: Vec<thread::ScopedJoinHandle<'_, Vec<U>>>, out: &mut Vec<U>) {
    let mut first_panic = None;
    for handle in handles {
        match handle.join() {
            Ok(chunk) => {
                if first_panic.is_none() {
                    out.extend(chunk);
                }
            }
            Err(payload) => {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
}

/// Order-preserving parallel map: `out[i] == f(&items[i])` at any
/// thread count.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    par_map_chunked(items, 1, f)
}

/// Order-preserving parallel map with a minimum chunk size: each worker
/// processes contiguous runs of at least `min_chunk` items, amortizing
/// dispatch overhead when `f` is cheap. Semantically identical to
/// [`par_map`].
pub fn par_map_chunked<T, U, F>(items: &[T], min_chunk: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = current_threads();
    let min_chunk = min_chunk.max(1);
    let obs = pse_obs::par_call();
    if threads <= 1 || items.len() <= min_chunk {
        let _t = obs.as_ref().map(|c| c.chunk(0, 0, items.len()));
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads).max(min_chunk);
    let mut out = Vec::with_capacity(items.len());
    thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let obs = obs.clone();
                s.spawn(move || {
                    let _t = obs.as_ref().map(|c| c.chunk(ci, ci, slice.len()));
                    slice.iter().map(f).collect::<Vec<U>>()
                })
            })
            .collect();
        join_ordered(handles, &mut out);
    });
    out
}

/// Order-preserving parallel map with per-worker scratch state: `init`
/// runs once per worker, and `f` receives the worker's scratch for
/// every item it processes. The scratch must never influence results in
/// an order-dependent way if determinism is required — it exists for
/// allocation reuse (buffers, interners), not accumulation.
pub fn par_map_init<T, U, S, I, F>(items: &[T], init: I, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> U + Sync,
{
    let threads = current_threads();
    let obs = pse_obs::par_call();
    if threads <= 1 || items.len() <= 1 {
        let _t = obs.as_ref().map(|c| c.chunk(0, 0, items.len()));
        let mut scratch = init();
        return items.iter().map(|item| f(&mut scratch, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    thread::scope(|s| {
        let (init, f) = (&init, &f);
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let obs = obs.clone();
                s.spawn(move || {
                    let _t = obs.as_ref().map(|c| c.chunk(ci, ci, slice.len()));
                    let mut scratch = init();
                    slice.iter().map(|item| f(&mut scratch, item)).collect::<Vec<U>>()
                })
            })
            .collect();
        join_ordered(handles, &mut out);
    });
    out
}

/// Parallel for-each with per-worker scratch state. Side effects only;
/// use [`par_map_init`] when results are needed.
pub fn par_for_each_init<T, S, I, F>(items: &[T], init: I, f: F)
where
    T: Sync,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) + Sync,
{
    par_map_init(items, init, |scratch, item| f(scratch, item));
}

/// Order-preserving indexed parallel map: like [`par_map`] but `f`
/// also receives the item's index in `items`.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = current_threads();
    let obs = pse_obs::par_call();
    if threads <= 1 || items.len() <= 1 {
        let _t = obs.as_ref().map(|c| c.chunk(0, 0, items.len()));
        return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out = Vec::with_capacity(items.len());
    thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(chunk_idx, slice)| {
                let base = chunk_idx * chunk;
                let obs = obs.clone();
                s.spawn(move || {
                    let _t = obs.as_ref().map(|c| c.chunk(chunk_idx, chunk_idx, slice.len()));
                    slice.iter().enumerate().map(|(i, item)| f(base + i, item)).collect::<Vec<U>>()
                })
            })
            .collect();
        join_ordered(handles, &mut out);
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_map_matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 7, 64] {
            let got = with_threads(threads, || par_map(&items, |x| x * x));
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert_eq!(with_threads(4, || par_map(&empty, |x| x + 1)), Vec::<u32>::new());
        assert_eq!(with_threads(4, || par_map(&[9u32], |x| x + 1)), vec![10]);
    }

    #[test]
    fn chunked_respects_order() {
        let items: Vec<usize> = (0..97).collect();
        let got = with_threads(5, || par_map_chunked(&items, 8, |x| x * 3));
        assert_eq!(got, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_map_sees_true_indices() {
        let items = vec!["a"; 53];
        let got = with_threads(4, || par_map_indexed(&items, |i, _| i));
        assert_eq!(got, (0..53).collect::<Vec<_>>());
    }

    #[test]
    fn init_runs_once_per_worker() {
        let inits = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let got = with_threads(4, || {
            par_map_init(
                &items,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    Vec::<u32>::new()
                },
                |scratch, x| {
                    scratch.push(*x);
                    x + 1
                },
            )
        });
        assert_eq!(got, (1..=100).collect::<Vec<_>>());
        let n = inits.load(Ordering::SeqCst);
        assert!((1..=4).contains(&n), "init ran {n} times");
    }

    #[test]
    fn for_each_init_visits_everything() {
        let count = AtomicUsize::new(0);
        let items: Vec<u32> = (0..500).collect();
        with_threads(4, || {
            par_for_each_init(
                &items,
                || (),
                |(), _| {
                    count.fetch_add(1, Ordering::SeqCst);
                },
            )
        });
        assert_eq!(count.load(Ordering::SeqCst), 500);
    }

    #[test]
    fn worker_panic_propagates_first_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(8, || {
                par_map(&items, |&x| {
                    if x == 5 {
                        panic!("boom at 5");
                    }
                    if x == 60 {
                        panic!("boom at 60");
                    }
                    x
                })
            })
        });
        let payload = result.expect_err("must panic");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom at 5", "first chunk's panic wins");
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = current_threads();
        let _ = std::panic::catch_unwind(|| {
            with_threads(3, || panic!("inner"));
        });
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn one_thread_spawns_nothing() {
        // Sequential path: the closure runs on the caller's thread.
        let caller = std::thread::current().id();
        let seen = with_threads(1, || par_map(&[1, 2, 3], |_| std::thread::current().id()));
        assert!(seen.iter().all(|&id| id == caller));
    }
}
