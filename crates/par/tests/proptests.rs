//! Property tests for the executor's invariants: at every thread count,
//! `par_map` preserves length and order, agrees with the sequential map,
//! and propagates worker panics.

use proptest::prelude::*;
use pse_par::{par_map, par_map_chunked, par_map_indexed, with_threads};

proptest! {
    fn par_map_preserves_length_and_order(
        items in prop::collection::vec(any::<i64>(), 0..200),
        threads in 1usize..9,
    ) {
        let expected: Vec<i64> = items.iter().map(|x| x.wrapping_mul(3)).collect();
        let got = with_threads(threads, || par_map(&items, |x| x.wrapping_mul(3)));
        prop_assert_eq!(got.len(), items.len());
        prop_assert_eq!(got, expected);
    }

    fn chunked_map_matches_sequential(
        items in prop::collection::vec(any::<u32>(), 0..300),
        threads in 1usize..9,
        min_chunk in 1usize..40,
    ) {
        let expected: Vec<u64> = items.iter().map(|&x| u64::from(x) + 7).collect();
        let got = with_threads(threads, || {
            par_map_chunked(&items, min_chunk, |&x| u64::from(x) + 7)
        });
        prop_assert_eq!(got, expected);
    }

    fn indexed_map_sees_correct_indices(
        len in 0usize..250,
        threads in 1usize..9,
    ) {
        let items = vec![(); len];
        let got = with_threads(threads, || par_map_indexed(&items, |i, _| i));
        prop_assert_eq!(got, (0..len).collect::<Vec<_>>());
    }

    fn worker_panics_always_propagate(
        len in 1usize..120,
        panic_at in 0usize..120,
        threads in 1usize..9,
    ) {
        prop_assume!(panic_at < len);
        let items: Vec<usize> = (0..len).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(threads, || {
                par_map(&items, |&x| {
                    assert!(x != panic_at, "injected panic");
                    x
                })
            })
        });
        prop_assert!(result.is_err(), "panic at index {} was swallowed", panic_at);
    }
}
