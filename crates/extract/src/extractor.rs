//! The table-based attribute extractor.

use pse_core::Spec;
use pse_html::{extract_tables, parse, Table};

/// Tunables for the extractor. The defaults mirror the paper's "simple
/// extractor" plus minimal sanity limits so a page-wide layout table does
/// not flood the pipeline with kilobyte-long "values".
#[derive(Debug, Clone)]
pub struct ExtractionConfig {
    /// Maximum character length of an attribute *name* cell; longer first
    /// cells are treated as prose, not attribute names.
    pub max_name_len: usize,
    /// Maximum character length of a value cell.
    pub max_value_len: usize,
    /// Skip rows whose cells are `<th>` headers spanning the table
    /// ("Specifications" banners).
    pub skip_header_only_rows: bool,
}

impl Default for ExtractionConfig {
    fn default() -> Self {
        Self { max_name_len: 80, max_value_len: 400, skip_header_only_rows: true }
    }
}

/// A reusable extractor.
#[derive(Debug, Clone, Default)]
pub struct PageExtractor {
    config: ExtractionConfig,
}

impl PageExtractor {
    /// Extractor with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extractor with custom configuration.
    pub fn with_config(config: ExtractionConfig) -> Self {
        Self { config }
    }

    /// Extract attribute–value pairs from a landing page.
    ///
    /// Every table on the page contributes its two-column rows; the first
    /// column is the attribute name, the second the value. Rows failing the
    /// sanity limits are dropped.
    pub fn extract(&self, html: &str) -> Spec {
        let _obs = pse_obs::span("extract.page");
        let doc = parse(html);
        let mut spec = Spec::new();
        for table in extract_tables(&doc) {
            self.extract_from_table(&table, &mut spec);
        }
        pse_obs::incr("extract.pages");
        pse_obs::add("extract.pairs_extracted", spec.len() as u64);
        pse_obs::observe("extract.pairs_per_page", spec.len() as u64);
        spec
    }

    fn extract_from_table(&self, table: &Table, spec: &mut Spec) {
        for row in &table.rows {
            // "Rows with two columns": exactly two cells, neither spanning.
            if row.len() != 2 {
                continue;
            }
            let (name_cell, value_cell) = (&row[0], &row[1]);
            if name_cell.colspan != 1 || value_cell.colspan != 1 {
                continue;
            }
            if self.config.skip_header_only_rows && name_cell.is_header && value_cell.is_header {
                continue;
            }
            let name = name_cell.text.trim().trim_end_matches(':').trim();
            let value = value_cell.text.trim();
            if name.is_empty() || value.is_empty() {
                continue;
            }
            if exceeds_chars(name, self.config.max_name_len)
                || exceeds_chars(value, self.config.max_value_len)
            {
                continue;
            }
            spec.push(name, value);
        }
    }
}

/// Length limit in *characters*, not bytes — multi-byte UTF-8 text
/// ("Diagonale d'écran") must not hit the limit earlier than ASCII. The
/// byte length is a cheap upper bound on the char count, so most cells
/// skip the char walk entirely.
fn exceeds_chars(s: &str, max: usize) -> bool {
    s.len() > max && s.chars().count() > max
}

/// One-shot convenience: extract pairs with the default configuration.
pub fn extract_pairs(html: &str) -> Spec {
    PageExtractor::new().extract(html)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_two_column_rows() {
        let html = "\
            <html><body><h1>Hitachi Deskstar</h1>\
            <table>\
              <tr><td>Brand</td><td>Hitachi</td></tr>\
              <tr><td>Capacity:</td><td>500 GB</td></tr>\
              <tr><td>RPM</td><td>7200 rpm</td></tr>\
            </table></body></html>";
        let spec = extract_pairs(html);
        assert_eq!(spec.len(), 3);
        assert_eq!(spec.get("Brand"), Some("Hitachi"));
        assert_eq!(spec.get("Capacity"), Some("500 GB")); // ':' stripped
        assert_eq!(spec.get("rpm"), Some("7200 rpm"));
    }

    #[test]
    fn ignores_three_column_and_merged_rows() {
        let html = "\
            <table>\
              <tr><td>A</td><td>B</td><td>C</td></tr>\
              <tr><td colspan=2>Free shipping on all orders!</td></tr>\
              <tr><td>Interface</td><td>SATA</td></tr>\
            </table>";
        let spec = extract_pairs(html);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.get("Interface"), Some("SATA"));
    }

    #[test]
    fn misses_bullet_list_specs() {
        // The paper's extractor only handles tables; lists are missed.
        let html = "<ul><li>Brand: Hitachi</li><li>Capacity: 500 GB</li></ul>";
        assert!(extract_pairs(html).is_empty());
    }

    #[test]
    fn collects_from_multiple_tables() {
        let html = "\
            <table><tr><td>Brand</td><td>Sony</td></tr></table>\
            <div>reviews</div>\
            <table><tr><td>Zoom</td><td>10x</td></tr></table>";
        let spec = extract_pairs(html);
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.get("Zoom"), Some("10x"));
    }

    #[test]
    fn extracts_noise_from_non_spec_tables() {
        // Navigation / review tables with a two-column shape produce bogus
        // pairs — by design; schema reconciliation filters them later.
        let html = "\
            <table>\
              <tr><td>John D.</td><td>Great drive, works perfectly</td></tr>\
            </table>";
        let spec = extract_pairs(html);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.get("John D."), Some("Great drive, works perfectly"));
    }

    #[test]
    fn header_banner_rows_are_skipped() {
        let html = "\
            <table>\
              <tr><th>Specification</th><th>Value</th></tr>\
              <tr><td>Speed</td><td>7200</td></tr>\
            </table>";
        let spec = extract_pairs(html);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.get("Speed"), Some("7200"));
    }

    #[test]
    fn length_limits_drop_prose() {
        let long = "x".repeat(500);
        let html = format!(
            "<table><tr><td>Description</td><td>{long}</td></tr>\
             <tr><td>Speed</td><td>7200</td></tr></table>"
        );
        let spec = extract_pairs(&html);
        assert_eq!(spec.len(), 1);
    }

    #[test]
    fn length_limits_count_chars_not_bytes() {
        // "é" is 2 bytes in UTF-8: a 60-char accented name is 61+ bytes and
        // used to be rejected against max_name_len=80 only for ASCII-length
        // reasons when pushed past the byte limit. Pin char semantics: a
        // name of exactly max_name_len chars passes even when its byte
        // length exceeds max_name_len.
        let config = ExtractionConfig { max_name_len: 20, max_value_len: 20, ..Default::default() };
        let extractor = PageExtractor::with_config(config);
        let name = "é".repeat(20); // 20 chars, 40 bytes
        let value = "écran très présent…"; // 19 chars, > 20 bytes
        let html = format!("<table><tr><td>{name}</td><td>{value}</td></tr></table>");
        let spec = extractor.extract(&html);
        assert_eq!(spec.len(), 1, "multi-byte cells within the char limit must survive");
        assert_eq!(spec.get(&name), Some(value));

        // One char over the limit is still rejected.
        let over = "é".repeat(21);
        let html = format!("<table><tr><td>{over}</td><td>ok</td></tr></table>");
        assert!(extractor.extract(&html).is_empty());
    }

    #[test]
    fn empty_cells_dropped() {
        let html =
            "<table><tr><td></td><td>orphan</td></tr><tr><td>Name</td><td> </td></tr></table>";
        assert!(extract_pairs(html).is_empty());
    }

    #[test]
    fn nested_spec_table_inside_layout_table() {
        let html = "\
            <table><tr><td>\
              <table>\
                <tr><td>Brand</td><td>Hitachi</td></tr>\
                <tr><td>Capacity</td><td>500 GB</td></tr>\
              </table>\
            </td><td>sidebar</td></tr></table>";
        let spec = extract_pairs(html);
        // Outer table's single row has 2 cells but the first is empty
        // (nested-table text excluded), so only the inner rows survive.
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.get("Brand"), Some("Hitachi"));
    }

    #[test]
    fn never_panics_on_garbage() {
        for html in ["", "<table>", "<table><tr><td>", "<<<", "<table><tr><td>a<td>b"] {
            let _ = extract_pairs(html);
        }
    }
}
