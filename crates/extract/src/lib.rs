//! Web-page attribute extraction (Section 4 of the paper).
//!
//! The extractor "parses the DOM tree of the Web page and returns all tables
//! on the page. It also selects the attribute-value pairs from the tables,
//! i.e., rows with two columns, where we consider the first column to be the
//! attribute name and the second column to be the attribute value."
//!
//! Deliberately simple: offers whose specifications are *not* formatted as
//! two-column table rows (bulleted lists, free text) are missed, and noisy
//! rows (marketing copy, review snippets) are extracted as bogus pairs. The
//! downstream Schema Reconciliation component is responsible for filtering
//! that noise — a key claim of the paper validated in the evaluation.

pub mod extractor;

pub use extractor::{extract_pairs, ExtractionConfig, PageExtractor};
