//! Request tracing and flight recorder under real concurrency.
//!
//! Lives in its own integration-test binary because several tests toggle
//! the process-global observability flag and assert on recorded state;
//! they serialize on a local lock so cargo's parallel test harness cannot
//! interleave them.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use pse_obs::{
    start_request_trace, FlightRecorder, RecorderConfig, RequestTrace, TraceId, TraceSpan,
};
use serde::Deserialize;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn obs_session() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pse_obs::reset();
    pse_obs::set_enabled(true);
    guard
}

fn end_session() {
    pse_obs::set_enabled(false);
    pse_obs::reset();
}

fn trace(id: u64, total_ns: u64) -> RequestTrace {
    RequestTrace {
        id: TraceId(id),
        endpoint: "products".into(),
        status: 200,
        start_ns: id,
        total_ns,
        dropped_spans: 0,
        spans: vec![TraceSpan {
            path: "serve.request.products".into(),
            depth: 1,
            start_ns: 0,
            dur_ns: total_ns / 2,
        }],
    }
}

/// Satellite: N threads completing traces against a small ring, a reader
/// polling JSON mid-churn. Capacity is never exceeded, the JSON stays
/// valid throughout, and the slowest-over-threshold trace is never
/// evicted.
#[test]
fn recorder_under_concurrent_churn() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 200;
    let recorder = Arc::new(FlightRecorder::new(RecorderConfig {
        recent_capacity: 8,
        slow_capacity: 4,
        slow_threshold_ns: 1_000,
    }));
    let stop = AtomicBool::new(false);
    // One deterministic excursion far above everything else, plus a few
    // threshold-crossers per thread; the bulk stays fast.
    let slowest_id = PER_THREAD + 7; // thread 1, i 7
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let recorder = Arc::clone(&recorder);
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let id = t * PER_THREAD + i;
                    let total = if id == slowest_id {
                        9_999_999
                    } else if i % 50 == 0 {
                        2_000 + id // over threshold, all distinct
                    } else {
                        10 + (id % 7)
                    };
                    recorder.record(trace(id, total));
                }
            });
        }
        // Reader thread: /debug/requests must be valid JSON mid-churn and
        // the windows must respect their capacities at every observation.
        let recorder_r = Arc::clone(&recorder);
        let stop_r = &stop;
        let reader = scope.spawn(move || {
            let mut observations = 0u32;
            while !stop_r.load(Ordering::Relaxed) {
                let json = recorder_r.requests_json();
                let parsed: serde::Value =
                    serde_json::from_str(&json).expect("valid JSON mid-churn");
                let dbg = pse_obs::DebugRequests::from_value(&parsed).expect("well-shaped");
                assert!(dbg.recent.len() <= 8, "recent window over capacity");
                assert!(dbg.slowest.len() <= 4, "slow set over capacity");
                assert!(dbg.slowest.windows(2).all(|w| w[0].total_ns >= w[1].total_ns));
                observations += 1;
            }
            observations
        });
        // scope joins the writers; then stop the reader.
        std::thread::sleep(std::time::Duration::from_millis(5));
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().expect("reader joins") > 0);
    });
    assert_eq!(recorder.recorded(), THREADS * PER_THREAD);
    assert_eq!(recorder.recent().len(), 8);
    let slow = recorder.slowest();
    assert_eq!(slow.len(), 4, "slow set filled");
    assert_eq!(slow[0].id, TraceId(slowest_id), "the slowest request is never evicted");
    assert_eq!(slow[0].total_ns, 9_999_999);
    assert!(slow.iter().all(|t| t.total_ns >= 1_000), "only over-threshold traces tail-sampled");
    assert_eq!(recorder.find(TraceId(slowest_id)).unwrap().total_ns, 9_999_999);
}

/// The span-tree contract: spans closed while a trace is active land in
/// the trace with correct depths, and same-depth durations on one thread
/// sum to at most the request total.
#[test]
fn request_trace_records_nested_spans() {
    let _g = obs_session();
    let trace = start_request_trace(Some(TraceId(0xabc)));
    assert!(trace.active());
    {
        let _req = pse_obs::span("serve.request");
        {
            let _parse = pse_obs::span("parse");
        }
        {
            let _route = pse_obs::span("products");
            let _probe = pse_obs::span("cache_probe");
        }
    }
    let done = trace.finish("products", 200).expect("recording");
    end_session();

    assert_eq!(done.id, TraceId(0xabc));
    assert_eq!((done.endpoint.as_str(), done.status), ("products", 200));
    assert_eq!(done.dropped_spans, 0);
    let got: Vec<(&str, u64)> = done.spans.iter().map(|s| (s.path.as_str(), s.depth)).collect();
    // Spans appear in completion order, depth 1 = children of the envelope.
    assert_eq!(
        got,
        [
            ("serve.request.parse", 2),
            ("serve.request.products.cache_probe", 3),
            ("serve.request.products", 2),
            ("serve.request", 1),
        ]
    );
    // Per-stage (same depth, same thread) durations sum to <= the total.
    for depth in [1, 2, 3] {
        let stage_sum: u64 = done.spans.iter().filter(|s| s.depth == depth).map(|s| s.dur_ns).sum();
        assert!(
            stage_sum <= done.total_ns,
            "depth-{depth} spans sum to {stage_sum} > total {}",
            done.total_ns
        );
    }
    // And every span fits inside the request window.
    for s in &done.spans {
        assert!(s.start_ns + s.dur_ns <= done.total_ns + 1_000, "span outside request window");
    }
}

/// Trace context crosses the `ParCall` handshake: spans recorded inside
/// `pse-par` worker chunks land in the forking request's span tree, at a
/// depth below the forking span.
#[test]
fn par_workers_contribute_to_the_request_trace() {
    let _g = obs_session();
    let trace = start_request_trace(None);
    let items: Vec<u64> = (0..64).collect();
    let out = {
        let _req = pse_obs::span("serve.request");
        let _route = pse_obs::span("ingest");
        pse_par::with_threads(4, || {
            pse_par::par_map(&items, |&x| {
                let _w = pse_obs::span("reconcile");
                x * 2
            })
        })
    };
    let done = trace.finish("ingest", 200).expect("recording");
    end_session();

    assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    let workers: Vec<&TraceSpan> =
        done.spans.iter().filter(|s| s.path == "serve.request.ingest.reconcile").collect();
    assert!(!workers.is_empty(), "worker spans reached the trace");
    assert!(
        workers.iter().all(|s| s.depth == 3),
        "worker spans nest one below the forking span (depth 2)"
    );
    // Worker spans carry the trace-relative clock too.
    assert!(workers.iter().all(|s| s.start_ns + s.dur_ns <= done.total_ns + 1_000));
}

/// The per-trace span cap: pathological requests count drops instead of
/// growing without bound.
#[test]
fn span_cap_counts_drops() {
    let _g = obs_session();
    let trace = start_request_trace(None);
    for _ in 0..(pse_obs::trace::MAX_TRACE_SPANS + 40) {
        let _s = pse_obs::span("tick");
    }
    let done = trace.finish("other", 200).expect("recording");
    end_session();
    assert_eq!(done.spans.len(), pse_obs::trace::MAX_TRACE_SPANS);
    assert_eq!(done.dropped_spans, 40);
}

/// Inert guard while observability is off: nothing installed, finish
/// yields nothing, spans record nowhere.
#[test]
fn trace_guard_is_inert_when_disabled() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    pse_obs::set_enabled(false);
    pse_obs::reset();
    let trace = start_request_trace(None);
    assert!(!trace.active());
    assert_eq!(trace.id(), None);
    {
        let _s = pse_obs::span("ghost");
    }
    assert!(trace.finish("other", 200).is_none());
}

/// Dropping a guard without finishing uninstalls cleanly: a following
/// trace starts from scratch.
#[test]
fn dropped_guard_uninstalls() {
    let _g = obs_session();
    {
        let _abandoned = start_request_trace(None);
        let _s = pse_obs::span("before");
    }
    let trace = start_request_trace(None);
    {
        let _s = pse_obs::span("after");
    }
    let done = trace.finish("other", 200).expect("recording");
    end_session();
    let paths: Vec<&str> = done.spans.iter().map(|s| s.path.as_str()).collect();
    assert_eq!(paths, ["after"], "abandoned trace's spans do not leak into the next");
}
