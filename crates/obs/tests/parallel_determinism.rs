//! The sink's determinism contract under real parallelism: for a fixed
//! workload, counter totals are *exactly* equal at any thread count, and
//! the exported event structure (span paths, per-path counts, histogram
//! aggregates) is identical no matter how chunks interleave.
//!
//! `pse-par` is a dev-dependency here (cargo allows the dev-only cycle);
//! it gives the test the same executor the pipeline runs on.

use proptest::prelude::*;
use std::sync::Mutex;

/// Global-state lock: the sink and enabled flag are process-wide, and the
/// test harness runs tests on multiple threads.
static OBS_LOCK: Mutex<()> = Mutex::new(());

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A deterministic fingerprint of the report's *structural* content — the
/// parts that must not depend on thread count or interleaving. Durations
/// and timeline timings are excluded by construction.
fn fingerprint(r: &pse_obs::ObsReport) -> String {
    let mut out = String::new();
    for s in &r.spans {
        out.push_str(&format!("span {} x{}\n", s.path, s.count));
    }
    for c in &r.counters {
        out.push_str(&format!("counter {} = {}\n", c.name, c.value));
    }
    for h in &r.histograms {
        out.push_str(&format!(
            "hist {} n={} sum={} min={} max={} buckets={:?}\n",
            h.name,
            h.count,
            h.sum,
            h.min,
            h.max,
            h.buckets.iter().map(|b| (b.le, b.count)).collect::<Vec<_>>()
        ));
    }
    for t in &r.timelines {
        out.push_str(&format!(
            "timeline {} items={}\n",
            t.label,
            t.chunks.iter().map(|c| c.items).sum::<u64>()
        ));
    }
    out
}

/// Run `work` under an enabled, clean sink and return the report.
fn observed<F: FnOnce()>(work: F) -> pse_obs::ObsReport {
    pse_obs::reset();
    pse_obs::set_enabled(true);
    work();
    let r = pse_obs::report();
    pse_obs::set_enabled(false);
    pse_obs::reset();
    r
}

proptest! {
    #[test]
    fn counters_sum_exactly_at_any_thread_count(
        values in prop::collection::vec(0u64..1_000, 1..200),
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let expected: u64 = values.iter().sum();
        for threads in THREAD_COUNTS {
            let r = observed(|| {
                pse_par::with_threads(threads, || {
                    pse_par::par_map(&values, |&v| {
                        pse_obs::add("test.values", v);
                        pse_obs::incr("test.items");
                        v
                    })
                });
            });
            // `add(_, 0)` records nothing, so the counter is absent when
            // every sampled value is zero.
            prop_assert_eq!(
                r.counter("test.values").unwrap_or(0), expected,
                "threads={}", threads
            );
            prop_assert_eq!(
                r.counter("test.items"), Some(values.len() as u64),
                "threads={}", threads
            );
        }
    }

    #[test]
    fn event_structure_is_thread_count_invariant(
        values in prop::collection::vec(1u64..500, 2..120),
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let workload = |threads: usize| {
            observed(|| {
                let _stage = pse_obs::span("test.stage");
                pse_par::with_threads(threads, || {
                    pse_par::par_map(&values, |&v| {
                        // A span per item, opened inside worker threads:
                        // the path must inherit "test.stage" everywhere.
                        let _s = pse_obs::span("item");
                        pse_obs::observe("test.sizes", v);
                        v * 2
                    })
                });
            })
        };
        let baseline = fingerprint(&workload(1));
        for threads in &THREAD_COUNTS[1..] {
            prop_assert_eq!(
                &fingerprint(&workload(*threads)), &baseline,
                "threads={}", threads
            );
        }
        // And re-running at the same thread count is also identical.
        prop_assert_eq!(&fingerprint(&workload(4)), &fingerprint(&workload(4)));
    }

    #[test]
    fn timeline_covers_every_item_exactly_once(
        len in 1usize..300,
        threads in 1usize..9,
    ) {
        let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        let items: Vec<u64> = (0..len as u64).collect();
        let r = observed(|| {
            pse_par::with_threads(threads, || pse_par::par_map(&items, |&v| v + 1));
        });
        prop_assert_eq!(r.timelines.len(), 1);
        let t = &r.timelines[0];
        // Chunks partition the input: item counts sum to the input length,
        // chunk indices are 0..n with distinct workers.
        let total: u64 = t.chunks.iter().map(|c| c.items).sum();
        prop_assert_eq!(total, len as u64);
        let mut chunk_ids: Vec<u64> = t.chunks.iter().map(|c| c.chunk).collect();
        chunk_ids.sort_unstable();
        prop_assert_eq!(chunk_ids, (0..t.chunks.len() as u64).collect::<Vec<_>>());
        prop_assert!(t.chunks.len() <= threads.max(1));
        prop_assert_eq!(t.calls, 1);
    }
}

#[test]
fn nested_par_spans_attribute_to_caller_path() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let items: Vec<u64> = (0..64).collect();
    let r = observed(|| {
        let _run = pse_obs::span("pipeline");
        pse_par::with_threads(4, || {
            pse_par::par_map(&items, |&v| {
                let _s = pse_obs::span("work");
                v
            })
        });
    });
    let span = r.span("pipeline.work").expect("worker spans inherit the caller path");
    assert_eq!(span.count, 64);
    assert_eq!(r.timelines[0].label, "pipeline");
    assert_eq!(r.validate(), Ok(()));
}
