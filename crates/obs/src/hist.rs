//! Fixed-boundary integer histograms.
//!
//! Bucket boundaries are compile-time constants shared by every histogram,
//! and all accumulation is integer arithmetic (`u64` counts, `u128` sum),
//! so the aggregate is exactly the same no matter how many threads record
//! into it or in what order — the FP-order-independence requirement that
//! the rest of the pipeline already obeys for its scores.

/// Shared geometric bucket boundaries (powers of 4 from 1 to 4^24).
///
/// One scale serves every unit the pipeline records: item counts (1..10^5)
/// land in the low buckets, nanosecond durations (10^3..10^14, i.e. 1 µs to
/// ~78 h) in the high ones. A value `v` falls into the first bucket whose
/// boundary satisfies `v <= boundary`; values above the last boundary go
/// into the overflow bucket.
pub const BUCKET_BOUNDS: [u64; 25] = {
    let mut b = [0u64; 25];
    let mut i = 0;
    let mut v = 1u64;
    while i < 25 {
        b[i] = v;
        v = v.saturating_mul(4);
        i += 1;
    }
    b
};

/// One histogram: fixed buckets plus exact integer count/sum/min/max.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets[i]` counts values `v` with `v <= BUCKET_BOUNDS[i]` (and
    /// `v > BUCKET_BOUNDS[i-1]` for `i > 0`); `buckets[25]` is overflow.
    pub buckets: [u64; 26],
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u128,
    /// Smallest recorded value (`u64::MAX` while empty).
    pub min: u64,
    /// Largest recorded value (0 while empty).
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self { buckets: [0; 26], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let idx = BUCKET_BOUNDS.partition_point(|&b| b < value);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of the recorded values (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_are_strictly_increasing() {
        for w in BUCKET_BOUNDS.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(BUCKET_BOUNDS[0], 1);
        assert_eq!(BUCKET_BOUNDS[1], 4);
    }

    #[test]
    fn bucketing_is_inclusive_upper() {
        let mut h = Histogram::default();
        h.record(1); // bucket 0 (<= 1)
        h.record(4); // bucket 1 (<= 4)
        h.record(5); // bucket 2 (<= 16)
        h.record(0); // bucket 0
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 10);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 5);
    }

    #[test]
    fn overflow_bucket_catches_huge_values() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        assert_eq!(h.buckets[25], 1);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn bucket_counts_sum_to_count() {
        let mut h = Histogram::default();
        for v in [0, 1, 3, 17, 1 << 40, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.buckets.iter().sum::<u64>(), h.count);
    }

    #[test]
    fn order_independent_merge() {
        // Recording the same multiset in any order yields identical state.
        let values = [7u64, 0, 99, 1 << 30, 5, 5, 123_456_789];
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in values {
            a.record(v);
        }
        for v in values.iter().rev() {
            b.record(*v);
        }
        assert_eq!(a.buckets, b.buckets);
        assert_eq!(a.sum, b.sum);
        assert_eq!((a.min, a.max, a.count), (b.min, b.max, b.count));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(Histogram::default().mean(), 0.0);
        let mut h = Histogram::default();
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), 15.0);
    }
}
