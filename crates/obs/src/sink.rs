//! The global event sink: thread-safe aggregation with deterministic
//! export ordering.
//!
//! Spans and histograms aggregate *incrementally* (per-path / per-name
//! integer merges), so memory stays bounded no matter how many events are
//! recorded, and the export order is the `BTreeMap` key order — fully
//! deterministic regardless of thread interleaving. Counters are exact
//! integer sums, which commute, so any interleaving yields the same value.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::hist::{Histogram, BUCKET_BOUNDS};
use crate::report::{
    BucketEntry, ChunkSummary, CounterEntry, HistogramSummary, ObsReport, SpanSummary,
    TimelineGroup, SCHEMA_VERSION,
};

/// Aggregated state of one span path.
#[derive(Debug, Clone, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// One raw chunk event from a `pse-par` call (bounded: one per worker per
/// parallel call, not per item).
#[derive(Debug, Clone)]
pub(crate) struct ChunkEvent {
    pub label: String,
    pub worker: u64,
    pub chunk: u64,
    pub items: u64,
    pub start_ns: u64,
    pub dur_ns: u64,
}

/// The global sink.
#[derive(Debug, Default)]
pub(crate) struct Sink {
    spans: Mutex<BTreeMap<String, SpanAgg>>,
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    timeline: Mutex<Vec<ChunkEvent>>,
}

impl Sink {
    pub fn record_span(&self, path: String, dur_ns: u64) {
        let mut spans = self.spans.lock().expect("span sink poisoned");
        let agg = spans.entry(path).or_insert(SpanAgg {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        agg.count += 1;
        agg.total_ns += dur_ns;
        agg.min_ns = agg.min_ns.min(dur_ns);
        agg.max_ns = agg.max_ns.max(dur_ns);
    }

    pub fn add_counter(&self, name: &str, n: u64) {
        let mut counters = self.counters.lock().expect("counter sink poisoned");
        match counters.get_mut(name) {
            Some(v) => *v += n,
            None => {
                counters.insert(name.to_string(), n);
            }
        }
    }

    pub fn seed_counter(&self, name: &str) {
        let mut counters = self.counters.lock().expect("counter sink poisoned");
        if !counters.contains_key(name) {
            counters.insert(name.to_string(), 0);
        }
    }

    pub fn seed_histogram(&self, name: &str) {
        let mut hists = self.histograms.lock().expect("histogram sink poisoned");
        if !hists.contains_key(name) {
            hists.insert(name.to_string(), Histogram::default());
        }
    }

    pub fn record_histogram(&self, name: &str, value: u64) {
        let mut hists = self.histograms.lock().expect("histogram sink poisoned");
        if let Some(h) = hists.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::default();
            h.record(value);
            hists.insert(name.to_string(), h);
        }
    }

    pub fn record_chunk(&self, ev: ChunkEvent) {
        self.timeline.lock().expect("timeline sink poisoned").push(ev);
    }

    pub fn clear(&self) {
        self.spans.lock().expect("span sink poisoned").clear();
        self.counters.lock().expect("counter sink poisoned").clear();
        self.histograms.lock().expect("histogram sink poisoned").clear();
        self.timeline.lock().expect("timeline sink poisoned").clear();
    }

    /// Snapshot into a report with deterministic ordering: spans, counters
    /// and histograms in key order; timelines grouped by label (sorted),
    /// chunks within a group in `(start_ns, worker, chunk)` order.
    pub fn snapshot(&self, enabled: bool) -> ObsReport {
        let spans = self
            .spans
            .lock()
            .expect("span sink poisoned")
            .iter()
            .map(|(path, a)| SpanSummary {
                path: path.clone(),
                count: a.count,
                total_ns: a.total_ns,
                min_ns: if a.count == 0 { 0 } else { a.min_ns },
                max_ns: a.max_ns,
            })
            .collect();
        let counters = self
            .counters
            .lock()
            .expect("counter sink poisoned")
            .iter()
            .map(|(name, &value)| CounterEntry { name: name.clone(), value })
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("histogram sink poisoned")
            .iter()
            .map(|(name, h)| HistogramSummary {
                name: name.clone(),
                count: h.count,
                sum: u64::try_from(h.sum).unwrap_or(u64::MAX),
                min: if h.count == 0 { 0 } else { h.min },
                max: h.max,
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &count)| BucketEntry {
                        le: BUCKET_BOUNDS.get(i).copied().unwrap_or(0),
                        count,
                    })
                    .collect(),
            })
            .collect();

        let mut groups: BTreeMap<String, TimelineGroup> = BTreeMap::new();
        for ev in self.timeline.lock().expect("timeline sink poisoned").iter() {
            let g = groups.entry(ev.label.clone()).or_insert_with(|| TimelineGroup {
                label: ev.label.clone(),
                calls: 0,
                chunks: Vec::new(),
            });
            if ev.chunk == 0 {
                g.calls += 1;
            }
            g.chunks.push(ChunkSummary {
                worker: ev.worker,
                chunk: ev.chunk,
                items: ev.items,
                start_ns: ev.start_ns,
                dur_ns: ev.dur_ns,
            });
        }
        let timelines = groups
            .into_values()
            .map(|mut g| {
                g.chunks.sort_by_key(|c| (c.start_ns, c.worker, c.chunk));
                g
            })
            .collect();

        ObsReport {
            schema_version: SCHEMA_VERSION,
            enabled,
            git_commit: String::new(),
            threads: 0,
            spans,
            counters,
            histograms,
            timelines,
        }
    }
}
