//! Request-scoped tracing and the flight recorder.
//!
//! The sink in this crate aggregates: every span folds into a per-path
//! total, which answers "where does time go on average" but not "why was
//! *that* request slow". This module adds the per-request view:
//!
//! - [`start_request_trace`] installs a thread-local **active trace**.
//!   While it is installed, every [`crate::span`] that closes on the
//!   thread also appends one [`TraceSpan`] (path, nesting depth, start
//!   offset, duration) to the trace's shared buffer — and because the
//!   buffer travels inside [`crate::ParCall`], spans recorded by `pse-par`
//!   worker threads land in the same request's tree.
//! - [`RequestTraceGuard::finish`] assembles the completed
//!   [`RequestTrace`]; the serve layer hands it to a [`FlightRecorder`] —
//!   a fixed-capacity ring of recent requests plus an always-keep-slowest
//!   set (tail sampling), queryable as JSON for the `/debug/*` endpoints.
//!
//! Everything here obeys the crate's determinism contract: with
//! observability off, [`start_request_trace`] returns an inert guard and
//! no instrumentation site allocates; with it on, recording is a side
//! channel that never influences what the traced code computes.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use serde::{Deserialize, Serialize, Value};

use crate::{enabled, now_ns};

/// Spans kept per trace before counting drops instead — bounds the memory
/// a pathological request (e.g. one span per offer) can pin.
pub const MAX_TRACE_SPANS: usize = 512;

// ---- trace identity --------------------------------------------------------

/// A 64-bit request identity, rendered as 16 lowercase hex digits — the
/// value of the `X-Pse-Trace-Id` header and the `/debug/trace/{id}` path
/// segment. Fresh ids mix a per-process seed with a counter, so they are
/// unique within a process and almost surely across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A new process-unique id.
    pub fn fresh() -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        static SEED: std::sync::OnceLock<u64> = std::sync::OnceLock::new();
        let seed = *SEED.get_or_init(|| {
            let t = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0);
            t ^ ((std::process::id() as u64) << 32)
        });
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        // splitmix64: a fixed bijection, so distinct inputs stay distinct.
        let mut z = seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Self(z ^ (z >> 31))
    }

    /// The 16-digit lowercase hex rendering.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse a hex rendering (1–16 digits, case-insensitive). `None` for
    /// anything else — the server maps that to a 400, not a panic.
    pub fn from_hex(s: &str) -> Option<Self> {
        let s = s.trim();
        if s.is_empty() || s.len() > 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(Self)
    }
}

impl Serialize for TraceId {
    fn to_value(&self) -> Value {
        Value::Str(self.to_hex())
    }
}

impl Deserialize for TraceId {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        match v {
            Value::Str(s) => {
                Self::from_hex(s).ok_or_else(|| serde::Error(format!("invalid trace id {s:?}")))
            }
            other => Err(serde::Error::expected("trace id hex string", other)),
        }
    }
}

// ---- the per-request span tree ---------------------------------------------

/// One closed span inside a request: where the time went and how deeply
/// it was nested. Start offsets are relative to the trace start, so
/// same-depth spans on one thread are disjoint intervals and their
/// durations sum to at most the request total.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Full hierarchical span path (e.g. `serve.request.ingest.store.ingest`).
    pub path: String,
    /// Nesting depth within this trace (the request envelope is depth 0).
    pub depth: u64,
    /// Nanoseconds from trace start to span entry.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

/// One completed request: identity, outcome, and the span tree recorded
/// while it was in flight (including spans from `pse-par` workers it
/// fanned out to).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RequestTrace {
    /// Request identity (client-supplied via `X-Pse-Trace-Id` or fresh).
    pub id: TraceId,
    /// Routed endpoint label (`products`, `ingest`, `invalid`, …).
    pub endpoint: String,
    /// HTTP status written back (0 when the client vanished mid-read).
    pub status: u16,
    /// Trace start, nanoseconds on the process-wide monotonic epoch.
    pub start_ns: u64,
    /// Total request duration in nanoseconds.
    pub total_ns: u64,
    /// Spans dropped past [`MAX_TRACE_SPANS`].
    pub dropped_spans: u64,
    /// Closed spans in completion order.
    pub spans: Vec<TraceSpan>,
}

#[derive(Debug, Default)]
struct TraceBuf {
    spans: Vec<TraceSpan>,
    dropped: u64,
}

/// The thread-local side of an in-flight trace. Installed on the request
/// thread by [`start_request_trace`] and on `pse-par` worker threads by
/// `ParCall::chunk`; the buffer is shared, the depth counter is per-thread.
#[derive(Debug)]
pub(crate) struct ActiveTrace {
    start_ns: u64,
    depth: Cell<u64>,
    buf: Arc<Mutex<TraceBuf>>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

fn trace_buf(buf: &Mutex<TraceBuf>) -> MutexGuard<'_, TraceBuf> {
    buf.lock().unwrap_or_else(|p| p.into_inner())
}

/// Span-entry hook (called by [`crate::span`] while enabled): bumps the
/// thread's trace depth. Returns whether a trace was active, so the guard
/// knows to call [`span_exit`] on drop.
pub(crate) fn span_enter() -> bool {
    ACTIVE.with(|a| match a.borrow().as_ref() {
        Some(t) => {
            t.depth.set(t.depth.get() + 1);
            true
        }
        None => false,
    })
}

/// Span-exit hook: appends the closed span to the trace buffer and pops
/// the thread's trace depth.
pub(crate) fn span_exit(path: &str, start_ns: u64, dur_ns: u64) {
    ACTIVE.with(|a| {
        if let Some(t) = a.borrow().as_ref() {
            let depth = t.depth.get();
            t.depth.set(depth.saturating_sub(1));
            let mut buf = trace_buf(&t.buf);
            if buf.spans.len() >= MAX_TRACE_SPANS {
                buf.dropped += 1;
            } else {
                buf.spans.push(TraceSpan {
                    path: path.to_string(),
                    depth,
                    start_ns: start_ns.saturating_sub(t.start_ns),
                    dur_ns,
                });
            }
        }
    });
}

/// The trace context a [`crate::ParCall`] carries across the fan-out: the
/// shared buffer plus the caller's depth, so worker spans nest where the
/// forking span sat.
#[derive(Debug, Clone)]
pub(crate) struct TraceCtx {
    start_ns: u64,
    base_depth: u64,
    buf: Arc<Mutex<TraceBuf>>,
}

/// Capture the calling thread's trace context, if a trace is active.
pub(crate) fn current_ctx() -> Option<TraceCtx> {
    ACTIVE.with(|a| {
        a.borrow().as_ref().map(|t| TraceCtx {
            start_ns: t.start_ns,
            base_depth: t.depth.get(),
            buf: Arc::clone(&t.buf),
        })
    })
}

/// Install `ctx` as this thread's active trace (chunk entry on a worker),
/// returning whatever was installed before for [`restore`].
pub(crate) fn install(ctx: Option<&TraceCtx>) -> Option<ActiveTrace> {
    let next = ctx.map(|c| ActiveTrace {
        start_ns: c.start_ns,
        depth: Cell::new(c.base_depth),
        buf: Arc::clone(&c.buf),
    });
    ACTIVE.with(|a| a.replace(next))
}

/// Undo a matching [`install`].
pub(crate) fn restore(prev: Option<ActiveTrace>) {
    ACTIVE.with(|a| {
        *a.borrow_mut() = prev;
    });
}

// ---- the request guard -----------------------------------------------------

struct GuardInner {
    id: TraceId,
    start_ns: u64,
    buf: Arc<Mutex<TraceBuf>>,
    prev: Option<ActiveTrace>,
}

/// RAII handle for one request's trace; see [`start_request_trace`].
/// Dropping without [`finish`](Self::finish) discards the recording.
#[must_use = "a request trace records until finish() or drop"]
pub struct RequestTraceGuard {
    inner: Option<GuardInner>,
}

/// Begin tracing a request on this thread. Every span closed on the
/// thread (and on `pse-par` workers it fans out to) is recorded until
/// [`RequestTraceGuard::finish`]. Inert — no allocation, nothing
/// installed — while observability is off.
///
/// `id` is the client-supplied trace identity when the request carried
/// one; pass `None` for a fresh id (it can still be swapped later via
/// [`RequestTraceGuard::set_id`], e.g. once headers are parsed).
pub fn start_request_trace(id: Option<TraceId>) -> RequestTraceGuard {
    if !enabled() {
        return RequestTraceGuard { inner: None };
    }
    let start_ns = now_ns();
    let buf = Arc::new(Mutex::new(TraceBuf::default()));
    let prev = ACTIVE.with(|a| {
        a.replace(Some(ActiveTrace { start_ns, depth: Cell::new(0), buf: Arc::clone(&buf) }))
    });
    RequestTraceGuard {
        inner: Some(GuardInner { id: id.unwrap_or_else(TraceId::fresh), start_ns, buf, prev }),
    }
}

impl RequestTraceGuard {
    /// Is this guard actually recording? False when observability is off.
    pub fn active(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace id, if recording.
    pub fn id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Adopt an id discovered after the trace began (the `X-Pse-Trace-Id`
    /// header is only known once the request head is parsed).
    pub fn set_id(&mut self, id: TraceId) {
        if let Some(inner) = self.inner.as_mut() {
            inner.id = id;
        }
    }

    /// Stop recording and assemble the completed trace. `None` when the
    /// guard was inert (observability off).
    pub fn finish(mut self, endpoint: &str, status: u16) -> Option<RequestTrace> {
        let inner = self.inner.take()?;
        let total_ns = now_ns().saturating_sub(inner.start_ns);
        restore(inner.prev);
        let mut buf = trace_buf(&inner.buf);
        Some(RequestTrace {
            id: inner.id,
            endpoint: endpoint.to_string(),
            status,
            start_ns: inner.start_ns,
            total_ns,
            dropped_spans: buf.dropped,
            spans: std::mem::take(&mut buf.spans),
        })
    }
}

impl Drop for RequestTraceGuard {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            restore(inner.prev);
        }
    }
}

impl std::fmt::Debug for RequestTraceGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestTraceGuard").field("id", &self.id().map(TraceId::to_hex)).finish()
    }
}

// ---- the flight recorder ---------------------------------------------------

/// Flight-recorder sizing and tail-sampling knobs.
#[derive(Debug, Clone)]
pub struct RecorderConfig {
    /// Completed traces kept in the rotating recent ring.
    pub recent_capacity: usize,
    /// Slow traces kept beyond rotation (the tail-sampling set).
    pub slow_capacity: usize,
    /// Requests at or above this duration enter the slow set.
    pub slow_threshold_ns: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self {
            recent_capacity: 128,
            slow_capacity: 32,
            // 10 ms: roughly 50× the serve bench's smoke-host p50, so the
            // slow set holds genuine excursions, not the ambient tail.
            slow_threshold_ns: 10_000_000,
        }
    }
}

#[derive(Debug, Default)]
struct RecorderInner {
    /// Rotating window, oldest first.
    recent: VecDeque<Arc<RequestTrace>>,
    /// Tail-sampled slow traces, slowest first.
    slowest: Vec<Arc<RequestTrace>>,
    recorded: u64,
    rotated_out: u64,
}

/// A fixed-capacity store of completed [`RequestTrace`]s with
/// always-keep-slowest tail sampling: a rotating ring of the most recent
/// requests, plus every request at or above the slow threshold (bounded
/// by `slow_capacity` — when full, the *fastest of the slow* is evicted,
/// so the globally slowest requests are never lost). One mutex around two
/// pointer-sized collections: `record` is an `Arc` clone, a ring rotation
/// and at most one sorted insert, cheap enough for the request path.
#[derive(Debug)]
pub struct FlightRecorder {
    config: RecorderConfig,
    inner: Mutex<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder with the given sizing (capacities are clamped to ≥ 1).
    pub fn new(config: RecorderConfig) -> Self {
        let config = RecorderConfig {
            recent_capacity: config.recent_capacity.max(1),
            slow_capacity: config.slow_capacity.max(1),
            ..config
        };
        Self { config, inner: Mutex::new(RecorderInner::default()) }
    }

    /// The sizing this recorder runs with.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    fn lock(&self) -> MutexGuard<'_, RecorderInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit one completed trace.
    pub fn record(&self, trace: RequestTrace) {
        let trace = Arc::new(trace);
        let mut inner = self.lock();
        inner.recorded += 1;
        if inner.recent.len() >= self.config.recent_capacity {
            inner.recent.pop_front();
            inner.rotated_out += 1;
        }
        inner.recent.push_back(Arc::clone(&trace));
        if trace.total_ns >= self.config.slow_threshold_ns {
            let pos = inner.slowest.partition_point(|s| s.total_ns >= trace.total_ns);
            inner.slowest.insert(pos, trace);
            if inner.slowest.len() > self.config.slow_capacity {
                inner.slowest.pop();
            }
        }
    }

    /// Traces recorded since construction (including rotated-out ones).
    pub fn recorded(&self) -> u64 {
        self.lock().recorded
    }

    /// The recent window, most recent first.
    pub fn recent(&self) -> Vec<Arc<RequestTrace>> {
        self.lock().recent.iter().rev().cloned().collect()
    }

    /// The tail-sampled slow set, slowest first.
    pub fn slowest(&self) -> Vec<Arc<RequestTrace>> {
        self.lock().slowest.clone()
    }

    /// Look up a trace by id — slow set first, then the recent window
    /// (most recent wins on a client-reused id).
    pub fn find(&self, id: TraceId) -> Option<Arc<RequestTrace>> {
        let inner = self.lock();
        inner
            .slowest
            .iter()
            .find(|t| t.id == id)
            .or_else(|| inner.recent.iter().rev().find(|t| t.id == id))
            .cloned()
    }

    /// The `GET /debug/requests` payload: counters, summaries of the
    /// recent window, and the slow set with full span trees.
    pub fn debug_requests(&self) -> DebugRequests {
        let inner = self.lock();
        DebugRequests {
            recorded: inner.recorded,
            rotated_out: inner.rotated_out,
            slow_threshold_ns: self.config.slow_threshold_ns,
            recent: inner.recent.iter().rev().map(|t| TraceSummary::of(t)).collect(),
            slowest: inner.slowest.iter().map(|t| RequestTrace::clone(t)).collect(),
        }
    }

    /// [`Self::debug_requests`] rendered as a JSON string.
    pub fn requests_json(&self) -> String {
        serde_json::to_string(&self.debug_requests())
            .expect("debug requests serialization is infallible")
    }

    /// The full trace for `id` as a JSON string, if still held.
    pub fn trace_json(&self, id: TraceId) -> Option<String> {
        self.find(id)
            .map(|t| serde_json::to_string(&*t).expect("request trace serialization is infallible"))
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(RecorderConfig::default())
    }
}

/// One line of the recent window in `GET /debug/requests` — identity and
/// outcome without the span tree (fetch `/debug/trace/{id}` for that).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Trace identity, hex.
    pub id: TraceId,
    /// Routed endpoint label.
    pub endpoint: String,
    /// HTTP status written back.
    pub status: u16,
    /// Trace start on the process monotonic epoch, nanoseconds.
    pub start_ns: u64,
    /// Total duration, nanoseconds.
    pub total_ns: u64,
    /// Spans recorded.
    pub spans: u64,
    /// Spans dropped past the per-trace cap.
    pub dropped_spans: u64,
}

impl TraceSummary {
    /// Summarize one trace.
    pub fn of(t: &RequestTrace) -> Self {
        Self {
            id: t.id,
            endpoint: t.endpoint.clone(),
            status: t.status,
            start_ns: t.start_ns,
            total_ns: t.total_ns,
            spans: t.spans.len() as u64,
            dropped_spans: t.dropped_spans,
        }
    }
}

/// The `GET /debug/requests` response shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DebugRequests {
    /// Traces recorded since server start.
    pub recorded: u64,
    /// Traces rotated out of the recent window.
    pub rotated_out: u64,
    /// The slow-set admission threshold, nanoseconds.
    pub slow_threshold_ns: u64,
    /// The recent window, most recent first (summaries).
    pub recent: Vec<TraceSummary>,
    /// The tail-sampled slow set, slowest first (full span trees).
    pub slowest: Vec<RequestTrace>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total_ns: u64) -> RequestTrace {
        RequestTrace {
            id: TraceId(id),
            endpoint: "products".into(),
            status: 200,
            start_ns: id,
            total_ns,
            dropped_spans: 0,
            spans: Vec::new(),
        }
    }

    #[test]
    fn trace_id_hex_round_trip() {
        let id = TraceId(0xdead_beef_0000_0001);
        assert_eq!(id.to_hex(), "deadbeef00000001");
        assert_eq!(TraceId::from_hex("deadbeef00000001"), Some(id));
        assert_eq!(TraceId::from_hex("DEADBEEF00000001"), Some(id));
        assert_eq!(TraceId::from_hex("7"), Some(TraceId(7)));
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("deadbeef000000012"), None, "17 digits");
        assert_eq!(TraceId::from_hex("0x12"), None);
    }

    #[test]
    fn fresh_ids_are_distinct() {
        let a = TraceId::fresh();
        let b = TraceId::fresh();
        assert_ne!(a, b);
    }

    #[test]
    fn recent_ring_rotates_at_capacity() {
        let rec = FlightRecorder::new(RecorderConfig {
            recent_capacity: 3,
            slow_capacity: 2,
            slow_threshold_ns: u64::MAX,
        });
        for i in 0..10 {
            rec.record(trace(i, 100));
        }
        let recent = rec.recent();
        assert_eq!(recent.len(), 3);
        let ids: Vec<u64> = recent.iter().map(|t| t.id.0).collect();
        assert_eq!(ids, [9, 8, 7], "most recent first");
        assert_eq!(rec.recorded(), 10);
        assert!(rec.slowest().is_empty(), "nothing met the threshold");
        let dbg = rec.debug_requests();
        assert_eq!((dbg.recorded, dbg.rotated_out), (10, 7));
    }

    #[test]
    fn slow_set_keeps_the_slowest_beyond_rotation() {
        let rec = FlightRecorder::new(RecorderConfig {
            recent_capacity: 2,
            slow_capacity: 3,
            slow_threshold_ns: 1_000,
        });
        // One early excursion, then a flood of fast requests.
        rec.record(trace(1, 50_000));
        for i in 2..100 {
            rec.record(trace(i, 10));
        }
        assert!(rec.recent().iter().all(|t| t.id.0 != 1), "rotated out of recent");
        let slow = rec.slowest();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].id.0, 1, "slow excursion survives rotation");
        assert_eq!(rec.find(TraceId(1)).unwrap().total_ns, 50_000);
    }

    #[test]
    fn slow_set_evicts_fastest_of_slow_when_full() {
        let rec = FlightRecorder::new(RecorderConfig {
            recent_capacity: 2,
            slow_capacity: 3,
            slow_threshold_ns: 1_000,
        });
        for (id, total) in [(1, 2_000), (2, 9_000), (3, 4_000), (4, 8_000), (5, 1_000)] {
            rec.record(trace(id, total));
        }
        let slow = rec.slowest();
        let got: Vec<(u64, u64)> = slow.iter().map(|t| (t.id.0, t.total_ns)).collect();
        assert_eq!(got, [(2, 9_000), (4, 8_000), (3, 4_000)], "slowest first, fastest evicted");
    }

    #[test]
    fn find_prefers_most_recent_on_reused_id() {
        let rec = FlightRecorder::new(RecorderConfig {
            recent_capacity: 8,
            slow_capacity: 2,
            slow_threshold_ns: u64::MAX,
        });
        rec.record(trace(7, 100));
        let mut newer = trace(7, 100);
        newer.endpoint = "ingest".into();
        rec.record(newer);
        assert_eq!(rec.find(TraceId(7)).unwrap().endpoint, "ingest");
        assert!(rec.find(TraceId(8)).is_none());
    }

    #[test]
    fn debug_requests_round_trips_through_json() {
        let rec = FlightRecorder::new(RecorderConfig {
            recent_capacity: 4,
            slow_capacity: 2,
            slow_threshold_ns: 1_000,
        });
        let mut slow = trace(1, 5_000);
        slow.spans.push(TraceSpan {
            path: "serve.request.parse".into(),
            depth: 1,
            start_ns: 10,
            dur_ns: 20,
        });
        rec.record(slow);
        rec.record(trace(2, 10));
        let parsed: Value = serde_json::from_str(&rec.requests_json()).unwrap();
        let dbg = DebugRequests::from_value(&parsed).unwrap();
        assert_eq!(dbg.recorded, 2);
        assert_eq!(dbg.recent.len(), 2);
        assert_eq!(dbg.slowest.len(), 1);
        assert_eq!(dbg.slowest[0].spans[0].path, "serve.request.parse");
        let full: Value = serde_json::from_str(&rec.trace_json(TraceId(1)).unwrap()).unwrap();
        let t = RequestTrace::from_value(&full).unwrap();
        assert_eq!((t.id, t.total_ns), (TraceId(1), 5_000));
        assert!(rec.trace_json(TraceId(99)).is_none());
    }
}
