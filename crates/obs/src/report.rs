//! The exported observability report: a serializable snapshot of the sink
//! plus a human-readable stage summary renderer.

use serde::{Deserialize, Serialize};

use crate::hist::BUCKET_BOUNDS;

/// Report schema version; bump when the JSON shape changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregated timings of one span path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanSummary {
    /// Hierarchical dot-path, e.g. `"runtime.process.fuse"`.
    pub path: String,
    /// Number of times the span was entered.
    pub count: u64,
    /// Total wall time across entries, nanoseconds.
    pub total_ns: u64,
    /// Shortest single entry, nanoseconds.
    pub min_ns: u64,
    /// Longest single entry, nanoseconds.
    pub max_ns: u64,
}

/// One named monotonic counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Counter name, e.g. `"runtime.pairs_discarded_unmapped"`.
    pub name: String,
    /// Exact integer value (sums are thread-count-independent).
    pub value: u64,
}

/// One non-empty histogram bucket (`le` = inclusive upper boundary; 0
/// denotes the overflow bucket above the largest boundary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketEntry {
    /// Inclusive upper boundary of the bucket (0 for overflow).
    pub le: u64,
    /// Values recorded into this bucket.
    pub count: u64,
}

/// Aggregated view of one histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Histogram name, e.g. `"runtime.cluster_size"`.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum (saturating at `u64::MAX` in the report).
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Non-empty buckets in boundary order.
    pub buckets: Vec<BucketEntry>,
}

/// One executed chunk of a `pse-par` call: which worker ran which slice
/// of the input, and when.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChunkSummary {
    /// Worker index within the parallel call (0 = first spawned / caller).
    pub worker: u64,
    /// Chunk index in input order (equals `worker`: one chunk per worker).
    pub chunk: u64,
    /// Items the chunk processed.
    pub items: u64,
    /// Start offset from the process epoch, nanoseconds.
    pub start_ns: u64,
    /// Wall time the chunk took, nanoseconds.
    pub dur_ns: u64,
}

/// All chunks recorded under one parallel-call label (the caller's active
/// span path at call time).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineGroup {
    /// Label of the parallel call site.
    pub label: String,
    /// Number of distinct parallel calls (chunk-0 events).
    pub calls: u64,
    /// Every chunk, sorted by `(start_ns, worker)`.
    pub chunks: Vec<ChunkSummary>,
}

impl TimelineGroup {
    /// Worker-utilization estimate in `[0, 1]`: busy time divided by
    /// `workers × makespan`. 1.0 means perfectly balanced workers.
    pub fn utilization(&self) -> f64 {
        if self.chunks.is_empty() {
            return 0.0;
        }
        let workers = self.chunks.iter().map(|c| c.worker).max().unwrap_or(0) + 1;
        let start = self.chunks.iter().map(|c| c.start_ns).min().unwrap_or(0);
        let end = self.chunks.iter().map(|c| c.start_ns + c.dur_ns).max().unwrap_or(0);
        let busy: u128 = self.chunks.iter().map(|c| c.dur_ns as u128).sum();
        let span = (end.saturating_sub(start)) as u128 * workers as u128;
        if span == 0 {
            1.0
        } else {
            (busy as f64 / span as f64).min(1.0)
        }
    }

    /// Imbalance factor: slowest chunk over mean chunk duration (1.0 =
    /// perfectly even split; large values flag stragglers).
    pub fn imbalance(&self) -> f64 {
        if self.chunks.is_empty() {
            return 1.0;
        }
        let max = self.chunks.iter().map(|c| c.dur_ns).max().unwrap_or(0) as f64;
        let mean: f64 =
            self.chunks.iter().map(|c| c.dur_ns as f64).sum::<f64>() / self.chunks.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

/// A full snapshot of the observability sink, ready for JSON export.
///
/// `git_commit` and `threads` default to empty/zero; the exporting binary
/// fills them in so trajectory files stay attributable to a commit and a
/// thread-count configuration.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObsReport {
    /// [`SCHEMA_VERSION`] at export time.
    pub schema_version: u32,
    /// Whether instrumentation was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Git commit hash of the producing build (filled by the exporter).
    pub git_commit: String,
    /// Resolved `pse-par` worker count (filled by the exporter).
    pub threads: u64,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanSummary>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterEntry>,
    /// Histograms, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Parallel-call timelines, sorted by label.
    pub timelines: Vec<TimelineGroup>,
}

/// An internal inconsistency found by [`ObsReport::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportError {
    /// A span aggregate with a zero call count.
    SpanZeroCount {
        /// Span path.
        path: String,
    },
    /// A span whose min/max/total timings are mutually inconsistent.
    SpanTimings {
        /// Span path.
        path: String,
        /// Minimum recorded duration.
        min_ns: u64,
        /// Maximum recorded duration.
        max_ns: u64,
        /// Total recorded duration.
        total_ns: u64,
    },
    /// Histogram bucket counts do not sum to the histogram count.
    HistogramBucketSum {
        /// Histogram name.
        name: String,
        /// Sum over the buckets.
        bucket_total: u64,
        /// The histogram's own count.
        count: u64,
    },
    /// A non-empty histogram whose min exceeds its max.
    HistogramMinMax {
        /// Histogram name.
        name: String,
        /// Recorded minimum.
        min: u64,
        /// Recorded maximum.
        max: u64,
    },
    /// A bucket boundary not in [`BUCKET_BOUNDS`].
    HistogramUnknownBoundary {
        /// Histogram name.
        name: String,
        /// The offending boundary.
        boundary: u64,
    },
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SpanZeroCount { path } => write!(f, "span {path}: zero count"),
            Self::SpanTimings { path, min_ns, max_ns, total_ns } => write!(
                f,
                "span {path}: inconsistent timings min={min_ns} max={max_ns} total={total_ns}"
            ),
            Self::HistogramBucketSum { name, bucket_total, count } => {
                write!(f, "histogram {name}: buckets sum to {bucket_total}, count is {count}")
            }
            Self::HistogramMinMax { name, min, max } => {
                write!(f, "histogram {name}: min {min} > max {max}")
            }
            Self::HistogramUnknownBoundary { name, boundary } => {
                write!(f, "histogram {name}: unknown boundary {boundary}")
            }
        }
    }
}

impl std::error::Error for ReportError {}

impl From<ReportError> for String {
    fn from(e: ReportError) -> String {
        e.to_string()
    }
}

impl ObsReport {
    /// Serialize as pretty-printed JSON (the `OBS_REPORT.json` format).
    pub fn to_json(&self) -> String {
        format!("{}\n", serde_json::to_string_pretty(self).expect("report serializes"))
    }

    /// Parse a report back from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Value of a counter, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Span aggregate whose path equals `path`, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Internal-consistency check: monotone bucket boundaries, bucket
    /// counts summing to histogram counts, and `min <= max <= total` on
    /// spans. (`u64` fields cannot encode NaN or negatives; the JSON-level
    /// validator in `obs_check` additionally rejects reports whose raw
    /// numbers are not non-negative integers.)
    pub fn validate(&self) -> Result<(), ReportError> {
        for s in &self.spans {
            if s.count == 0 {
                return Err(ReportError::SpanZeroCount { path: s.path.clone() });
            }
            if s.min_ns > s.max_ns || s.max_ns > s.total_ns {
                return Err(ReportError::SpanTimings {
                    path: s.path.clone(),
                    min_ns: s.min_ns,
                    max_ns: s.max_ns,
                    total_ns: s.total_ns,
                });
            }
        }
        for h in &self.histograms {
            let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
            if bucket_total != h.count {
                return Err(ReportError::HistogramBucketSum {
                    name: h.name.clone(),
                    bucket_total,
                    count: h.count,
                });
            }
            if h.count > 0 && h.min > h.max {
                return Err(ReportError::HistogramMinMax {
                    name: h.name.clone(),
                    min: h.min,
                    max: h.max,
                });
            }
            for b in &h.buckets {
                if b.le != 0 && !BUCKET_BOUNDS.contains(&b.le) {
                    return Err(ReportError::HistogramUnknownBoundary {
                        name: h.name.clone(),
                        boundary: b.le,
                    });
                }
            }
        }
        Ok(())
    }

    /// Human-readable stage summary: spans, the counters, and per-call-site
    /// worker utilization. Printed by `experiments --obs` at end of run.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== observability summary (threads={}, commit={}) ==\n",
            self.threads,
            if self.git_commit.is_empty() { "?" } else { &self.git_commit }
        ));
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>12}\n",
                "span", "count", "total", "mean"
            ));
            for s in &self.spans {
                let mean = s.total_ns / s.count.max(1);
                out.push_str(&format!(
                    "{:<44} {:>8} {:>12} {:>12}\n",
                    s.path,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(mean)
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for c in &self.counters {
                out.push_str(&format!("  {:<44} {:>12}\n", c.name, c.value));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for h in &self.histograms {
                out.push_str(&format!(
                    "  {:<44} n={} min={} mean={:.1} max={}\n",
                    h.name,
                    h.count,
                    if h.count == 0 { 0 } else { h.min },
                    if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 },
                    h.max
                ));
            }
        }
        if !self.timelines.is_empty() {
            out.push_str("parallel timelines:\n");
            for t in &self.timelines {
                let workers = t.chunks.iter().map(|c| c.worker).max().map_or(0, |w| w + 1);
                out.push_str(&format!(
                    "  {:<44} calls={} chunks={} workers={} util={:.0}% imbalance={:.2}\n",
                    t.label,
                    t.calls,
                    t.chunks.len(),
                    workers,
                    t.utilization() * 100.0,
                    t.imbalance()
                ));
            }
        }
        out
    }
}

/// Format nanoseconds at a human scale.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ObsReport {
        ObsReport {
            schema_version: SCHEMA_VERSION,
            enabled: true,
            git_commit: "abc123".into(),
            threads: 4,
            spans: vec![SpanSummary {
                path: "runtime.process".into(),
                count: 2,
                total_ns: 300,
                min_ns: 100,
                max_ns: 200,
            }],
            counters: vec![CounterEntry { name: "runtime.offers_in".into(), value: 42 }],
            histograms: vec![HistogramSummary {
                name: "runtime.cluster_size".into(),
                count: 3,
                sum: 9,
                min: 1,
                max: 5,
                buckets: vec![BucketEntry { le: 1, count: 1 }, BucketEntry { le: 16, count: 2 }],
            }],
            timelines: vec![TimelineGroup {
                label: "runtime.process".into(),
                calls: 1,
                chunks: vec![
                    ChunkSummary { worker: 0, chunk: 0, items: 8, start_ns: 0, dur_ns: 100 },
                    ChunkSummary { worker: 1, chunk: 1, items: 8, start_ns: 0, dur_ns: 100 },
                ],
            }],
        }
    }

    #[test]
    fn json_round_trip() {
        let r = sample();
        let parsed = ObsReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed.spans, r.spans);
        assert_eq!(parsed.counters, r.counters);
        assert_eq!(parsed.histograms, r.histograms);
        assert_eq!(parsed.timelines, r.timelines);
        assert_eq!(parsed.git_commit, "abc123");
    }

    #[test]
    fn validate_accepts_consistent_report() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bucket_mismatch() {
        let mut r = sample();
        r.histograms[0].count = 99;
        assert!(r.validate().is_err());
    }

    #[test]
    fn validate_rejects_inverted_span_times() {
        let mut r = sample();
        r.spans[0].min_ns = 999;
        assert!(r.validate().is_err());
    }

    #[test]
    fn utilization_and_imbalance() {
        let t = &sample().timelines[0];
        assert!((t.utilization() - 1.0).abs() < 1e-9, "two equal chunks fully utilize");
        assert!((t.imbalance() - 1.0).abs() < 1e-9);
        let skewed = TimelineGroup {
            label: "x".into(),
            calls: 1,
            chunks: vec![
                ChunkSummary { worker: 0, chunk: 0, items: 1, start_ns: 0, dur_ns: 300 },
                ChunkSummary { worker: 1, chunk: 1, items: 1, start_ns: 0, dur_ns: 100 },
            ],
        };
        assert!(skewed.utilization() < 0.7);
        assert!(skewed.imbalance() > 1.4);
    }

    #[test]
    fn summary_mentions_every_section() {
        let s = sample().render_summary();
        assert!(s.contains("runtime.process"));
        assert!(s.contains("counters:"));
        assert!(s.contains("histograms:"));
        assert!(s.contains("parallel timelines:"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
