//! # pse-obs — zero-dependency structured observability
//!
//! Hierarchical spans, exact integer counters, fixed-bucket histograms and
//! per-worker parallel timelines for the synthesis pipeline, exported as
//! JSON ([`ObsReport::to_json`]) or a human-readable stage summary
//! ([`ObsReport::render_summary`]).
//!
//! ## The no-op fast path
//!
//! Instrumentation is **off by default**. It turns on when the `PSE_OBS`
//! environment variable is set to anything other than `0`/empty, or
//! programmatically via [`set_enabled`]. While off, every entry point
//! reduces to one relaxed atomic load and instrumentation records nothing —
//! and, by design, recording never influences pipeline outputs either way:
//! the `determinism_par` integration test compares full pipeline runs with
//! observability on vs off byte-for-byte.
//!
//! ## Determinism
//!
//! - **Counters** are exact integer sums; addition commutes, so the totals
//!   are identical at any thread count and interleaving.
//! - **Histograms** use fixed compile-time bucket boundaries and integer
//!   accumulation ([`hist::BUCKET_BOUNDS`]), so aggregates are
//!   order-independent.
//! - **Spans** aggregate per hierarchical path into a `BTreeMap`, so export
//!   order is path order, not arrival order.
//! - **Timelines** record one event per `pse-par` chunk (worker id, chunk
//!   index, start/stop), grouped and sorted on export.
//!
//! Recorded *durations* are wall-clock and naturally vary run to run; the
//! deterministic part is the event structure (paths, counts, counter
//! values), which `crates/obs/tests/` pins down under parallelism.
//!
//! ## Spans
//!
//! ```
//! let _run = pse_obs::span("offline");
//! {
//!     let _stage = pse_obs::span("features"); // records "offline.features"
//! }
//! ```
//!
//! Span paths nest via a thread-local stack. `pse-par` worker threads
//! inherit the caller's path at spawn (see [`par_call`]), so spans recorded
//! inside parallel chunks stay attributed to the stage that forked them.

pub mod hist;
pub mod report;
mod sink;
pub mod trace;

pub use report::{
    BucketEntry, ChunkSummary, CounterEntry, HistogramSummary, ObsReport, ReportError, SpanSummary,
    TimelineGroup, SCHEMA_VERSION,
};
pub use trace::{
    start_request_trace, DebugRequests, FlightRecorder, RecorderConfig, RequestTrace,
    RequestTraceGuard, TraceId, TraceSpan, TraceSummary,
};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once, OnceLock};
use std::time::Instant;

use sink::{ChunkEvent, Sink};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn global_sink() -> &'static Sink {
    static SINK: OnceLock<Sink> = OnceLock::new();
    SINK.get_or_init(Sink::default)
}

/// Monotonic nanoseconds since the first observability call in this
/// process (the epoch all span/timeline timestamps share).
pub(crate) fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Is instrumentation on? One relaxed atomic load — the compiled-in no-op
/// fast path every instrumentation site is gated behind.
///
/// The first call resolves the `PSE_OBS` environment variable (`0`, empty,
/// or unset = off; anything else = on); [`set_enabled`] overrides it.
pub fn enabled() -> bool {
    ENV_INIT.call_once(|| {
        let on = std::env::var("PSE_OBS").map(|v| {
            let v = v.trim();
            !v.is_empty() && v != "0"
        });
        if on == Ok(true) {
            ENABLED.store(true, Ordering::Relaxed);
        }
    });
    ENABLED.load(Ordering::Relaxed)
}

/// Turn instrumentation on or off programmatically (e.g. the `--obs` flag
/// of the `experiments` binary, or tests toggling both modes in-process).
pub fn set_enabled(on: bool) {
    ENV_INIT.call_once(|| {});
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clear every recorded span, counter, histogram and timeline event (the
/// enabled flag is untouched). Used between measured runs and by tests.
pub fn reset() {
    global_sink().clear();
}

/// Snapshot the sink into a deterministic-ordered [`ObsReport`].
pub fn report() -> ObsReport {
    global_sink().snapshot(enabled())
}

// ---- spans -----------------------------------------------------------------

thread_local! {
    /// Stack of full span paths active on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Path prefix inherited from the spawning `pse-par` caller.
    static INHERITED: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
    /// Worker index within the current `pse-par` call (0 on the main thread).
    static WORKER: Cell<u64> = const { Cell::new(0) };
}

/// The full hierarchical path active on this thread, if any.
fn current_path() -> Option<String> {
    SPAN_STACK
        .with(|s| s.borrow().last().cloned())
        .or_else(|| INHERITED.with(|i| i.borrow().as_ref().map(|p| p.to_string())))
}

/// RAII span guard: measures monotonic wall time from construction to drop
/// and records it under the hierarchical path. Inactive (and free) when
/// observability is off.
#[must_use = "a span measures until it is dropped; bind it to a variable"]
#[derive(Debug)]
pub struct SpanGuard {
    path: Option<String>,
    start_ns: u64,
    /// A request trace was active at entry; report the exit to it too.
    traced: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(path) = self.path.take() {
            let dur = now_ns().saturating_sub(self.start_ns);
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
            if self.traced {
                trace::span_exit(&path, self.start_ns, dur);
            }
            global_sink().record_span(path, dur);
        }
    }
}

/// Enter a span named `name`, nested under the currently active span (or
/// the inherited `pse-par` caller path). Returns the RAII guard that
/// records the timing on drop. When a request trace is active on this
/// thread ([`start_request_trace`]), the closed span is also appended to
/// that request's span tree.
pub fn span(name: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { path: None, start_ns: 0, traced: false };
    }
    let path = match current_path() {
        Some(parent) => format!("{parent}.{name}"),
        None => name.to_string(),
    };
    SPAN_STACK.with(|s| s.borrow_mut().push(path.clone()));
    let traced = trace::span_enter();
    SpanGuard { path: Some(path), start_ns: now_ns(), traced }
}

/// `span!("name")` — sugar for [`span`] that keeps call sites compact.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

// ---- counters & histograms -------------------------------------------------

/// Add `n` to the named counter. Integer sums commute, so totals are
/// identical at any thread count.
pub fn add(name: &str, n: u64) {
    if enabled() && n > 0 {
        global_sink().add_counter(name, n);
    }
}

/// Materialize the named counter at its current value (0 if new) without
/// incrementing it. Use at the start of a stage whose counters may
/// legitimately stay at zero, so reports (and report checkers) always see
/// the counter when the stage ran. [`add`] skips `n == 0` by design, so a
/// zero total would otherwise leave no trace.
pub fn seed(name: &str) {
    if enabled() {
        global_sink().seed_counter(name);
    }
}

/// Increment the named counter by one.
pub fn incr(name: &str) {
    if enabled() {
        global_sink().add_counter(name, 1);
    }
}

/// Materialize the named histogram with zero samples (if new) without
/// recording anything — the histogram analogue of [`seed`]. Use at the
/// start of a stage whose distributions may legitimately stay empty, so
/// reports (and report checkers) always see the histogram when the stage
/// ran.
pub fn seed_histogram(name: &str) {
    if enabled() {
        global_sink().seed_histogram(name);
    }
}

/// Record one value into the named fixed-bucket histogram.
pub fn observe(name: &str, value: u64) {
    if enabled() {
        global_sink().record_histogram(name, value);
    }
}

// ---- pse-par timeline integration ------------------------------------------

/// Context captured on the calling thread at the start of a `pse-par`
/// parallel call; workers use it to attribute their chunk to the caller's
/// span path and to inherit that path for spans of their own.
#[derive(Debug)]
pub struct ParCall {
    label: Arc<str>,
    /// The caller's request-trace context, if one was active — workers
    /// install it so their spans land in the same request's span tree.
    trace: Option<trace::TraceCtx>,
}

/// Capture the current span path as the label for a parallel call about to
/// fan out. Returns `None` when observability is off, so the executor's
/// fast path stays a single atomic load.
pub fn par_call() -> Option<Arc<ParCall>> {
    if !enabled() {
        return None;
    }
    let label: Arc<str> = current_path().unwrap_or_else(|| "par".to_string()).into();
    Some(Arc::new(ParCall { label, trace: trace::current_ctx() }))
}

impl ParCall {
    /// Enter one chunk of this parallel call on the current (worker)
    /// thread: inherits the caller's span path and request trace, tags
    /// the thread with its worker index, and records a timeline event on
    /// drop.
    pub fn chunk(&self, worker: usize, chunk: usize, items: usize) -> ChunkGuard {
        let prev_inherited = INHERITED.with(|i| i.replace(Some(self.label.clone())));
        let prev_worker = WORKER.with(|w| w.replace(worker as u64));
        let prev_trace = trace::install(self.trace.as_ref());
        ChunkGuard {
            label: self.label.clone(),
            worker: worker as u64,
            chunk: chunk as u64,
            items: items as u64,
            start_ns: now_ns(),
            prev_inherited,
            prev_worker,
            prev_trace,
        }
    }
}

/// RAII guard for one executed chunk; see [`ParCall::chunk`].
#[must_use = "a chunk guard measures until it is dropped; bind it to a variable"]
#[derive(Debug)]
pub struct ChunkGuard {
    label: Arc<str>,
    worker: u64,
    chunk: u64,
    items: u64,
    start_ns: u64,
    prev_inherited: Option<Arc<str>>,
    prev_worker: u64,
    prev_trace: Option<trace::ActiveTrace>,
}

impl Drop for ChunkGuard {
    fn drop(&mut self) {
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        global_sink().record_chunk(ChunkEvent {
            label: self.label.to_string(),
            worker: self.worker,
            chunk: self.chunk,
            items: self.items,
            start_ns: self.start_ns,
            dur_ns,
        });
        INHERITED.with(|i| *i.borrow_mut() = self.prev_inherited.take());
        WORKER.with(|w| w.set(self.prev_worker));
        trace::restore(self.prev_trace.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The sink and enabled flag are process-global; unit tests that touch
    /// them serialize on this lock (and restore the disabled default).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct ObsSession;
    impl ObsSession {
        fn start() -> (std::sync::MutexGuard<'static, ()>, ObsSession) {
            let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
            reset();
            set_enabled(true);
            (guard, ObsSession)
        }
    }
    impl Drop for ObsSession {
        fn drop(&mut self) {
            set_enabled(false);
            reset();
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let guard = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(false);
        reset();
        {
            let _s = span("ghost");
            add("ghost.counter", 5);
            observe("ghost.hist", 1);
        }
        let r = report();
        assert!(!r.enabled);
        assert!(r.spans.is_empty());
        assert!(r.counters.is_empty());
        assert!(r.histograms.is_empty());
        drop(guard);
    }

    #[test]
    fn spans_nest_into_dot_paths() {
        let (_g, _s) = ObsSession::start();
        {
            let _outer = span("offline");
            {
                let _inner = span("features");
            }
            {
                let _inner = span("features");
            }
        }
        let r = report();
        let paths: Vec<&str> = r.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["offline", "offline.features"]);
        assert_eq!(r.span("offline.features").unwrap().count, 2);
        assert_eq!(r.span("offline").unwrap().count, 1);
        let outer = r.span("offline").unwrap();
        assert!(outer.min_ns <= outer.max_ns && outer.max_ns <= outer.total_ns);
    }

    #[test]
    fn counters_and_histograms_accumulate() {
        let (_g, _s) = ObsSession::start();
        add("pairs", 3);
        add("pairs", 4);
        incr("pairs");
        observe("sizes", 2);
        observe("sizes", 70);
        let r = report();
        assert_eq!(r.counter("pairs"), Some(8));
        let h = &r.histograms[0];
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 72, 2, 70));
        assert_eq!(r.validate(), Ok(()));
    }

    #[test]
    fn add_zero_is_invisible() {
        let (_g, _s) = ObsSession::start();
        add("never", 0);
        assert_eq!(report().counter("never"), None);
    }

    #[test]
    fn seed_materializes_counter_without_incrementing() {
        let (_g, _s) = ObsSession::start();
        seed("maybe.zero");
        assert_eq!(report().counter("maybe.zero"), Some(0));
        add("maybe.zero", 2);
        seed("maybe.zero");
        assert_eq!(report().counter("maybe.zero"), Some(2));
    }

    #[test]
    fn chunk_guard_inherits_path_and_restores() {
        let (_g, _s) = ObsSession::start();
        let call = {
            let _stage = span("runtime");
            par_call().expect("enabled")
        };
        {
            let _c = call.chunk(1, 1, 10);
            // Spans opened inside the chunk nest under the caller's path.
            let _inner = span("reconcile");
            assert_eq!(current_path().as_deref(), Some("runtime.reconcile"));
        }
        assert_eq!(current_path(), None, "inherited prefix restored");
        let r = report();
        assert!(r.span("runtime.reconcile").is_some());
        let t = &r.timelines[0];
        assert_eq!(t.label, "runtime");
        assert_eq!(t.chunks.len(), 1);
        assert_eq!(t.chunks[0].worker, 1);
        assert_eq!(t.chunks[0].items, 10);
    }

    #[test]
    fn par_call_without_span_labels_par() {
        let (_g, _s) = ObsSession::start();
        let call = par_call().unwrap();
        drop(call.chunk(0, 0, 1));
        let r = report();
        assert_eq!(r.timelines[0].label, "par");
        assert_eq!(r.timelines[0].calls, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let (_g, _s) = ObsSession::start();
        add("x", 1);
        let _sp = span("y");
        drop(_sp);
        reset();
        let r = report();
        assert!(r.counters.is_empty() && r.spans.is_empty());
    }
}
