//! Property-based tests for the ML toolkit.

use proptest::prelude::*;
use pse_ml::metrics::{pr_curve, precision_at_coverage};
use pse_ml::{Dataset, LogisticRegression, MultinomialNaiveBayes, Standardizer, TrainConfig};

proptest! {
    #[test]
    fn pr_curve_invariants(scored in prop::collection::vec((0.0f64..1.0, any::<bool>()), 0..64)) {
        let curve = pr_curve(&scored);
        // Coverage strictly increases, thresholds strictly decrease.
        for w in curve.windows(2) {
            prop_assert!(w[0].coverage < w[1].coverage);
            prop_assert!(w[0].threshold > w[1].threshold);
        }
        // Final point covers everything and matches overall precision.
        if let Some(last) = curve.last() {
            prop_assert_eq!(last.coverage, scored.len());
            let correct = scored.iter().filter(|(_, c)| *c).count();
            prop_assert!((last.precision - correct as f64 / scored.len() as f64).abs() < 1e-12);
        }
        // precision_at_coverage agrees with the curve at exact points.
        for p in &curve {
            if let Some(prec) = precision_at_coverage(&scored, p.coverage) {
                prop_assert!((prec - p.precision).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn standardizer_output_is_centered(
        rows in prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), 2..20)
    ) {
        let s = Standardizer::fit(&rows);
        let transformed: Vec<Vec<f64>> = rows.iter().map(|r| s.apply(r)).collect();
        for d in 0..3 {
            let mean: f64 =
                transformed.iter().map(|r| r[d]).sum::<f64>() / transformed.len() as f64;
            prop_assert!(mean.abs() < 1e-6, "dim {d} mean {mean}");
        }
    }

    #[test]
    fn logistic_probabilities_in_unit_interval(
        features in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..32),
        probe in prop::collection::vec(-10.0f64..10.0, 2),
    ) {
        let mut d = Dataset::new();
        for (i, (a, b)) in features.iter().enumerate() {
            d.push(vec![*a, *b], i % 2 == 0);
        }
        let model = LogisticRegression::train(
            &d,
            &TrainConfig { epochs: 5, ..TrainConfig::default() },
        );
        let p = model.predict_proba(&probe);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn naive_bayes_posterior_is_a_distribution(
        docs in prop::collection::vec((0usize..3, prop::collection::vec("[a-z]{1,5}", 1..5)), 1..16),
        query in prop::collection::vec("[a-z]{1,5}", 0..5),
    ) {
        let mut nb = MultinomialNaiveBayes::new(3);
        for (class, tokens) in &docs {
            nb.observe(*class, tokens.iter().cloned());
        }
        let refs: Vec<&str> = query.iter().map(String::as_str).collect();
        let post = nb.posterior(&refs);
        prop_assert_eq!(post.len(), 3);
        prop_assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for p in post {
            prop_assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn dataset_split_preserves_examples(n in 1usize..40, frac in 0.0f64..1.0) {
        let mut d = Dataset::new();
        for i in 0..n {
            d.push(vec![i as f64], i % 3 == 0);
        }
        let (train, test) = d.split(frac, 7);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert_eq!(train.positives() + test.positives(), d.positives());
    }
}
