//! Multi-class multinomial Naive Bayes over token features.
//!
//! Two uses in this repository:
//! * the LSD-style instance matcher of the paper's Appendix C (classes =
//!   catalog attributes of one category, features = value tokens);
//! * the offer category classifier of Section 2 (classes = categories,
//!   features = title tokens).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Multinomial Naive Bayes with Laplace smoothing over string tokens and
/// `usize` class labels.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MultinomialNaiveBayes {
    /// Per-class token counts.
    class_token_counts: Vec<HashMap<String, u64>>,
    /// Per-class total token counts.
    class_totals: Vec<u64>,
    /// Per-class document counts (for the prior).
    class_docs: Vec<u64>,
    /// Total number of training documents.
    total_docs: u64,
    /// Vocabulary size for Laplace smoothing.
    vocabulary: std::collections::HashSet<String>,
    /// Laplace smoothing constant.
    alpha: f64,
}

impl MultinomialNaiveBayes {
    /// A model with `num_classes` classes and Laplace smoothing α = 1.
    pub fn new(num_classes: usize) -> Self {
        Self::with_alpha(num_classes, 1.0)
    }

    /// A model with a custom smoothing constant.
    pub fn with_alpha(num_classes: usize, alpha: f64) -> Self {
        Self {
            class_token_counts: vec![HashMap::new(); num_classes],
            class_totals: vec![0; num_classes],
            class_docs: vec![0; num_classes],
            total_docs: 0,
            vocabulary: Default::default(),
            alpha: alpha.max(1e-9),
        }
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_totals.len()
    }

    /// Train on one document: a bag of tokens labeled with `class`.
    ///
    /// # Panics
    /// Panics when `class` is out of range.
    pub fn observe<I, S>(&mut self, class: usize, tokens: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        assert!(class < self.num_classes(), "class out of range");
        self.class_docs[class] += 1;
        self.total_docs += 1;
        for t in tokens {
            let t = t.into();
            *self.class_token_counts[class].entry(t.clone()).or_insert(0) += 1;
            self.class_totals[class] += 1;
            self.vocabulary.insert(t);
        }
    }

    /// Log prior `ln P(class)` with Laplace smoothing over classes.
    pub fn log_prior(&self, class: usize) -> f64 {
        ((self.class_docs[class] as f64 + self.alpha)
            / (self.total_docs as f64 + self.alpha * self.num_classes() as f64))
            .ln()
    }

    /// Log likelihood `ln P(token | class)` with Laplace smoothing.
    pub fn log_likelihood(&self, class: usize, token: &str) -> f64 {
        let count = self.class_token_counts[class].get(token).copied().unwrap_or(0);
        ((count as f64 + self.alpha)
            / (self.class_totals[class] as f64 + self.alpha * self.vocabulary.len().max(1) as f64))
            .ln()
    }

    /// Unnormalized log joint `ln P(class) + Σ ln P(token | class)`.
    pub fn log_joint<'a, I>(&self, class: usize, tokens: I) -> f64
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut s = self.log_prior(class);
        for t in tokens {
            s += self.log_likelihood(class, t);
        }
        s
    }

    /// Posterior distribution `P(class | tokens)` over all classes.
    pub fn posterior(&self, tokens: &[&str]) -> Vec<f64> {
        let logs: Vec<f64> =
            (0..self.num_classes()).map(|c| self.log_joint(c, tokens.iter().copied())).collect();
        softmax_from_logs(&logs)
    }

    /// The most probable class for a token bag, with its posterior
    /// probability. Returns `None` when the model has no classes.
    pub fn classify(&self, tokens: &[&str]) -> Option<(usize, f64)> {
        if self.num_classes() == 0 {
            return None;
        }
        let post = self.posterior(tokens);
        post.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(c, p)| (c, *p))
    }
}

/// Normalize a vector of log-probabilities into probabilities, stably.
fn softmax_from_logs(logs: &[f64]) -> Vec<f64> {
    if logs.is_empty() {
        return Vec::new();
    }
    let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logs.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trained() -> MultinomialNaiveBayes {
        let mut nb = MultinomialNaiveBayes::new(2);
        // Class 0: storage words. Class 1: camera words.
        nb.observe(0, ["sata", "7200", "rpm", "drive"]);
        nb.observe(0, ["ide", "5400", "rpm", "drive"]);
        nb.observe(1, ["zoom", "lens", "megapixel"]);
        nb.observe(1, ["aperture", "lens", "sensor"]);
        nb
    }

    #[test]
    fn classifies_by_token_evidence() {
        let nb = trained();
        let (c, p) = nb.classify(&["rpm", "drive"]).unwrap();
        assert_eq!(c, 0);
        assert!(p > 0.8);
        let (c, _) = nb.classify(&["lens", "zoom"]).unwrap();
        assert_eq!(c, 1);
    }

    #[test]
    fn posterior_sums_to_one() {
        let nb = trained();
        let p = nb.posterior(&["rpm", "lens"]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unknown_tokens_fall_back_to_prior() {
        let mut nb = MultinomialNaiveBayes::new(2);
        nb.observe(0, ["a"]);
        nb.observe(0, ["a"]);
        nb.observe(0, ["a"]);
        nb.observe(1, ["b"]);
        let (c, _) = nb.classify(&["zzz"]).unwrap();
        assert_eq!(c, 0, "majority class wins on unseen evidence");
    }

    #[test]
    fn empty_token_list_uses_prior_only() {
        let nb = trained();
        let p = nb.posterior(&[]);
        assert!((p[0] - 0.5).abs() < 1e-9, "balanced priors");
    }

    #[test]
    fn softmax_is_stable_with_large_logs() {
        let p = softmax_from_logs(&[-1000.0, -1001.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > p[1]);
    }

    #[test]
    #[should_panic(expected = "class out of range")]
    fn out_of_range_class_panics() {
        let mut nb = MultinomialNaiveBayes::new(1);
        nb.observe(1, ["x"]);
    }
}
