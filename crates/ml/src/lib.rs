//! Minimal machine-learning toolkit built from scratch for the
//! product-synthesis pipeline.
//!
//! The paper's attribute-correspondence classifier is a logistic regression
//! over six distributional-similarity features (Section 3.2); the LSD-style
//! baseline is a multi-class Naive Bayes (Appendix C). The Rust ecosystem
//! for classifier-based matching is thin, so both learners — along with
//! feature standardization and the precision/coverage evaluation machinery —
//! are implemented here on `std` + `rand` only.

pub mod dataset;
pub mod logistic;
pub mod metrics;
pub mod naive_bayes;
pub mod standardize;

pub use dataset::Dataset;
pub use logistic::{LogisticRegression, TrainConfig};
pub use metrics::{pr_curve, precision_at_coverage, PrPoint};
pub use naive_bayes::MultinomialNaiveBayes;
pub use standardize::Standardizer;
