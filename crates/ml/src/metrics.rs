//! Classification metrics, centered on the paper's evaluation protocol.
//!
//! Section 5.2 scores every matcher by *precision at coverage*: sort the
//! output correspondences by score θ, and for each threshold report the
//! number of correspondences kept (coverage) and the fraction of those that
//! are correct (precision). Appendix B shows that at equal precision,
//! higher coverage implies higher *relative recall* — which is what the
//! figures compare.

use serde::{Deserialize, Serialize};

/// One point of a precision/coverage curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrPoint {
    /// Score threshold θ at this point.
    pub threshold: f64,
    /// Number of predictions with score ≥ θ.
    pub coverage: usize,
    /// Fraction of those predictions that are correct.
    pub precision: f64,
}

/// Build the precision-at-coverage curve from `(score, correct)` pairs.
///
/// The result is sorted by decreasing threshold (increasing coverage) and
/// contains one point per distinct score value. Ties share a point, so the
/// curve is invariant under reordering of tied predictions.
pub fn pr_curve(scored: &[(f64, bool)]) -> Vec<PrPoint> {
    let mut sorted: Vec<(f64, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let mut out = Vec::new();
    let mut correct = 0usize;
    let mut i = 0usize;
    while i < sorted.len() {
        let threshold = sorted[i].0;
        // Consume the whole tie group.
        while i < sorted.len() && sorted[i].0 == threshold {
            correct += usize::from(sorted[i].1);
            i += 1;
        }
        out.push(PrPoint { threshold, coverage: i, precision: correct as f64 / i as f64 });
    }
    out
}

/// Precision among the `k` highest-scoring predictions (`None` when there
/// are fewer than `k` predictions or `k == 0`).
pub fn precision_at_coverage(scored: &[(f64, bool)], k: usize) -> Option<f64> {
    if k == 0 || scored.len() < k {
        return None;
    }
    let mut sorted: Vec<(f64, bool)> = scored.to_vec();
    sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
    let correct = sorted[..k].iter().filter(|(_, c)| *c).count();
    Some(correct as f64 / k as f64)
}

/// Downsample a curve to at most `n` evenly spaced points (keeping the
/// first and last), for plotting / reporting.
pub fn thin_curve(curve: &[PrPoint], n: usize) -> Vec<PrPoint> {
    if curve.len() <= n || n < 2 {
        return curve.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let idx = k * (curve.len() - 1) / (n - 1);
        out.push(curve[idx]);
    }
    out.dedup_by_key(|p| p.coverage);
    out
}

/// Classic precision / recall / F1 from confusion counts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Prf {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Prf {
    /// Precision `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_in_coverage() {
        let scored = vec![(0.9, true), (0.8, true), (0.7, false), (0.6, true), (0.5, false)];
        let curve = pr_curve(&scored);
        assert_eq!(curve.len(), 5);
        assert_eq!(curve[0], PrPoint { threshold: 0.9, coverage: 1, precision: 1.0 });
        assert_eq!(curve[4].coverage, 5);
        assert!((curve[4].precision - 0.6).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[0].coverage < w[1].coverage);
            assert!(w[0].threshold > w[1].threshold);
        }
    }

    #[test]
    fn ties_share_a_point() {
        let scored = vec![(0.5, true), (0.5, false), (0.4, true)];
        let curve = pr_curve(&scored);
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0].coverage, 2);
        assert!((curve[0].precision - 0.5).abs() < 1e-12);
    }

    #[test]
    fn precision_at_k() {
        let scored = vec![(0.9, true), (0.8, false), (0.7, true)];
        assert_eq!(precision_at_coverage(&scored, 1), Some(1.0));
        assert_eq!(precision_at_coverage(&scored, 2), Some(0.5));
        assert_eq!(precision_at_coverage(&scored, 4), None);
        assert_eq!(precision_at_coverage(&scored, 0), None);
    }

    #[test]
    fn thinning_preserves_endpoints() {
        let scored: Vec<(f64, bool)> =
            (0..100).map(|i| (1.0 - i as f64 / 100.0, i % 3 == 0)).collect();
        let curve = pr_curve(&scored);
        let thin = thin_curve(&curve, 10);
        assert!(thin.len() <= 10);
        assert_eq!(thin.first().unwrap().coverage, curve.first().unwrap().coverage);
        assert_eq!(thin.last().unwrap().coverage, curve.last().unwrap().coverage);
    }

    #[test]
    fn prf_basics() {
        let m = Prf { tp: 8, fp: 2, fn_: 2 };
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 0.8).abs() < 1e-12);
        assert!((m.f1() - 0.8).abs() < 1e-12);
        assert_eq!(Prf::default().f1(), 0.0);
    }

    #[test]
    fn empty_curve() {
        assert!(pr_curve(&[]).is_empty());
    }
}
