//! Per-feature standardization (zero mean, unit variance).
//!
//! Logistic regression trained with SGD converges far faster on
//! standardized features; the standardizer is fit on the training set and
//! reapplied verbatim at prediction time.

use serde::{Deserialize, Serialize};

/// Affine per-feature transform `x' = (x - mean) / std`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fit on a set of feature vectors.
    ///
    /// Constant features get `std = 1` so they pass through centered but
    /// unscaled. An empty input yields an identity transform of dimension 0.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        let dim = rows.first().map_or(0, Vec::len);
        let n = rows.len().max(1) as f64;
        let mut means = vec![0.0; dim];
        for r in rows {
            for (m, x) in means.iter_mut().zip(r) {
                *m += x;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for r in rows {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(r) {
                let d = x - m;
                *v += d * d;
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-12 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { means, stds }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Transform one vector in place.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn apply_in_place(&self, x: &mut [f64]) {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        for ((x, m), s) in x.iter_mut().zip(&self.means).zip(&self.stds) {
            *x = (*x - m) / s;
        }
    }

    /// Transform one vector, returning a new one.
    pub fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut out = x.to_vec();
        self.apply_in_place(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardizes_to_zero_mean_unit_variance() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&rows);
        let t: Vec<Vec<f64>> = rows.iter().map(|r| s.apply(r)).collect();
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        let var0: f64 = t.iter().map(|r| r[0] * r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        assert!((var0 - 1.0).abs() < 1e-12);
        // Constant feature: centered, not scaled.
        assert!(t.iter().all(|r| r[1].abs() < 1e-12));
    }

    #[test]
    fn empty_fit_is_dimension_zero() {
        let s = Standardizer::fit(&[]);
        assert_eq!(s.dim(), 0);
        assert!(s.apply(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_panics() {
        let s = Standardizer::fit(&[vec![1.0]]);
        s.apply(&[1.0, 2.0]);
    }
}
