//! Labeled feature-vector datasets.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dense dataset of feature vectors with binary labels.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<bool>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one example.
    ///
    /// # Panics
    /// Panics when the feature dimension differs from previous examples.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "inconsistent feature dimension");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Feature dimension (0 for an empty dataset).
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Number of positive examples.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|l| **l).count()
    }

    /// Example accessors.
    pub fn example(&self, i: usize) -> (&[f64], bool) {
        (&self.features[i], self.labels[i])
    }

    /// All feature vectors.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Deterministically shuffled index order for SGD epochs.
    pub fn shuffled_indices(&self, seed: u64) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        idx
    }

    /// Split into `(train, test)` with the given test fraction, shuffling
    /// deterministically by `seed`.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        let idx = self.shuffled_indices(seed);
        let n_test = ((self.len() as f64) * test_fraction.clamp(0.0, 1.0)).round() as usize;
        let mut train = Dataset::new();
        let mut test = Dataset::new();
        for (k, &i) in idx.iter().enumerate() {
            let (f, l) = self.example(i);
            if k < n_test {
                test.push(f.to_vec(), l);
            } else {
                train.push(f.to_vec(), l);
            }
        }
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64, 1.0], i % 2 == 0);
        }
        d
    }

    #[test]
    fn basic_accessors() {
        let d = sample();
        assert_eq!(d.len(), 10);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.positives(), 5);
        assert_eq!(d.example(1), (&[1.0, 1.0][..], false));
    }

    #[test]
    fn split_partitions_examples() {
        let d = sample();
        let (train, test) = d.split(0.3, 1);
        assert_eq!(train.len(), 7);
        assert_eq!(test.len(), 3);
        assert_eq!(train.dim(), 2);
    }

    #[test]
    fn shuffle_is_deterministic() {
        let d = sample();
        assert_eq!(d.shuffled_indices(9), d.shuffled_indices(9));
        assert_ne!(d.shuffled_indices(9), d.shuffled_indices(10));
    }

    #[test]
    #[should_panic(expected = "inconsistent feature dimension")]
    fn dimension_mismatch_panics() {
        let mut d = sample();
        d.push(vec![1.0], true);
    }
}
