//! Binary logistic regression trained with mini-batch SGD and L2
//! regularization.
//!
//! This is the classifier of Section 3.2 of the paper: it consumes the six
//! distributional-similarity features of Table 1 and predicts whether a
//! candidate `⟨Ap, Ao, M, C⟩` tuple is a valid attribute correspondence.
//! The predicted probability doubles as the score θ used for the
//! precision-at-coverage evaluation of Section 5.2.

use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::standardize::Standardizer;

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Initial learning rate; decays as `lr / (1 + epoch * decay)`.
    pub learning_rate: f64,
    /// Learning-rate decay factor per epoch.
    pub decay: f64,
    /// L2 regularization strength (applied to weights, not the intercept).
    pub l2: f64,
    /// Seed for the per-epoch shuffle.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 60, learning_rate: 0.3, decay: 0.05, l2: 1e-4, seed: 0xC0FFEE }
    }
}

/// A trained binary logistic-regression model with built-in feature
/// standardization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    intercept: f64,
    standardizer: Standardizer,
}

impl LogisticRegression {
    /// Train on a dataset.
    ///
    /// # Panics
    /// Panics when the dataset is empty.
    pub fn train(data: &Dataset, config: &TrainConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let standardizer = Standardizer::fit(data.features());
        let rows: Vec<Vec<f64>> = data.features().iter().map(|r| standardizer.apply(r)).collect();
        let dim = data.dim();
        let mut weights = vec![0.0f64; dim];
        let mut intercept = 0.0f64;
        let n = rows.len() as f64;

        for epoch in 0..config.epochs {
            let lr = config.learning_rate / (1.0 + epoch as f64 * config.decay);
            let order = data.shuffled_indices(config.seed.wrapping_add(epoch as u64));
            for i in order {
                let x = &rows[i];
                let y = if data.labels()[i] { 1.0 } else { 0.0 };
                let p = sigmoid(dot(&weights, x) + intercept);
                let err = p - y;
                for (w, xi) in weights.iter_mut().zip(x) {
                    *w -= lr * (err * xi + config.l2 * *w / n);
                }
                intercept -= lr * err;
            }
        }
        Self { weights, intercept, standardizer }
    }

    /// Predicted probability that `features` is a positive example.
    ///
    /// # Panics
    /// Panics on feature-dimension mismatch.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let x = self.standardizer.apply(features);
        sigmoid(dot(&self.weights, &x) + self.intercept)
    }

    /// Hard prediction at threshold 0.5.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_proba(features) >= 0.5
    }

    /// Learned weights (in standardized feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Mean log-loss over a dataset.
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        let eps = 1e-12;
        let mut sum = 0.0;
        for i in 0..data.len() {
            let (x, y) = data.example(i);
            let p = self.predict_proba(x).clamp(eps, 1.0 - eps);
            sum -= if y { p.ln() } else { (1.0 - p).ln() };
        }
        sum / data.len().max(1) as f64
    }

    /// Accuracy over a dataset at threshold 0.5.
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = (0..data.len())
            .filter(|&i| {
                let (x, y) = data.example(i);
                self.predict(x) == y
            })
            .count();
        correct as f64 / data.len() as f64
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    fn linearly_separable(n: usize, seed: u64) -> Dataset {
        // y = 1 iff x0 + x1 > 1.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut d = Dataset::new();
        for _ in 0..n {
            let x0: f64 = rng.random();
            let x1: f64 = rng.random();
            d.push(vec![x0, x1], x0 + x1 > 1.0);
        }
        d
    }

    #[test]
    fn learns_linearly_separable_data() {
        let train = linearly_separable(500, 1);
        let test = linearly_separable(200, 2);
        let model = LogisticRegression::train(&train, &TrainConfig::default());
        assert!(model.accuracy(&test) > 0.95, "accuracy={}", model.accuracy(&test));
    }

    #[test]
    fn probabilities_are_calibrated_ordering() {
        let train = linearly_separable(500, 3);
        let model = LogisticRegression::train(&train, &TrainConfig::default());
        // Deep in the positive region > boundary > deep negative.
        let hi = model.predict_proba(&[0.9, 0.9]);
        let mid = model.predict_proba(&[0.5, 0.5]);
        let lo = model.predict_proba(&[0.1, 0.1]);
        assert!(hi > mid && mid > lo, "hi={hi} mid={mid} lo={lo}");
        assert!(hi > 0.9);
        assert!(lo < 0.1);
    }

    #[test]
    fn more_epochs_do_not_hurt_loss() {
        let data = linearly_separable(300, 4);
        let short =
            LogisticRegression::train(&data, &TrainConfig { epochs: 2, ..TrainConfig::default() });
        let long =
            LogisticRegression::train(&data, &TrainConfig { epochs: 80, ..TrainConfig::default() });
        assert!(long.log_loss(&data) <= short.log_loss(&data) + 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn handles_single_class_gracefully() {
        let mut d = Dataset::new();
        for i in 0..20 {
            d.push(vec![i as f64], true);
        }
        let model = LogisticRegression::train(&d, &TrainConfig::default());
        assert!(model.predict_proba(&[5.0]) > 0.9);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        LogisticRegression::train(&Dataset::new(), &TrainConfig::default());
    }
}
