//! Experiment harness shared by the `experiments` binary and the Criterion
//! benches.
//!
//! Each experiment of the paper (Tables 2–4, Figures 6–9) has a driver here
//! that builds a synthetic world at the requested scale, runs the honest
//! end-to-end path (render landing page → extract → learn → reconcile →
//! cluster → fuse), evaluates against the oracle, and renders the same rows
//! or series the paper reports.

pub mod experiments;
pub mod ingest_bench;
pub mod scale;
pub mod search_bench;
pub mod serve_bench;

pub use experiments::*;
pub use ingest_bench::{
    peak_rss_kb, render_ingest_bench, run_ingest_bench, IngestBenchOpts, IngestLegRow,
    IngestScaleRun,
};
pub use scale::{ArgsError, Scale};
pub use search_bench::{
    render_search_bench, run_search_bench, search_query_paths, SearchBenchRow, SearchBenchRun,
    SEARCH_PRECISION_AT_1_MIN, SEARCH_QUERY_COUNT, SEARCH_RECALL_AT_10_MIN, SEARCH_TOP_K,
};
pub use serve_bench::{
    embedded_spec_provider, query_paths, render_obs_overhead, render_serve_bench, run_serve_bench,
    run_serve_bench_obs_overhead, run_serve_bench_read_heavy, serve_corpus, ObsOverheadRun,
    ServeBenchRow, ServeBenchRun, ServeCorpus, OBS_OVERHEAD_BUDGET_PCT,
};

use pse_core::Offer;
use pse_datagen::World;
use pse_synthesis::{ExtractingProvider, SpecProvider};

/// The git commit hash of the working tree, recorded in report headers so
/// results stay attributable to the code that produced them. Returns
/// `"unknown"` when git or the repository is unavailable.
pub fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The honest provider: render the offer's landing page and extract the
/// specification from its tables — extraction noise and bullet-page misses
/// included.
pub fn html_provider(world: &World) -> impl SpecProvider + '_ {
    ExtractingProvider::new(move |o: &Offer| world.landing_page(o.id))
}

/// A noise-free provider reading the page specification directly (ablation:
/// isolates the learning pipeline from extraction noise).
pub fn oracle_provider(world: &World) -> impl SpecProvider + '_ {
    pse_synthesis::FnProvider(move |o: &Offer| world.page_spec(o.id))
}
