//! Experiment scale presets.
//!
//! The paper runs on 856,781 offers / 1,143 merchants / 498 categories.
//! The default scale here is sized for a single-core CI box; pass
//! `--offers N` (and friends) to the `experiments` binary to go bigger —
//! the generator and pipeline scale linearly.

use pse_datagen::WorldConfig;

/// Why experiment arguments failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A value-taking flag appeared last with nothing after it.
    MissingValue(String),
    /// A value that did not parse, with the reason.
    Invalid {
        /// The offending input.
        input: String,
        /// What went wrong.
        reason: String,
    },
    /// A `--flag` no subcommand recognizes.
    UnknownFlag(String),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingValue(flag) => write!(f, "missing value for {flag}"),
            Self::Invalid { input, reason } => write!(f, "cannot parse {input:?}: {reason}"),
            Self::UnknownFlag(flag) => write!(f, "unknown flag {flag}"),
        }
    }
}

impl std::error::Error for ArgsError {}

impl From<ArgsError> for String {
    fn from(e: ArgsError) -> String {
        e.to_string()
    }
}

/// Scale knobs resolved from CLI arguments.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Total offers.
    pub offers: usize,
    /// Merchants.
    pub merchants: usize,
    /// Leaf categories per top level (Cameras, Computing, Furnishings,
    /// Kitchen).
    pub leaves: [usize; 4],
    /// Products per leaf category.
    pub products_per_category: usize,
    /// Master seed.
    pub seed: u64,
    /// Historical-match error rate (Table 2 robustness knob).
    pub match_error_rate: f64,
}

impl Default for Scale {
    fn default() -> Self {
        Self {
            offers: 60_000,
            merchants: 150,
            leaves: [12, 22, 8, 8],
            products_per_category: 50,
            seed: 0x5EED,
            match_error_rate: 0.08,
        }
    }
}

impl Scale {
    /// A small scale for Criterion benches and smoke runs.
    pub fn smoke() -> Self {
        Self {
            offers: 4_000,
            merchants: 30,
            leaves: [3, 6, 2, 2],
            products_per_category: 30,
            ..Self::default()
        }
    }

    /// Parse `--key value` style arguments, starting from defaults.
    ///
    /// Recognized keys: `--offers`, `--merchants`, `--seed`,
    /// `--products-per-category`, `--match-error-rate`, `--leaves a,b,c,d`,
    /// `--smoke`. The binary-level flags `--out DIR`, `--batches N`,
    /// `--workers N`, `--shards a,b,c`, `--requests N`, `--addr A`,
    /// `--port-file P`, `--wal-dir D`, `--compact-bytes N`,
    /// `--batch-size N`, `--baseline-offers N`, `--group-size N`,
    /// `--group-wait-us N`, `--scenario NAME`, `--quiet`, `--obs`,
    /// `--obs-overhead`, `--read-heavy` and `--verify-blocking` are
    /// accepted and ignored here.
    pub fn from_args(args: &[String]) -> Result<Self, ArgsError> {
        let mut scale =
            if args.iter().any(|a| a == "--smoke") { Self::smoke() } else { Self::default() };
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            let mut take =
                || it.next().cloned().ok_or_else(|| ArgsError::MissingValue(arg.clone()));
            match arg.as_str() {
                "--offers" => scale.offers = parse(&take()?)?,
                "--merchants" => scale.merchants = parse(&take()?)?,
                "--products-per-category" => scale.products_per_category = parse(&take()?)?,
                "--seed" => scale.seed = parse(&take()?)?,
                "--match-error-rate" => scale.match_error_rate = parse(&take()?)?,
                "--leaves" => {
                    let v = take()?;
                    let parts: Vec<usize> =
                        v.split(',').map(parse::<usize>).collect::<Result<_, _>>()?;
                    if parts.len() != 4 {
                        return Err(ArgsError::Invalid {
                            input: v,
                            reason: "--leaves needs 4 comma-separated counts".into(),
                        });
                    }
                    scale.leaves = [parts[0], parts[1], parts[2], parts[3]];
                }
                "--smoke" | "--quiet" | "--obs" | "--obs-overhead" | "--verify-blocking"
                | "--read-heavy" => {}
                "--out" | "--batches" | "--workers" | "--shards" | "--requests" | "--addr"
                | "--port-file" | "--wal-dir" | "--compact-bytes" | "--batch-size"
                | "--baseline-offers" | "--group-size" | "--group-wait-us" | "--scenario" => {
                    take()?; // consumed by the binary, not the scale
                }
                other if other.starts_with("--") => {
                    return Err(ArgsError::UnknownFlag(other.to_string()));
                }
                _ => {}
            }
        }
        Ok(scale)
    }

    /// The world configuration for this scale.
    pub fn world_config(&self) -> WorldConfig {
        WorldConfig {
            seed: self.seed,
            leaf_categories_per_top: self.leaves,
            products_per_category: self.products_per_category,
            num_merchants: self.merchants,
            num_offers: self.offers,
            match_error_rate: self.match_error_rate,
            // Keep merchant-per-category density realistic as scale grows.
            merchant_category_coverage: (30.0 / self.total_leaves() as f64).clamp(0.05, 0.6),
            ..WorldConfig::default()
        }
    }

    /// Total leaf categories.
    pub fn total_leaves(&self) -> usize {
        self.leaves.iter().sum()
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, ArgsError>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| ArgsError::Invalid { input: s.to_string(), reason: format!("{e}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults_and_overrides() {
        let s = Scale::from_args(&args(&["--offers", "1000", "--seed", "7"])).unwrap();
        assert_eq!(s.offers, 1000);
        assert_eq!(s.seed, 7);
        assert_eq!(s.merchants, Scale::default().merchants);
    }

    #[test]
    fn smoke_preset() {
        let s = Scale::from_args(&args(&["--smoke"])).unwrap();
        assert_eq!(s.offers, 4_000);
    }

    #[test]
    fn leaves_parsing() {
        let s = Scale::from_args(&args(&["--leaves", "1,2,3,4"])).unwrap();
        assert_eq!(s.leaves, [1, 2, 3, 4]);
        assert!(Scale::from_args(&args(&["--leaves", "1,2"])).is_err());
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Scale::from_args(&args(&["--bogus"])).is_err());
        assert!(Scale::from_args(&args(&["--offers"])).is_err());
    }

    #[test]
    fn binary_level_flags_accepted() {
        let s = Scale::from_args(&args(&[
            "--quiet",
            "--obs",
            "--verify-blocking",
            "--out",
            "results",
            "--batches",
            "4",
        ]))
        .unwrap();
        assert_eq!(s.offers, Scale::default().offers);
        assert!(Scale::from_args(&args(&["--batches"])).is_err());
    }

    #[test]
    fn config_is_valid() {
        assert!(Scale::default().world_config().validate().is_ok());
        assert!(Scale::smoke().world_config().validate().is_ok());
    }
}
