//! Drivers that regenerate every table and figure of the paper.

use std::fmt::Write as _;

use pse_baselines::{
    ComaConfig, ComaIndex, ComaMatcher, ComaStrategy, DumasMatcher, NaiveBayesMatcher,
    SingleFeature, SingleFeatureScorer,
};
use pse_core::Offer;
use pse_datagen::templates::TopLevel;
use pse_datagen::World;
use pse_eval::correspondence::{labeled_curve, LabeledCurve};
use pse_eval::recall::recall_report;
use pse_eval::report::TextTable;
use pse_eval::synthesis_eval::{evaluate_synthesis, per_top_level, SynthesisQuality};
use pse_synthesis::{
    OfflineConfig, OfflineLearner, OfflineOutcome, Pipeline, SpecProvider, SynthesisResult,
    TitleMatcher,
};
use serde::{Deserialize, Serialize};

use crate::scale::Scale;
use crate::{html_provider, oracle_provider};

/// Build the world for a scale (convenience).
pub fn build_world(scale: &Scale) -> World {
    World::generate(scale.world_config())
}

/// The offers whose top-level category is Computing — the subtree the paper
/// uses for Figures 7–9 ("92 categories, corresponding to subcategories of
/// Computing").
pub fn computing_offers(world: &World) -> Vec<Offer> {
    let taxonomy = world.catalog.taxonomy();
    let computing =
        taxonomy.find_by_name(TopLevel::Computing.name()).expect("computing top level exists").id;
    world
        .offers
        .iter()
        .filter(|o| o.category.is_some_and(|c| taxonomy.top_level_of(c) == computing))
        .cloned()
        .collect()
}

/// Run the offline phase over the given offers with the honest HTML path.
pub fn run_offline(world: &World, offers: &[Offer]) -> OfflineOutcome {
    let provider = html_provider(world);
    OfflineLearner::new().learn(&world.catalog, offers, &world.historical, &provider)
}

/// Full end-to-end run: offline learning on historical offers, then the
/// run-time pipeline over the offers *not* matched to any product (the
/// product-synthesis population).
pub struct EndToEnd {
    /// Offline phase outputs.
    pub offline: OfflineOutcome,
    /// Runtime outputs.
    pub synthesis: SynthesisResult,
    /// Quality vs the oracle.
    pub quality: SynthesisQuality,
    /// Number of offers fed to the runtime phase.
    pub runtime_offers: usize,
}

/// Run the full pipeline at world scale.
pub fn run_end_to_end(world: &World) -> EndToEnd {
    let provider = html_provider(world);
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let pipeline = Pipeline::builder()
        .catalog(world.catalog.clone())
        .correspondences(offline.correspondences.clone())
        .build()
        .expect("catalog and correspondences are supplied");
    let synthesis = pipeline.process(&unmatched, &provider);
    let quality = evaluate_synthesis(world, &synthesis.products);
    EndToEnd { offline, synthesis, quality, runtime_offers: unmatched.len() }
}

/// Table 2: quality of synthesized product specifications.
pub fn table2(world: &World, e2e: &EndToEnd) -> String {
    let mut t = TextTable::new(["Metric", "Value"]);
    t.row(["Input Offers", &world.offers.len().to_string()]);
    t.row(["Historical Offers (offline phase)", &e2e.offline.stats.historical_offers.to_string()]);
    t.row(["Runtime Offers (unmatched)", &e2e.runtime_offers.to_string()]);
    t.row(["Synthesized Products", &e2e.synthesis.products.len().to_string()]);
    t.row(["Synthesized Product Attributes", &e2e.synthesis.total_attributes().to_string()]);
    t.row(["Attribute Precision", &format!("{:.2}", e2e.quality.attribute_precision())]);
    t.row(["Product Precision", &format!("{:.2}", e2e.quality.product_precision())]);
    let mut out = String::from("Table 2: Quality of synthesized product specifications\n");
    out.push_str(&t.render());
    let _ = writeln!(
        out,
        "\nOffline phase: {} candidates, {} training elements ({} positive), {} predicted valid",
        e2e.offline.stats.candidates,
        e2e.offline.stats.training_examples,
        e2e.offline.stats.training_positives,
        e2e.offline.stats.predicted_valid,
    );
    out
}

/// Table 3: synthesis per top-level category.
pub fn table3(world: &World, e2e: &EndToEnd) -> String {
    let rows = per_top_level(world, &e2e.synthesis.products);
    let mut t = TextTable::new([
        "Top-level category",
        "Avg Attrs/Product",
        "Attr precision",
        "Product precision",
        "Products",
    ]);
    for (name, q) in rows {
        t.row([
            name,
            format!("{:.2}", q.avg_attributes_per_product()),
            format!("{:.2}", q.attribute_precision()),
            format!("{:.2}", q.product_precision()),
            q.products.to_string(),
        ]);
    }
    format!("Table 3: Synthesis per top-level category\n{}", t.render())
}

/// Table 4: precision and recall for synthesized attributes by offer-set
/// size.
pub fn table4(world: &World, e2e: &EndToEnd, threshold: usize) -> String {
    let report = recall_report(world, &e2e.synthesis.products, threshold);
    let mut t = TextTable::new([
        "Bucket",
        "Products",
        "Attr recall",
        "Attr precision",
        "Avg pooled pairs",
        "Avg synthesized attrs",
    ]);
    for (label, b) in [
        (format!("Products with >= {threshold} offers"), &report.large),
        (format!("Products with < {threshold} offers"), &report.small),
    ] {
        t.row([
            label,
            b.products.to_string(),
            format!("{:.2}", b.recall()),
            format!("{:.2}", b.quality.attribute_precision()),
            format!("{:.1}", b.avg_pooled_pairs()),
            format!("{:.1}", b.avg_synthesized()),
        ]);
    }
    format!("Table 4: Precision and recall for synthesized attributes\n{}", t.render())
}

/// Figure 6: our classifier vs single-feature baselines, all categories.
pub fn fig6(world: &World) -> Vec<LabeledCurve> {
    let provider = html_provider(world);
    let ours =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let js = SingleFeatureScorer::new(SingleFeature::JsMc).score_candidates(
        &world.catalog,
        &world.offers,
        &world.historical,
        &provider,
    );
    let jac = SingleFeatureScorer::new(SingleFeature::JaccardMc).score_candidates(
        &world.catalog,
        &world.offers,
        &world.historical,
        &provider,
    );
    vec![
        labeled_curve("Our approach", &ours.scored, &world.truth),
        labeled_curve("JS - MC", &js, &world.truth),
        labeled_curve("J - MC", &jac, &world.truth),
    ]
}

/// Figure 7: with vs without historical instance matches (Computing
/// subtree).
pub fn fig7(world: &World) -> Vec<LabeledCurve> {
    let offers = computing_offers(world);
    let provider = html_provider(world);
    let ours = OfflineLearner::new().learn(&world.catalog, &offers, &world.historical, &provider);
    let no_matching = OfflineLearner::with_config(OfflineConfig {
        match_conditioning: false,
        ..OfflineConfig::default()
    })
    .learn(&world.catalog, &offers, &world.historical, &provider);
    vec![
        labeled_curve("Our approach", &ours.scored, &world.truth),
        labeled_curve("No matching", &no_matching.scored, &world.truth),
    ]
}

/// Figure 8: our approach vs DUMAS, instance-based Naive Bayes, and the
/// COMA++ configurations (Computing subtree). The six matcher runs are
/// independent, so they fan out across worker threads; curve order (and
/// every number in it) is identical at any `PSE_THREADS`.
///
/// The COMA index (per-category interning, per-group TF-IDF vectors, name
/// scores) is strategy-independent, so it is built once per world and
/// shared by the three COMA configurations.
pub fn fig8(world: &World) -> Vec<LabeledCurve> {
    let offers = computing_offers(world);
    let provider = html_provider(world);
    let coma_index = ComaIndex::build(&world.catalog, &offers, &provider);
    let coma = |strategy| ComaMatcher::new(ComaConfig::new(strategy)).score_with_index(&coma_index);
    let sweep: Vec<MatcherTask<'_>> = vec![
        Box::new(|| {
            let ours =
                OfflineLearner::new().learn(&world.catalog, &offers, &world.historical, &provider);
            labeled_curve("Our approach", &ours.scored, &world.truth)
        }),
        Box::new(|| {
            let nb = NaiveBayesMatcher::new().score_candidates(&world.catalog, &offers, &provider);
            labeled_curve("Instance-based Naive Bayes", &nb, &world.truth)
        }),
        Box::new(|| {
            let dumas = DumasMatcher::new().score_candidates(
                &world.catalog,
                &offers,
                &world.historical,
                &provider,
            );
            labeled_curve("DUMAS", &dumas, &world.truth)
        }),
        Box::new(|| labeled_curve("Name-based COMA++", &coma(ComaStrategy::Name), &world.truth)),
        Box::new(|| {
            labeled_curve("Instance-based COMA++", &coma(ComaStrategy::Instance), &world.truth)
        }),
        Box::new(|| labeled_curve("Combined COMA++", &coma(ComaStrategy::Combined), &world.truth)),
    ];
    run_sweep(sweep)
}

/// One matcher run inside a scoring sweep.
type MatcherTask<'a> = Box<dyn Fn() -> LabeledCurve + Sync + 'a>;

/// Run the independent matchers of a sweep across worker threads,
/// preserving sweep order.
fn run_sweep(tasks: Vec<MatcherTask<'_>>) -> Vec<LabeledCurve> {
    pse_par::par_map(&tasks, |task| task())
}

/// Figure 9: COMA++ δ ablation (Computing subtree); the six runs fan out
/// like [`fig8`]'s, and the five COMA configurations share one
/// [`ComaIndex`] build.
pub fn fig9(world: &World) -> Vec<LabeledCurve> {
    let offers = computing_offers(world);
    let provider = html_provider(world);
    let coma_index = ComaIndex::build(&world.catalog, &offers, &provider);
    let coma_curve = |name: &'static str, cfg| {
        labeled_curve(name, &ComaMatcher::new(cfg).score_with_index(&coma_index), &world.truth)
    };
    let sweep: Vec<MatcherTask<'_>> = vec![
        Box::new(|| {
            let ours =
                OfflineLearner::new().learn(&world.catalog, &offers, &world.historical, &provider);
            labeled_curve("Our approach", &ours.scored, &world.truth)
        }),
        Box::new(|| {
            coma_curve(
                "Combined COMA++ (d=inf)",
                ComaConfig::with_unbounded_delta(ComaStrategy::Combined),
            )
        }),
        Box::new(|| {
            coma_curve(
                "Name-based COMA++ (d=inf)",
                ComaConfig::with_unbounded_delta(ComaStrategy::Name),
            )
        }),
        Box::new(|| coma_curve("Name-based COMA++", ComaConfig::new(ComaStrategy::Name))),
        Box::new(|| coma_curve("Instance-based COMA++", ComaConfig::new(ComaStrategy::Instance))),
        Box::new(|| coma_curve("Combined COMA++", ComaConfig::new(ComaStrategy::Combined))),
    ];
    run_sweep(sweep)
}

/// Outcome of the blocking-equivalence audit (`fig8 --verify-blocking`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BlockingAudit {
    /// Offers audited.
    pub offers: usize,
    /// Offers the matcher matched (either path).
    pub matched: usize,
    /// Offers where the blocked and naive paths disagreed (product,
    /// similarity bits, or kind). Must be zero.
    pub mismatches: usize,
}

/// Audit the inverted-index candidate blocking of the bootstrap
/// [`TitleMatcher`]: run every world offer through both the blocked path
/// and the exhaustive scan, and count disagreements (matched product, match
/// kind, or the similarity's exact bit pattern). Blocking is a pure
/// optimization, so any mismatch is a bug.
pub fn verify_blocking(world: &World) -> BlockingAudit {
    let provider = html_provider(world);
    let matcher = TitleMatcher::new(&world.catalog);
    let mut matched = 0;
    let mut mismatches = 0;
    for offer in &world.offers {
        let spec = provider.spec(offer);
        let blocked = matcher.match_offer(offer, &spec);
        let naive = matcher.match_offer_naive(offer, &spec);
        let agree = match (&blocked, &naive) {
            (None, None) => true,
            (Some(b), Some(n)) => {
                b.product == n.product
                    && b.kind == n.kind
                    && b.similarity.to_bits() == n.similarity.to_bits()
            }
            _ => false,
        };
        if blocked.is_some() || naive.is_some() {
            matched += 1;
        }
        if !agree {
            mismatches += 1;
        }
    }
    BlockingAudit { offers: world.offers.len(), matched, mismatches }
}

/// Ablation: extraction noise — oracle specs vs HTML-extracted specs.
pub fn ablation_extraction(world: &World) -> Vec<LabeledCurve> {
    let html = {
        let provider = html_provider(world);
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider)
    };
    let oracle = {
        let provider = oracle_provider(world);
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider)
    };
    vec![
        labeled_curve("HTML extraction", &html.scored, &world.truth),
        labeled_curve("Oracle specs (no extraction noise)", &oracle.scored, &world.truth),
    ]
}

/// Ablation: which feature groupings carry the signal (drop MC / C / M).
pub fn ablation_features(world: &World) -> Vec<LabeledCurve> {
    let offers = computing_offers(world);
    let provider = html_provider(world);
    let run = |name: &str, cfg: OfflineConfig| {
        let out = OfflineLearner::with_config(cfg).learn(
            &world.catalog,
            &offers,
            &world.historical,
            &provider,
        );
        labeled_curve(name, &out.scored, &world.truth)
    };
    vec![
        run("All six features", OfflineConfig::default()),
        run("MC grouping only", OfflineConfig::mc_only()),
        run("Without MC grouping", OfflineConfig::without_grouping(0)),
        run("Without C grouping", OfflineConfig::without_grouping(1)),
        run("Without M grouping", OfflineConfig::without_grouping(2)),
    ]
}

/// Ablation: value-fusion strategy (Appendix A's centroid voting vs
/// simpler rules). Returns rows of (strategy, products, attr precision,
/// product precision).
pub fn ablation_fusion(world: &World) -> String {
    use pse_synthesis::runtime::FusionStrategy;
    let provider = html_provider(world);
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let mut t =
        TextTable::new(["Fusion strategy", "Products", "Attr precision", "Product precision"]);
    for (name, strategy) in [
        ("Centroid vote (paper)", FusionStrategy::CentroidVote),
        ("Exact majority", FusionStrategy::MajorityExact),
        ("Longest value", FusionStrategy::LongestValue),
        ("First seen", FusionStrategy::FirstSeen),
    ] {
        let pipeline = Pipeline::builder()
            .catalog(world.catalog.clone())
            .correspondences(offline.correspondences.clone())
            .fusion(strategy)
            .build()
            .expect("catalog and correspondences are supplied");
        let result = pipeline.process(&unmatched, &provider);
        let q = evaluate_synthesis(world, &result.products);
        t.row([
            name.to_string(),
            q.products.to_string(),
            format!("{:.3}", q.attribute_precision()),
            format!("{:.3}", q.product_precision()),
        ]);
    }
    format!(
        "Ablation: value-fusion strategy
{}",
        t.render()
    )
}

/// Ablation: clustering key choice (MPN vs UPC vs both).
pub fn ablation_keys(world: &World) -> String {
    let provider = html_provider(world);
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let mut t = TextTable::new(["Cluster keys", "Products", "Impure clusters", "Attr precision"]);
    for (name, keys) in [
        ("MPN then UPC (paper)", vec!["MPN".to_string(), "UPC".to_string()]),
        ("MPN only", vec!["MPN".to_string()]),
        ("UPC only", vec!["UPC".to_string()]),
    ] {
        let pipeline = Pipeline::builder()
            .catalog(world.catalog.clone())
            .correspondences(offline.correspondences.clone())
            .key_attributes(keys)
            .build()
            .expect("catalog and correspondences are supplied");
        let result = pipeline.process(&unmatched, &provider);
        let q = evaluate_synthesis(world, &result.products);
        t.row([
            name.to_string(),
            q.products.to_string(),
            q.impure_clusters.to_string(),
            format!("{:.3}", q.attribute_precision()),
        ]);
    }
    format!(
        "Ablation: clustering key choice
{}",
        t.render()
    )
}

/// Ablation: robustness to historical-match noise — sweep the match error
/// rate and report correspondence precision at a fixed coverage.
pub fn ablation_history_noise(scale: &Scale) -> String {
    let mut t = TextTable::new(["Match error rate", "Prec@2000", "Prec@5000", "Max coverage"]);
    for rate in [0.0, 0.1, 0.25, 0.4] {
        let mut s = scale.clone();
        s.match_error_rate = rate;
        // Keep this sweep affordable: quarter-size worlds.
        s.offers = (s.offers / 4).max(2_000);
        let world = build_world(&s);
        let offers = computing_offers(&world);
        let provider = html_provider(&world);
        let out =
            OfflineLearner::new().learn(&world.catalog, &offers, &world.historical, &provider);
        let curve = labeled_curve("x", &out.scored, &world.truth);
        let fmt = |c: Option<f64>| c.map_or("-".to_string(), |p| format!("{p:.3}"));
        t.row([
            format!("{rate:.2}"),
            fmt(curve.precision_at(2_000)),
            fmt(curve.precision_at(5_000)),
            curve.max_coverage().to_string(),
        ]);
    }
    format!(
        "Ablation: historical-match noise robustness
{}",
        t.render()
    )
}

/// Ablation: distributional-measure choice (Lee '99) — validates the
/// paper's §3.1 selection of JS divergence and Jaccard over L1 and cosine.
pub fn ablation_measures(world: &World) -> Vec<LabeledCurve> {
    let offers = computing_offers(world);
    let provider = html_provider(world);
    use pse_synthesis::offline::bags::FeatureIndex;
    let index = FeatureIndex::build_matched(&world.catalog, &offers, &world.historical, &provider);
    [
        ("JS - MC", SingleFeature::JsMc),
        ("Jaccard - MC", SingleFeature::JaccardMc),
        ("L1 - MC", SingleFeature::L1Mc),
        ("Cosine - MC", SingleFeature::CosineMc),
    ]
    .into_iter()
    .map(|(name, f)| {
        let scored = SingleFeatureScorer::new(f).score_from_index(&world.catalog, &index);
        labeled_curve(name, &scored, &world.truth)
    })
    .collect()
}

/// Extension (the paper's stated future work): integrate name matchers —
/// add name-similarity features to the classifier and compare.
pub fn extension_name_features(world: &World) -> Vec<LabeledCurve> {
    let offers = computing_offers(world);
    let provider = html_provider(world);
    let run = |name: &str, cfg: OfflineConfig| {
        let out = OfflineLearner::with_config(cfg).learn(
            &world.catalog,
            &offers,
            &world.historical,
            &provider,
        );
        labeled_curve(name, &out.scored, &world.truth)
    };
    vec![
        run("Instance features (paper)", OfflineConfig::default()),
        run("Instance + name features", OfflineConfig::with_name_features()),
    ]
}

/// Render curves as a fixed-checkpoint text table (the readable view of a
/// precision/coverage figure).
pub fn render_curves(title: &str, curves: &[LabeledCurve]) -> String {
    let max_cov = curves.iter().map(|c| c.max_coverage()).max().unwrap_or(0);
    let checkpoints = checkpoints_for(max_cov);
    let mut header = vec!["Matcher".to_string(), "Output".to_string(), "Prec@all".to_string()];
    header.extend(checkpoints.iter().map(|c| format!("Prec@{c}")));
    let mut t = TextTable::new(header);
    for c in curves {
        let mut row = vec![
            c.name.clone(),
            c.max_coverage().to_string(),
            format!("{:.3}", c.overall_precision()),
        ];
        for k in &checkpoints {
            row.push(match c.precision_at(*k) {
                Some(p) => format!("{p:.3}"),
                None => "-".to_string(),
            });
        }
        t.row(row);
    }
    format!("{title}\n{}", t.render())
}

/// CSV series for a figure: matcher, threshold, coverage, precision.
pub fn curves_csv(curves: &[LabeledCurve]) -> String {
    let mut csv = pse_eval::report::Csv::new();
    csv.record(["matcher", "threshold", "coverage", "precision"]);
    for c in curves {
        for p in &c.points {
            csv.record([
                c.name.as_str(),
                &format!("{:.6}", p.threshold),
                &p.coverage.to_string(),
                &format!("{:.6}", p.precision),
            ]);
        }
    }
    csv.into_string()
}

/// One batch of the incremental-ingestion experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalBatchRow {
    /// Batch index (0-based).
    pub batch: usize,
    /// Offers in this batch.
    pub offers: usize,
    /// Offers ingested so far (including this batch).
    pub total_offers: usize,
    /// Clusters this batch touched.
    pub clusters_dirty: usize,
    /// Dirty clusters re-fused.
    pub refused: usize,
    /// Clusters in the store after this batch.
    pub clusters_total: usize,
    /// Wall-clock of the incremental `ingest`.
    pub ingest_ns: u64,
    /// Wall-clock of a full `RuntimePipeline::process` over every offer
    /// ingested so far — what a batch-only system would pay per batch.
    pub full_recompute_ns: u64,
}

/// Result of replaying the Table-2 corpus through a [`ProductStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalRun {
    /// Number of batches requested.
    pub batches: usize,
    /// Per-batch measurements.
    pub rows: Vec<IncrementalBatchRow>,
    /// Final store products are byte-identical to one `process` call over
    /// the whole corpus (the batch-equivalence acceptance check).
    pub equal: bool,
    /// Products in the final store.
    pub products: usize,
    /// Size of the JSON snapshot taken mid-replay.
    pub snapshot_bytes: usize,
}

/// Replay the Table-2 corpus (offers matching no historical product) in
/// `batches` batches through a [`ProductStore`], timing each incremental
/// ingest against a from-scratch `process` over the same prefix. A
/// snapshot/restore cycle runs (untimed) before the third batch to
/// exercise persistence on the honest path.
pub fn run_incremental(world: &World, batches: usize) -> IncrementalRun {
    let provider = html_provider(world);
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let corpus: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let batches = batches.max(1);
    let pipeline = Pipeline::builder()
        .catalog(world.catalog.clone())
        .correspondences(offline.correspondences.clone())
        .build()
        .expect("catalog and correspondences are supplied");
    let mut store = pse_store::ProductStore::new(offline.correspondences.clone());
    let chunk = corpus.len().div_ceil(batches).max(1);
    let mut rows = Vec::new();
    let mut snapshot_bytes = 0;
    let mut ingested = 0;
    let mut last_full: Option<SynthesisResult> = None;
    for (i, batch) in corpus.chunks(chunk).enumerate() {
        if i == 2 {
            // Persistence mid-replay: the store must come back bit-equal.
            let snap = store.snapshot_json();
            snapshot_bytes = snap.len();
            store =
                pse_store::ProductStore::restore_json(&snap).expect("mid-replay snapshot restores");
        }
        let t = std::time::Instant::now();
        let stats = store.ingest(&world.catalog, batch, &provider);
        let ingest_ns = t.elapsed().as_nanos() as u64;
        ingested += batch.len();
        let t = std::time::Instant::now();
        let full = pipeline.process(&corpus[..ingested], &provider);
        let full_recompute_ns = t.elapsed().as_nanos() as u64;
        rows.push(IncrementalBatchRow {
            batch: i,
            offers: batch.len(),
            total_offers: ingested,
            clusters_dirty: stats.clusters_dirty,
            refused: stats.refused,
            clusters_total: store.cluster_count(),
            ingest_ns,
            full_recompute_ns,
        });
        last_full = Some(full);
    }
    let store_products = store.products();
    let equal = match &last_full {
        Some(full) => {
            serde_json::to_string(&store_products).ok()
                == serde_json::to_string(&full.products).ok()
        }
        None => true,
    };
    IncrementalRun { batches, rows, equal, products: store_products.len(), snapshot_bytes }
}

/// Render the incremental replay as a text table.
pub fn render_incremental(run: &IncrementalRun) -> String {
    let mut t = TextTable::new([
        "Batch",
        "Offers",
        "Total",
        "Dirty",
        "Refused",
        "Clusters",
        "Ingest (ms)",
        "Full recompute (ms)",
        "Speedup",
    ]);
    for r in &run.rows {
        t.row(vec![
            r.batch.to_string(),
            r.offers.to_string(),
            r.total_offers.to_string(),
            r.clusters_dirty.to_string(),
            r.refused.to_string(),
            r.clusters_total.to_string(),
            format!("{:.1}", r.ingest_ns as f64 / 1e6),
            format!("{:.1}", r.full_recompute_ns as f64 / 1e6),
            format!("{:.2}x", r.full_recompute_ns as f64 / r.ingest_ns.max(1) as f64),
        ]);
    }
    format!(
        "Incremental ingestion: dirty-cluster re-fusion vs full recompute\n{}\
         products: {} · batch-equivalent to one-shot process: {} · snapshot: {} bytes",
        t.render(),
        run.products,
        if run.equal { "yes" } else { "NO — MISMATCH" },
        run.snapshot_bytes,
    )
}

/// One churn batch of the durability bench: what the incremental
/// snapshot after the batch wrote vs reused.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotBenchRow {
    /// Batch index (0-based).
    pub batch: usize,
    /// Offers ingested in this batch.
    pub offers: usize,
    /// WAL bytes accumulated by the batch before the fold.
    pub wal_bytes: u64,
    /// Segments rewritten because their shard was dirty.
    pub segments_written: usize,
    /// Clean segments reused from the previous manifest.
    pub segments_skipped: usize,
    /// Bytes this snapshot wrote.
    pub bytes_written: u64,
}

/// Result of the durability experiment: churn through the WAL +
/// segmented-snapshot path, then race the two restore formats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurabilityRun {
    /// Shards (= segment files) in the durable store.
    pub shards: usize,
    /// Churn batches after the bulk load.
    pub batches: usize,
    /// Offers ingested in total.
    pub offers: usize,
    /// Products served at the end.
    pub products: usize,
    /// Per-batch incremental-snapshot measurements.
    pub rows: Vec<SnapshotBenchRow>,
    /// Size of the JSON snapshot oracle.
    pub json_snapshot_bytes: usize,
    /// Total bytes of the final committed segmented snapshot.
    pub segment_bytes: u64,
    /// Best-of-3 wall-clock of `ProductStore::restore_json`.
    pub json_restore_ns: u64,
    /// Best-of-3 wall-clock of `pse_wal::recover` (manifest + segments +
    /// empty WAL tail).
    pub segmented_restore_ns: u64,
    /// Whether the segmented restore beat the JSON restore.
    pub segmented_restore_faster: bool,
    /// Both restore paths reproduce the live store byte-identically.
    pub equal: bool,
}

/// Run the durability bench: bulk-load ¾ of the Table-2 corpus through
/// the durable write path (WAL append + fsync, then apply), fold it into
/// segments, churn the rest in `batches` batches with an incremental
/// snapshot after each, then time restoring the final state from the
/// JSON oracle vs from the segmented snapshot. Everything under `dir`,
/// which is wiped first.
pub fn run_snapshot_bench(
    world: &World,
    shards: usize,
    batches: usize,
    dir: &std::path::Path,
) -> DurabilityRun {
    use pse_serve::{
        durable_ingest, durable_retract, durable_snapshot, open_durable, ShardedStore,
    };

    let sc = crate::serve_corpus(world);
    let provider = crate::embedded_spec_provider();
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("snapshot-bench dir");
    let dcfg = pse_wal::DurabilityConfig {
        wal_path: dir.join("wal.log"),
        snapshot_dir: dir.join("segments"),
        // Folds are explicit in this bench; never auto-compact.
        compaction_threshold_bytes: u64::MAX,
        group: Default::default(),
    };
    let seed = ShardedStore::new(sc.correspondences.clone(), shards);
    let (store, ctx, _) =
        open_durable(dcfg.clone(), &world.catalog, seed).expect("open a fresh durable dir");

    let batches = batches.max(1);
    let (bulk, churn) = sc.corpus.split_at(sc.corpus.len() * 3 / 4);
    durable_ingest(&store, &ctx, &world.catalog, bulk, &provider).expect("bulk ingest");
    // A couple of retractions so the log carries both record kinds.
    let ids: Vec<pse_core::OfferId> = bulk.iter().take(2).map(|o| o.id).collect();
    durable_retract(&store, &ctx, &world.catalog, &ids).expect("bulk retract");
    durable_snapshot(&store, &ctx).expect("bulk fold");

    let chunk = churn.len().div_ceil(batches).max(1);
    let mut rows = Vec::new();
    for (i, batch) in churn.chunks(chunk).enumerate() {
        durable_ingest(&store, &ctx, &world.catalog, batch, &provider).expect("churn ingest");
        let wal_bytes =
            ctx.durability().lock().expect("durability lock").wal_len() - pse_wal::WAL_HEADER_LEN;
        let stats = durable_snapshot(&store, &ctx).expect("incremental fold");
        rows.push(SnapshotBenchRow {
            batch: i,
            offers: batch.len(),
            wal_bytes,
            segments_written: stats.segments_written,
            segments_skipped: stats.segments_skipped,
            bytes_written: stats.bytes_written,
        });
    }
    // A no-op fold reports the total bytes the committed manifest
    // references; then close the WAL before the restore race.
    let segment_bytes = durable_snapshot(&store, &ctx).expect("final fold").total_bytes;
    drop(ctx);

    let expected = store.snapshot_json();
    let json_path = dir.join("snapshot.json");
    pse_wal::atomic_write(&json_path, expected.as_bytes()).expect("write JSON oracle");

    let best_of = |f: &dyn Fn() -> (u64, String)| -> (u64, String) {
        (0..3).map(|_| f()).min_by_key(|(ns, _)| *ns).expect("three runs")
    };
    let (json_restore_ns, json_snapshot) = best_of(&|| {
        let t = std::time::Instant::now();
        let text = std::fs::read_to_string(&json_path).expect("read JSON oracle");
        let restored = pse_store::ProductStore::restore_json(&text).expect("JSON restores");
        let ns = t.elapsed().as_nanos() as u64;
        (ns, restored.snapshot_json())
    });
    let (segmented_restore_ns, segmented_snapshot) = best_of(&|| {
        let t = std::time::Instant::now();
        let (restored, _) = pse_wal::recover(&dcfg, &world.catalog, || {
            pse_store::ProductStore::new(sc.correspondences.clone())
        })
        .expect("recover succeeds")
        .expect("durable state exists");
        let ns = t.elapsed().as_nanos() as u64;
        (ns, restored.snapshot_json())
    });

    DurabilityRun {
        shards,
        batches,
        offers: sc.corpus.len(),
        products: store.products().len(),
        rows,
        json_snapshot_bytes: expected.len(),
        segment_bytes,
        json_restore_ns,
        segmented_restore_ns,
        segmented_restore_faster: segmented_restore_ns < json_restore_ns,
        equal: json_snapshot == expected && segmented_snapshot == expected,
    }
}

/// Render the durability bench as a text table plus the restore race.
pub fn render_snapshot_bench(run: &DurabilityRun) -> String {
    let mut t = TextTable::new([
        "Batch",
        "Offers",
        "WAL bytes",
        "Seg written",
        "Seg skipped",
        "Bytes written",
    ]);
    for r in &run.rows {
        t.row(vec![
            r.batch.to_string(),
            r.offers.to_string(),
            r.wal_bytes.to_string(),
            r.segments_written.to_string(),
            r.segments_skipped.to_string(),
            r.bytes_written.to_string(),
        ]);
    }
    format!(
        "Durability: incremental segmented snapshots + restore race ({} shards)\n{}\
         products: {} · restore from JSON ({} bytes): {:.2} ms · \
         from segments ({} bytes): {:.2} ms · speedup {:.2}x · \
         segmented faster: {} · byte-identical: {}",
        run.shards,
        t.render(),
        run.products,
        run.json_snapshot_bytes,
        run.json_restore_ns as f64 / 1e6,
        run.segment_bytes,
        run.segmented_restore_ns as f64 / 1e6,
        run.json_restore_ns as f64 / run.segmented_restore_ns.max(1) as f64,
        if run.segmented_restore_faster { "yes" } else { "NO" },
        if run.equal { "yes" } else { "NO — MISMATCH" },
    )
}

fn checkpoints_for(max_cov: usize) -> Vec<usize> {
    if max_cov == 0 {
        return Vec::new();
    }
    let candidates = [100, 250, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 30_000, 50_000];
    let mut out: Vec<usize> = candidates.iter().copied().filter(|c| *c <= max_cov).collect();
    if out.len() < 3 {
        out = vec![max_cov / 4, max_cov / 2, max_cov].into_iter().filter(|c| *c > 0).collect();
        out.dedup();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> World {
        World::generate(pse_datagen::WorldConfig::tiny())
    }

    #[test]
    fn end_to_end_driver_produces_tables() {
        let world = tiny_world();
        let e2e = run_end_to_end(&world);
        assert!(!e2e.synthesis.products.is_empty());
        let t2 = table2(&world, &e2e);
        assert!(t2.contains("Attribute Precision"));
        let t3 = table3(&world, &e2e);
        assert!(t3.contains("Computing"));
        let t4 = table4(&world, &e2e, 5);
        assert!(t4.contains("Attr recall"));
    }

    #[test]
    fn incremental_replay_is_batch_equivalent() {
        let world = tiny_world();
        let run = run_incremental(&world, 4);
        assert_eq!(run.rows.len(), 4);
        assert!(run.equal, "store diverged from one-shot process");
        assert!(run.products > 0);
        assert!(run.snapshot_bytes > 0, "mid-replay snapshot must have been taken");
        let total: usize = run.rows.iter().map(|r| r.offers).sum();
        assert_eq!(total, run.rows.last().unwrap().total_offers);
        // Steady state: later batches touch far fewer clusters than exist.
        let last = run.rows.last().unwrap();
        assert!(last.clusters_dirty <= last.clusters_total);
    }

    #[test]
    fn snapshot_bench_restores_are_byte_identical() {
        let world = tiny_world();
        let dir = std::env::temp_dir().join(format!("pse-bench-snapbench-{}", std::process::id()));
        let run = run_snapshot_bench(&world, 4, 3, &dir);
        assert_eq!(run.rows.len(), 3);
        assert!(run.equal, "restore paths diverged from the live store");
        assert!(run.products > 0);
        assert!(run.segment_bytes > 0);
        assert!(run.json_snapshot_bytes > 0);
        assert!(run.rows.iter().all(|r| r.wal_bytes > 0), "each batch logged records");
        let rendered = render_snapshot_bench(&run);
        assert!(rendered.contains("byte-identical: yes"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn computing_offers_filters_by_top_level() {
        let world = tiny_world();
        let offers = computing_offers(&world);
        assert!(!offers.is_empty());
        assert!(offers.len() < world.offers.len());
        let taxonomy = world.catalog.taxonomy();
        let computing = taxonomy.find_by_name("Computing").unwrap().id;
        for o in &offers {
            assert_eq!(taxonomy.top_level_of(o.category.unwrap()), computing);
        }
    }

    #[test]
    fn fig6_curves_are_labeled() {
        let world = tiny_world();
        let curves = fig6(&world);
        assert_eq!(curves.len(), 3);
        assert!(curves.iter().all(|c| c.evaluated > 0));
        let rendered = render_curves("Figure 6", &curves);
        assert!(rendered.contains("Our approach"));
        let csv = curves_csv(&curves);
        assert!(csv.starts_with("matcher,threshold,coverage,precision"));
    }

    #[test]
    fn checkpoints_cover_small_and_large() {
        assert!(checkpoints_for(0).is_empty());
        assert_eq!(checkpoints_for(40), vec![10, 20, 40]);
        assert!(checkpoints_for(100_000).contains(&10_000));
    }
}
