//! CI validator for `OBS_REPORT.json`.
//!
//! Checks run at the raw JSON level rather than through the typed
//! [`pse_obs::ObsReport`] deserializer, so a NaN duration serialized as
//! `null`/float or a negative value is rejected instead of being papered
//! over by a lenient numeric conversion:
//!
//! - `schema_version` matches, `enabled` is true, `threads` ≥ 1;
//! - spans cover every pipeline stage (`datagen.`, `extract.`, `offline.`,
//!   `runtime.`, `experiments.`);
//! - the stage counters the experiment drivers are expected to emit exist;
//! - every duration / count / sum / min / max is a non-negative integer;
//! - histogram bucket counts sum to the histogram count;
//! - at least one per-worker timeline with consistent chunk fields.
//!
//! Usage: `obs_check [path]` (default: workspace-root `OBS_REPORT.json`).

use std::process::ExitCode;

use serde::Value;

/// Every stage of the pipeline must appear in at least one span path.
/// Spans nest (`extract.page` ends up under `runtime.reconcile` when the
/// provider extracts inside a worker), so this is a substring match.
///
/// Exception: a run that recovered durable state (`wal.recover` span
/// present) and then received no live ingests legitimately never runs
/// the runtime pipeline — recovery replays already-reconciled batches —
/// so the `runtime.` stage (span and counters) is waived for it.
///
/// Second exception: the ingest-scale bench (`ingest_bench.*` spans)
/// streams offers straight into the runtime write path; the offline
/// phases (page rendering, extraction, candidate mining) never run, so
/// the `datagen.` / `extract.` / `offline.` stages and their counters
/// are waived for it — `runtime.` and `experiments.` coverage is still
/// required in full.
const STAGE_PREFIXES: [&str; 5] = ["datagen.", "extract.", "offline.", "runtime.", "experiments."];

/// Counters every experiments run is expected to emit.
const REQUIRED_COUNTERS: [&str; 9] = [
    "datagen.offers",
    "datagen.pages_rendered",
    "extract.pairs_extracted",
    "offline.candidates",
    "runtime.offers_in",
    "runtime.pairs_discarded_unmapped",
    "runtime.clusters_formed",
    "runtime.values_fused",
    "text.intern.symbols",
];

/// Counters a run that exercised the persistent store (any `store.*` span
/// present) must additionally emit.
const STORE_COUNTERS: [&str; 4] =
    ["store.ingest", "store.clusters_dirty", "store.refused", "store.snapshot"];

/// Counters a run that exercised the bootstrap title matcher (any
/// `match.bootstrap` span present) must additionally emit — the matcher
/// seeds them even when every offer matches by identifier.
const MATCH_COUNTERS: [&str; 2] = ["match.block.candidates", "match.block.skipped"];

/// Counters a run that exercised DUMAS (any `baselines.dumas` span present)
/// must additionally emit — seeded by the matcher even when no matrix cell
/// needs a Jaro–Winkler probe.
const SOFTTFIDF_COUNTERS: [&str; 2] = ["softtfidf.jw_memo_hit", "softtfidf.jw_memo_miss"];

/// Counters a run that exercised the HTTP serving layer (any `serve.*`
/// span present) must additionally emit — the server seeds them at start,
/// so even an all-200 run reports the full per-status set at zero and the
/// counter set never depends on which requests happened to arrive. The
/// `serve.cache.*` trio tracks the snapshot response cache: one hit or
/// miss per `GET /products/{category}`, and the categories whose cached
/// bodies each publish rebuilt.
const SERVE_COUNTERS: [&str; 15] = [
    "serve.requests",
    "serve.http_200",
    "serve.http_400",
    "serve.http_404",
    "serve.http_405",
    "serve.http_413",
    "serve.http_500",
    "serve.http_503",
    "serve.http_other",
    "serve.backpressure_503",
    "serve.io_error",
    "serve.accept_error",
    "serve.cache.hit",
    "serve.cache.miss",
    "serve.cache.invalidated",
];

/// Histograms a serving run must emit: whole-request latency and the
/// accept-queue depth sampled at every accepted connection.
const SERVE_HISTOGRAMS: [&str; 2] = ["serve.request_us", "serve.queue_depth"];

/// Counters a run that exercised the structured query engine (any
/// `query.*` span present — a search or an index build) must
/// additionally emit — `pse_query::seed_metrics` seeds the full set at
/// server start, so even a run whose searches all resolved exactly
/// reports the fuzzy and no-category counters at zero.
const QUERY_COUNTERS: [&str; 4] =
    ["query.requests", "query.resolved_exact", "query.resolved_fuzzy", "query.no_category"];

/// Histogram a query run must emit: candidate documents examined per
/// search, seeded alongside [`QUERY_COUNTERS`].
const QUERY_HISTOGRAM: &str = "query.candidates";

/// Counters a run that exercised the durability layer (any `wal.*` span
/// present — open, recover, append, or snapshot) must additionally emit;
/// both `recover` and `open` seed the full set.
const WAL_COUNTERS: [&str; 4] =
    ["wal.append", "wal.bytes", "snapshot.segments_written", "snapshot.segments_skipped"];

/// Histogram required when the WAL was opened for appending (span
/// `wal.open` present): open fsyncs at least once, so the fsync latency
/// histogram must exist. Recover-only runs (the `wal-replay` oracle)
/// never fsync and are exempt.
const WAL_FSYNC_HISTOGRAM: &str = "wal.fsync_us";

/// Group-commit distributions — commits covered per sync and per-commit
/// wait — seeded at zero by both `Durability::open` and `recover`, so
/// any run that touched the durability layer must report them even if
/// no grouped sync ever fired.
const WAL_GROUP_HISTOGRAMS: [&str; 2] = ["wal.group_size", "wal.group_wait_us"];

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| concat!(env!("CARGO_MANIFEST_DIR"), "/../../OBS_REPORT.json").into());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let value: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obs_check: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let errs = check(&value);
    if errs.is_empty() {
        println!("obs_check: {path} OK");
        ExitCode::SUCCESS
    } else {
        for e in &errs {
            eprintln!("obs_check: {e}");
        }
        eprintln!("obs_check: {path}: {} problem(s)", errs.len());
        ExitCode::FAILURE
    }
}

fn check(v: &Value) -> Vec<String> {
    let mut errs = Vec::new();
    match v.get("schema_version") {
        Some(&Value::U64(n)) if n == pse_obs::SCHEMA_VERSION as u64 => {}
        other => {
            errs.push(format!("schema_version must be {}, got {other:?}", pse_obs::SCHEMA_VERSION))
        }
    }
    if v.get("enabled") != Some(&Value::Bool(true)) {
        errs.push("enabled must be true (was the run missing --obs / PSE_OBS=1?)".into());
    }
    match v.get("threads") {
        Some(&Value::U64(n)) if n >= 1 => {}
        other => errs.push(format!("threads must be a positive integer, got {other:?}")),
    }
    if !matches!(v.get("git_commit"), Some(Value::Str(s)) if !s.is_empty()) {
        errs.push("git_commit must be a non-empty string".into());
    }

    let span_paths = check_spans(v, &mut errs);
    // A recovered server that received no live ingests replays
    // already-reconciled batches: the runtime pipeline never runs, and
    // demanding its spans/counters would reject every restart-after-crash
    // report (see STAGE_PREFIXES).
    let runtime_waived = span_paths.iter().any(|p| p.contains("wal.recover"))
        && !span_paths.iter().any(|p| p.contains("runtime."));
    // The ingest-scale bench never runs the offline phases (see
    // STAGE_PREFIXES): waive their stages and counters for its reports.
    let offline_waived = span_paths.iter().any(|p| p.contains("ingest_bench."));
    for prefix in STAGE_PREFIXES {
        if runtime_waived && prefix == "runtime." {
            continue;
        }
        if offline_waived && matches!(prefix, "datagen." | "extract." | "offline.") {
            continue;
        }
        if !span_paths.iter().any(|p| p.contains(prefix)) {
            errs.push(format!("no span covers stage {prefix}*"));
        }
    }
    let store_ran = span_paths.iter().any(|p| p.contains("store."));
    let match_ran = span_paths.iter().any(|p| p.contains("match.bootstrap"));
    let dumas_ran = span_paths.iter().any(|p| p.contains("baselines.dumas"));
    let serve_ran = span_paths.iter().any(|p| p.contains("serve."));
    let query_ran = span_paths.iter().any(|p| p.contains("query."));
    let wal_ran = span_paths.iter().any(|p| p.contains("wal."));
    let wal_opened = span_paths.iter().any(|p| p.contains("wal.open"));
    check_counters(
        v,
        store_ran,
        match_ran,
        dumas_ran,
        serve_ran,
        query_ran,
        wal_ran,
        runtime_waived,
        offline_waived,
        &mut errs,
    );
    check_histograms(v, &mut errs);
    check_serve_endpoints(v, serve_ran, &mut errs);
    check_query_histogram(v, query_ran, &mut errs);
    check_wal_histograms(v, wal_ran, wal_opened, &mut errs);
    check_timelines(v, &mut errs);
    errs
}

/// The group-commit histograms must exist whenever the durability layer
/// ran at all ([`WAL_GROUP_HISTOGRAMS`]); the fsync-latency histogram
/// additionally whenever the WAL was opened for appending
/// ([`WAL_FSYNC_HISTOGRAM`]).
/// The candidates histogram must exist whenever the query engine ran
/// ([`QUERY_HISTOGRAM`]) — seeded at start, so even a search-free run
/// that merely built an index reports it at zero.
fn check_query_histogram(v: &Value, query_ran: bool, errs: &mut Vec<String>) {
    if !query_ran {
        return;
    }
    let mut shape_errs = Vec::new();
    let histograms = array(v, "histograms", &mut shape_errs);
    if !histograms.iter().any(|h| str_field(h, "name") == QUERY_HISTOGRAM) {
        errs.push(format!("query spans present but histogram {QUERY_HISTOGRAM} missing"));
    }
}

fn check_wal_histograms(v: &Value, wal_ran: bool, wal_opened: bool, errs: &mut Vec<String>) {
    if !wal_ran {
        return;
    }
    let mut shape_errs = Vec::new();
    let histograms = array(v, "histograms", &mut shape_errs);
    for required in WAL_GROUP_HISTOGRAMS {
        if !histograms.iter().any(|h| str_field(h, "name") == required) {
            errs.push(format!("wal spans present but histogram {required} missing"));
        }
    }
    if wal_opened && !histograms.iter().any(|h| str_field(h, "name") == WAL_FSYNC_HISTOGRAM) {
        errs.push(format!("wal.open span present but histogram {WAL_FSYNC_HISTOGRAM} missing"));
    }
}

/// A named numeric field that must be a non-negative JSON integer — the
/// encoding a NaN (`null`/float) or negative duration cannot take.
fn require_u64(obj: &Value, key: &str, ctx: &str, errs: &mut Vec<String>) -> u64 {
    match obj.get(key) {
        Some(&Value::U64(n)) => n,
        other => {
            errs.push(format!("{ctx}: {key} must be a non-negative integer, got {other:?}"));
            0
        }
    }
}

fn str_field<'v>(obj: &'v Value, key: &str) -> &'v str {
    match obj.get(key) {
        Some(Value::Str(s)) => s,
        _ => "",
    }
}

fn array<'v>(v: &'v Value, key: &str, errs: &mut Vec<String>) -> &'v [Value] {
    match v.get(key) {
        Some(Value::Array(items)) => items,
        other => {
            errs.push(format!("{key} must be an array, got {other:?}"));
            &[]
        }
    }
}

fn check_spans(v: &Value, errs: &mut Vec<String>) -> Vec<String> {
    let mut paths = Vec::new();
    for s in array(v, "spans", errs) {
        let path = str_field(s, "path").to_string();
        let ctx = format!("span {path:?}");
        if path.is_empty() {
            errs.push(format!("{ctx}: path must be a non-empty string"));
        }
        let count = require_u64(s, "count", &ctx, errs);
        let total = require_u64(s, "total_ns", &ctx, errs);
        let min = require_u64(s, "min_ns", &ctx, errs);
        let max = require_u64(s, "max_ns", &ctx, errs);
        if count == 0 {
            errs.push(format!("{ctx}: count must be positive"));
        }
        if min > max || max > total {
            errs.push(format!("{ctx}: expected min <= max <= total, got {min}/{max}/{total}"));
        }
        paths.push(path);
    }
    if paths.is_empty() {
        errs.push("report has no spans".into());
    }
    paths
}

#[allow(clippy::too_many_arguments)]
fn check_counters(
    v: &Value,
    store_ran: bool,
    match_ran: bool,
    dumas_ran: bool,
    serve_ran: bool,
    query_ran: bool,
    wal_ran: bool,
    runtime_waived: bool,
    offline_waived: bool,
    errs: &mut Vec<String>,
) {
    let counters = array(v, "counters", errs).to_vec();
    let mut names = Vec::new();
    for c in &counters {
        let name = str_field(c, "name").to_string();
        require_u64(c, "value", &format!("counter {name:?}"), errs);
        names.push(name);
    }
    for required in REQUIRED_COUNTERS {
        if runtime_waived && required.starts_with("runtime.") {
            continue;
        }
        if offline_waived && !required.starts_with("runtime.") {
            continue;
        }
        if !names.iter().any(|n| n == required) {
            errs.push(format!("missing required counter {required}"));
        }
    }
    let conditional = [
        (store_ran, "store", &STORE_COUNTERS[..]),
        (match_ran, "match.bootstrap", &MATCH_COUNTERS[..]),
        (dumas_ran, "baselines.dumas", &SOFTTFIDF_COUNTERS[..]),
        (serve_ran, "serve", &SERVE_COUNTERS[..]),
        (query_ran, "query", &QUERY_COUNTERS[..]),
        (wal_ran, "wal", &WAL_COUNTERS[..]),
    ];
    for (ran, what, required_set) in conditional {
        if !ran {
            continue;
        }
        for required in required_set {
            if !names.iter().any(|n| n == required) {
                errs.push(format!("{what} spans present but counter {required} missing"));
            }
        }
    }
}

fn check_histograms(v: &Value, errs: &mut Vec<String>) {
    for h in array(v, "histograms", errs) {
        let ctx = format!("histogram {:?}", str_field(h, "name"));
        let count = require_u64(h, "count", &ctx, errs);
        let sum = require_u64(h, "sum", &ctx, errs);
        let min = require_u64(h, "min", &ctx, errs);
        let max = require_u64(h, "max", &ctx, errs);
        if min > max || (count > 0 && sum < max as u64) {
            errs.push(format!("{ctx}: inconsistent aggregates {count}/{sum}/{min}/{max}"));
        }
        let mut bucket_total = 0u64;
        match h.get("buckets") {
            Some(Value::Array(buckets)) => {
                for b in buckets {
                    require_u64(b, "le", &format!("{ctx} bucket"), errs);
                    bucket_total += require_u64(b, "count", &format!("{ctx} bucket"), errs);
                }
            }
            other => errs.push(format!("{ctx}: buckets must be an array, got {other:?}")),
        }
        if bucket_total != count {
            errs.push(format!("{ctx}: bucket counts sum to {bucket_total}, expected {count}"));
        }
    }
}

/// Per-endpoint RED consistency for serving runs. The server records,
/// for every request it handles, exactly one `serve.endpoint.<e>.us`
/// histogram observation and one `serve.endpoint.<e>.requests` increment,
/// paired with the global `serve.requests` increment — so in a quiesced
/// report each endpoint histogram count equals its request counter, every
/// endpoint carries an errors counter of at most its requests, and the
/// per-endpoint request counters sum exactly to `serve.requests`.
/// (Acceptor-level backpressure 503s touch neither side of the ledger.)
/// Also demands the serving histograms ([`SERVE_HISTOGRAMS`]) exist.
fn check_serve_endpoints(v: &Value, serve_ran: bool, errs: &mut Vec<String>) {
    if !serve_ran {
        return;
    }
    // Shape errors (non-array fields) are already reported by
    // check_counters/check_histograms; swallow them here.
    let mut shape_errs = Vec::new();
    let histograms = array(v, "histograms", &mut shape_errs).to_vec();
    let counters = array(v, "counters", &mut shape_errs).to_vec();
    let mut new_errs = Vec::new();
    let counter_value = |name: &str| -> Option<u64> {
        counters.iter().find(|c| str_field(c, "name") == name).and_then(|c| match c.get("value") {
            Some(&Value::U64(n)) => Some(n),
            _ => None,
        })
    };
    for required in SERVE_HISTOGRAMS {
        if !histograms.iter().any(|h| str_field(h, "name") == required) {
            new_errs.push(format!("serve spans present but histogram {required} missing"));
        }
    }
    let mut endpoint_requests_total = 0u64;
    for c in &counters {
        let name = str_field(c, "name");
        if name.starts_with("serve.endpoint.") && name.ends_with(".requests") {
            endpoint_requests_total += counter_value(name).unwrap_or(0);
        }
    }
    for h in &histograms {
        let name = str_field(h, "name").to_string();
        let Some(endpoint) =
            name.strip_prefix("serve.endpoint.").and_then(|r| r.strip_suffix(".us"))
        else {
            continue;
        };
        let ctx = format!("endpoint {endpoint}");
        let count = require_u64(h, "count", &ctx, &mut new_errs);
        let requests_name = format!("serve.endpoint.{endpoint}.requests");
        match counter_value(&requests_name) {
            Some(requests) if requests == count => {}
            Some(requests) => new_errs.push(format!(
                "{ctx}: histogram {name} count {count} != counter {requests_name} {requests}"
            )),
            None => new_errs.push(format!("{ctx}: counter {requests_name} missing")),
        }
        let errors_name = format!("serve.endpoint.{endpoint}.errors");
        match counter_value(&errors_name) {
            Some(errors) if errors <= count => {}
            Some(errors) => new_errs
                .push(format!("{ctx}: {errors_name} {errors} exceeds request count {count}")),
            None => new_errs.push(format!("{ctx}: counter {errors_name} missing")),
        }
    }
    if let Some(total) = counter_value("serve.requests") {
        if endpoint_requests_total != total {
            new_errs.push(format!(
                "serve.endpoint.*.requests sum to {endpoint_requests_total}, \
                 but serve.requests is {total}"
            ));
        }
    }
    errs.extend(new_errs);
}

fn check_timelines(v: &Value, errs: &mut Vec<String>) {
    let timelines = array(v, "timelines", errs).to_vec();
    if timelines.is_empty() {
        errs.push("report has no per-worker timelines".into());
    }
    for t in &timelines {
        let ctx = format!("timeline {:?}", str_field(t, "label"));
        let calls = require_u64(t, "calls", &ctx, errs);
        if calls == 0 {
            errs.push(format!("{ctx}: calls must be positive"));
        }
        match t.get("chunks") {
            Some(Value::Array(chunks)) if !chunks.is_empty() => {
                for c in chunks {
                    require_u64(c, "worker", &ctx, errs);
                    require_u64(c, "chunk", &ctx, errs);
                    require_u64(c, "items", &ctx, errs);
                    require_u64(c, "start_ns", &ctx, errs);
                    require_u64(c, "dur_ns", &ctx, errs);
                }
            }
            other => errs.push(format!("{ctx}: chunks must be a non-empty array, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn good_report() -> Value {
        let mut r = pse_obs::ObsReport {
            schema_version: pse_obs::SCHEMA_VERSION,
            enabled: true,
            git_commit: "deadbeef".into(),
            threads: 2,
            ..Default::default()
        };
        r.spans = STAGE_PREFIXES
            .iter()
            .map(|p| pse_obs::SpanSummary {
                path: format!("{p}stage"),
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            })
            .collect();
        r.counters = REQUIRED_COUNTERS
            .iter()
            .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 7 })
            .collect();
        r.timelines = vec![pse_obs::TimelineGroup {
            label: "runtime.reconcile".into(),
            calls: 1,
            chunks: vec![pse_obs::ChunkSummary {
                worker: 0,
                chunk: 0,
                items: 5,
                start_ns: 0,
                dur_ns: 3,
            }],
        }];
        serde_json::from_str(&r.to_json()).unwrap()
    }

    #[test]
    fn valid_report_passes() {
        assert_eq!(check(&good_report()), Vec::<String>::new());
    }

    #[test]
    fn missing_stage_and_counter_detected() {
        let mut v = good_report();
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k == "spans" || k == "counters" {
                    *val = Value::Array(Vec::new());
                }
            }
        }
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("no span covers stage runtime.")));
        assert!(errs.iter().any(|e| e.contains("missing required counter runtime.offers_in")));
    }

    #[test]
    fn offline_stages_waived_for_ingest_bench_reports() {
        // An ingest-bench report streams offers straight into the runtime
        // write path: no datagen/extract/offline spans or counters, and
        // obs_check must not demand them — runtime coverage still is.
        let mut r = pse_obs::ObsReport {
            schema_version: pse_obs::SCHEMA_VERSION,
            enabled: true,
            git_commit: "deadbeef".into(),
            threads: 2,
            ..Default::default()
        };
        r.spans = ["experiments.ingest_bench", "ingest_bench.grouped", "runtime.reconcile"]
            .iter()
            .map(|p| pse_obs::SpanSummary {
                path: p.to_string(),
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            })
            .collect();
        r.counters = REQUIRED_COUNTERS
            .iter()
            .filter(|n| n.starts_with("runtime."))
            .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 7 })
            .collect();
        r.timelines = vec![pse_obs::TimelineGroup {
            label: "runtime.reconcile".into(),
            calls: 1,
            chunks: vec![pse_obs::ChunkSummary {
                worker: 0,
                chunk: 0,
                items: 5,
                start_ns: 0,
                dur_ns: 3,
            }],
        }];
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());

        // Dropping the runtime counters must still be flagged: the waiver
        // covers only the offline phases.
        let mut r2 = v.clone();
        if let Value::Object(fields) = &mut r2 {
            for (k, val) in fields.iter_mut() {
                if k == "counters" {
                    *val = Value::Array(Vec::new());
                }
            }
        }
        let errs = check(&r2);
        assert!(errs.iter().any(|e| e.contains("missing required counter runtime.offers_in")));
        assert!(!errs.iter().any(|e| e.contains("datagen")));
    }

    #[test]
    fn store_counters_required_only_when_store_spans_present() {
        // Without store spans, store counters are not demanded.
        assert_eq!(check(&good_report()), Vec::<String>::new());
        // A store span without the counters is an error...
        let mut r = pse_obs::ObsReport {
            schema_version: pse_obs::SCHEMA_VERSION,
            enabled: true,
            git_commit: "deadbeef".into(),
            threads: 2,
            ..Default::default()
        };
        r.spans = STAGE_PREFIXES
            .iter()
            .map(|p| format!("{p}stage"))
            .chain(["experiments.incremental.store.ingest".to_string()])
            .map(|path| pse_obs::SpanSummary {
                path,
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            })
            .collect();
        r.counters = REQUIRED_COUNTERS
            .iter()
            .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 7 })
            .collect();
        r.timelines = vec![pse_obs::TimelineGroup {
            label: "runtime.reconcile".into(),
            calls: 1,
            chunks: vec![pse_obs::ChunkSummary {
                worker: 0,
                chunk: 0,
                items: 5,
                start_ns: 0,
                dur_ns: 3,
            }],
        }];
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("counter store.ingest missing")));
        assert!(errs.iter().any(|e| e.contains("counter store.snapshot missing")));
        // ...and adding them satisfies the check.
        r.counters.extend(
            STORE_COUNTERS.iter().map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 3 }),
        );
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());
    }

    #[test]
    fn matcher_and_dumas_counters_gated_on_their_spans() {
        // The baseline report (no matcher/dumas spans) demands neither set.
        assert_eq!(check(&good_report()), Vec::<String>::new());
        let with_span = |extra_span: &str| {
            let mut r = pse_obs::ObsReport {
                schema_version: pse_obs::SCHEMA_VERSION,
                enabled: true,
                git_commit: "deadbeef".into(),
                threads: 2,
                ..Default::default()
            };
            r.spans = STAGE_PREFIXES
                .iter()
                .map(|p| format!("{p}stage"))
                .chain([extra_span.to_string()])
                .map(|path| pse_obs::SpanSummary {
                    path,
                    count: 1,
                    total_ns: 10,
                    min_ns: 10,
                    max_ns: 10,
                })
                .collect();
            r.counters = REQUIRED_COUNTERS
                .iter()
                .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 7 })
                .collect();
            r.timelines = vec![pse_obs::TimelineGroup {
                label: "runtime.reconcile".into(),
                calls: 1,
                chunks: vec![pse_obs::ChunkSummary {
                    worker: 0,
                    chunk: 0,
                    items: 5,
                    start_ns: 0,
                    dur_ns: 3,
                }],
            }];
            r
        };

        // A bootstrap span without the blocking counters is an error, even
        // when the counters would be zero (the matcher seeds them).
        let mut r = with_span("runtime.ingest.match.bootstrap");
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("counter match.block.candidates missing")));
        assert!(errs.iter().any(|e| e.contains("counter match.block.skipped missing")));
        r.counters.extend(
            MATCH_COUNTERS.iter().map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 }),
        );
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());

        // Same for DUMAS and the Jaro–Winkler memo counters.
        let mut r = with_span("experiments.fig8.baselines.dumas");
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("counter softtfidf.jw_memo_hit missing")));
        r.counters.extend(
            SOFTTFIDF_COUNTERS
                .iter()
                .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 }),
        );
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());

        // And for the HTTP serving layer: a serve span without the seeded
        // request/backpressure counters (including the full per-status
        // set) or the serving histograms is an error.
        let mut r = with_span("serve.request");
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("counter serve.requests missing")));
        assert!(errs.iter().any(|e| e.contains("counter serve.backpressure_503 missing")));
        assert!(errs.iter().any(|e| e.contains("counter serve.http_405 missing")));
        assert!(errs.iter().any(|e| e.contains("counter serve.http_413 missing")));
        assert!(errs.iter().any(|e| e.contains("counter serve.http_other missing")));
        assert!(errs.iter().any(|e| e.contains("histogram serve.request_us missing")));
        assert!(errs.iter().any(|e| e.contains("histogram serve.queue_depth missing")));
        r.counters.extend(
            SERVE_COUNTERS.iter().map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 }),
        );
        r.histograms.extend(SERVE_HISTOGRAMS.iter().map(|n| pse_obs::HistogramSummary {
            name: n.to_string(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        }));
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());
    }

    #[test]
    fn query_counters_and_candidates_histogram_gated_on_query_spans() {
        // The baseline report (no query spans) demands neither.
        assert_eq!(check(&good_report()), Vec::<String>::new());
        // A query span without the seeded counter set or the candidates
        // histogram is an error — seed_metrics makes them all exist even
        // when every search resolved exactly.
        let mut r = pse_obs::ObsReport {
            schema_version: pse_obs::SCHEMA_VERSION,
            enabled: true,
            git_commit: "deadbeef".into(),
            threads: 2,
            ..Default::default()
        };
        r.spans = STAGE_PREFIXES
            .iter()
            .map(|p| format!("{p}stage"))
            .chain(["experiments.search_bench.query.search".to_string()])
            .map(|path| pse_obs::SpanSummary {
                path,
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            })
            .collect();
        r.counters = REQUIRED_COUNTERS
            .iter()
            .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 7 })
            .collect();
        r.timelines = vec![pse_obs::TimelineGroup {
            label: "runtime.reconcile".into(),
            calls: 1,
            chunks: vec![pse_obs::ChunkSummary {
                worker: 0,
                chunk: 0,
                items: 5,
                start_ns: 0,
                dur_ns: 3,
            }],
        }];
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("counter query.requests missing")));
        assert!(errs.iter().any(|e| e.contains("counter query.resolved_exact missing")));
        assert!(errs.iter().any(|e| e.contains("counter query.resolved_fuzzy missing")));
        assert!(errs.iter().any(|e| e.contains("counter query.no_category missing")));
        assert!(errs.iter().any(|e| e.contains("histogram query.candidates missing")));
        r.counters.extend(
            QUERY_COUNTERS.iter().map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 }),
        );
        r.histograms.push(pse_obs::HistogramSummary {
            name: QUERY_HISTOGRAM.into(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        });
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());
    }

    #[test]
    fn wal_counters_and_fsync_histogram_gated_on_wal_spans() {
        let with_span = |extra_span: &str| {
            let mut r = pse_obs::ObsReport {
                schema_version: pse_obs::SCHEMA_VERSION,
                enabled: true,
                git_commit: "deadbeef".into(),
                threads: 2,
                ..Default::default()
            };
            r.spans = STAGE_PREFIXES
                .iter()
                .map(|p| format!("{p}stage"))
                .chain([extra_span.to_string()])
                .map(|path| pse_obs::SpanSummary {
                    path,
                    count: 1,
                    total_ns: 10,
                    min_ns: 10,
                    max_ns: 10,
                })
                .collect();
            r.counters = REQUIRED_COUNTERS
                .iter()
                .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 7 })
                .collect();
            r.timelines = vec![pse_obs::TimelineGroup {
                label: "runtime.reconcile".into(),
                calls: 1,
                chunks: vec![pse_obs::ChunkSummary {
                    worker: 0,
                    chunk: 0,
                    items: 5,
                    start_ns: 0,
                    dur_ns: 3,
                }],
            }];
            r
        };

        let zero_histogram = |n: &&str| pse_obs::HistogramSummary {
            name: n.to_string(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        };

        // A recover-only run: WAL counters and the group-commit
        // histograms demanded (recover seeds both), fsync histogram not
        // (recovery is read-only and never fsyncs).
        let mut r = with_span("experiments.drill.wal.recover");
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("counter wal.append missing")));
        assert!(errs.iter().any(|e| e.contains("counter snapshot.segments_written missing")));
        assert!(errs.iter().any(|e| e.contains("histogram wal.group_size missing")));
        assert!(errs.iter().any(|e| e.contains("histogram wal.group_wait_us missing")));
        assert!(!errs.iter().any(|e| e.contains("wal.fsync_us")), "recover-only run is exempt");
        r.counters.extend(
            WAL_COUNTERS.iter().map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 }),
        );
        r.histograms.extend(WAL_GROUP_HISTOGRAMS.iter().map(zero_histogram));
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());

        // A run that opened the WAL for appending must also report fsync
        // latency (open fsyncs at least once).
        let mut r = with_span("wal.open");
        r.counters.extend(
            WAL_COUNTERS.iter().map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 }),
        );
        r.histograms.extend(WAL_GROUP_HISTOGRAMS.iter().map(zero_histogram));
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("histogram wal.fsync_us missing")));
        r.histograms.push(pse_obs::HistogramSummary {
            name: "wal.fsync_us".into(),
            count: 1,
            sum: 40,
            min: 40,
            max: 40,
            buckets: vec![pse_obs::BucketEntry { le: 64, count: 1 }],
        });
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());
    }

    #[test]
    fn runtime_stage_waived_for_recovered_runs_without_live_ingests() {
        // A restart-after-crash report: datagen/extract/offline/experiments
        // spans present (the driver still builds the world and learns
        // correspondences), wal.recover present, but no runtime.* spans or
        // counters — recovery replayed already-reconciled batches.
        let mut r = pse_obs::ObsReport {
            schema_version: pse_obs::SCHEMA_VERSION,
            enabled: true,
            git_commit: "deadbeef".into(),
            threads: 2,
            ..Default::default()
        };
        r.spans = STAGE_PREFIXES
            .iter()
            .filter(|p| **p != "runtime.")
            .map(|p| format!("{p}stage"))
            .chain(["experiments.restart.wal.recover".to_string()])
            .map(|path| pse_obs::SpanSummary {
                path,
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            })
            .collect();
        r.counters = REQUIRED_COUNTERS
            .iter()
            .filter(|n| !n.starts_with("runtime."))
            .chain(WAL_COUNTERS.iter())
            .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 })
            .collect();
        r.histograms = WAL_GROUP_HISTOGRAMS
            .iter()
            .map(|n| pse_obs::HistogramSummary {
                name: n.to_string(),
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: Vec::new(),
            })
            .collect();
        r.timelines = vec![pse_obs::TimelineGroup {
            label: "offline.candidates".into(),
            calls: 1,
            chunks: vec![pse_obs::ChunkSummary {
                worker: 0,
                chunk: 0,
                items: 5,
                start_ns: 0,
                dur_ns: 3,
            }],
        }];
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());

        // Without the wal.recover span the same report is rejected: a
        // non-recovered run must exercise the runtime pipeline.
        let mut no_recover = r.clone();
        no_recover.spans.retain(|s| !s.path.contains("wal.recover"));
        let v: Value = serde_json::from_str(&no_recover.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("no span covers stage runtime.")));
        assert!(errs.iter().any(|e| e.contains("missing required counter runtime.offers_in")));

        // A recovered run that also handled live ingests (runtime spans
        // present) gets no waiver — the counters are demanded again.
        let mut live = r.clone();
        live.spans.push(pse_obs::SpanSummary {
            path: "runtime.reconcile".into(),
            count: 1,
            total_ns: 10,
            min_ns: 10,
            max_ns: 10,
        });
        let v: Value = serde_json::from_str(&live.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("missing required counter runtime.offers_in")));
    }

    #[test]
    fn serve_endpoint_red_consistency_enforced() {
        // Start from a passing serving report...
        let mut r = pse_obs::ObsReport {
            schema_version: pse_obs::SCHEMA_VERSION,
            enabled: true,
            git_commit: "deadbeef".into(),
            threads: 2,
            ..Default::default()
        };
        r.spans = STAGE_PREFIXES
            .iter()
            .map(|p| format!("{p}stage"))
            .chain(["serve.request".to_string()])
            .map(|path| pse_obs::SpanSummary {
                path,
                count: 1,
                total_ns: 10,
                min_ns: 10,
                max_ns: 10,
            })
            .collect();
        r.counters = REQUIRED_COUNTERS
            .iter()
            .chain(SERVE_COUNTERS.iter())
            .map(|n| pse_obs::CounterEntry { name: n.to_string(), value: 0 })
            .collect();
        r.histograms = SERVE_HISTOGRAMS
            .iter()
            .map(|n| pse_obs::HistogramSummary {
                name: n.to_string(),
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                buckets: Vec::new(),
            })
            .collect();
        r.timelines = vec![pse_obs::TimelineGroup {
            label: "runtime.reconcile".into(),
            calls: 1,
            chunks: vec![pse_obs::ChunkSummary {
                worker: 0,
                chunk: 0,
                items: 5,
                start_ns: 0,
                dur_ns: 3,
            }],
        }];
        // ...with one consistent endpoint: 3 requests, 3 observations.
        r.counters.iter_mut().find(|c| c.name == "serve.requests").unwrap().value = 3;
        r.counters.push(pse_obs::CounterEntry {
            name: "serve.endpoint.products.requests".into(),
            value: 3,
        });
        r.counters.push(pse_obs::CounterEntry {
            name: "serve.endpoint.products.errors".into(),
            value: 0,
        });
        r.histograms.push(pse_obs::HistogramSummary {
            name: "serve.endpoint.products.us".into(),
            count: 3,
            sum: 30,
            min: 5,
            max: 15,
            buckets: vec![pse_obs::BucketEntry { le: 16, count: 3 }],
        });
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(check(&v), Vec::<String>::new());

        // A histogram count that disagrees with the request counter fails.
        let mut broken = r.clone();
        broken.histograms.last_mut().unwrap().count = 2;
        broken.histograms.last_mut().unwrap().buckets[0].count = 2;
        let v: Value = serde_json::from_str(&broken.to_json()).unwrap();
        assert!(check(&v).iter().any(|e| e.contains("count 2 != counter")));

        // Endpoint counters that do not sum to serve.requests fail.
        let mut broken = r.clone();
        broken.counters.iter_mut().find(|c| c.name == "serve.requests").unwrap().value = 5;
        let v: Value = serde_json::from_str(&broken.to_json()).unwrap();
        assert!(check(&v)
            .iter()
            .any(|e| e.contains("serve.endpoint.*.requests sum to 3, but serve.requests is 5")));

        // A missing errors counter fails.
        let mut broken = r.clone();
        broken.counters.retain(|c| c.name != "serve.endpoint.products.errors");
        let v: Value = serde_json::from_str(&broken.to_json()).unwrap();
        assert!(check(&v)
            .iter()
            .any(|e| e.contains("counter serve.endpoint.products.errors missing")));
    }

    #[test]
    fn nan_and_negative_durations_rejected() {
        let mut v = good_report();
        if let Value::Object(fields) = &mut v {
            for (k, val) in fields.iter_mut() {
                if k != "spans" {
                    continue;
                }
                let Value::Array(spans) = val else { unreachable!() };
                let Value::Object(span) = &mut spans[0] else { unreachable!() };
                for (sk, sv) in span.iter_mut() {
                    match sk.as_str() {
                        "total_ns" => *sv = Value::Null, // NaN serializes as null
                        "min_ns" => *sv = Value::I64(-4),
                        "max_ns" => *sv = Value::F64(1.5),
                        _ => {}
                    }
                }
            }
        }
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("total_ns must be a non-negative integer")));
        assert!(errs.iter().any(|e| e.contains("min_ns must be a non-negative integer")));
        assert!(errs.iter().any(|e| e.contains("max_ns must be a non-negative integer")));
    }

    #[test]
    fn bucket_sum_mismatch_rejected() {
        let r = pse_obs::ObsReport {
            histograms: vec![pse_obs::HistogramSummary {
                name: "h".into(),
                count: 2, // lies: the buckets hold only one sample
                sum: 3,
                min: 3,
                max: 3,
                buckets: vec![pse_obs::BucketEntry { le: 4, count: 1 }],
            }],
            ..Default::default()
        };
        let v: Value = serde_json::from_str(&r.to_json()).unwrap();
        let errs = check(&v);
        assert!(errs.iter().any(|e| e.contains("bucket counts sum to 1, expected 2")));
    }
}
