//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments <subcommand> [--offers N] [--merchants N] [--seed S]
//!             [--leaves a,b,c,d] [--products-per-category N]
//!             [--match-error-rate R] [--smoke] [--out DIR]
//!             [--quiet] [--obs] [--batches N] [--verify-blocking]
//!             [--read-heavy]
//!
//! Subcommands:
//!   table2    end-to-end quality (Table 2)
//!   table3    per-top-level-category breakdown (Table 3)
//!   table4    precision/recall by offer-set size (Table 4)
//!   incremental  replay the Table-2 corpus through the persistent store
//!                in --batches batches (default 4); per-batch latency is
//!                merged into BENCH_par.json under "incremental"
//!   serve     ingest half the Table-2 corpus into a sharded store
//!             (--shards, default 4), serve it over HTTP on --addr
//!             (default 127.0.0.1:0), write the bound address to
//!             --port-file plus driving materials (serve_batch.json,
//!             serve_queries.txt) under --out, and block until a client
//!             POSTs /shutdown — the CI serving smoke. With --wal-dir DIR
//!             the server runs durably (WAL at DIR/wal.log, segments at
//!             DIR/segments, compaction threshold --compact-bytes,
//!             default 8 MiB); when DIR already holds durable state the
//!             pre-ingest is skipped and the served state is whatever
//!             recovery rebuilt — the restart leg of the crash drill
//!   wal-replay   read-only recovery oracle over --wal-dir: rebuild the
//!                store from manifest + segments + WAL tail without
//!                touching the directory, then write snapshot.json,
//!                categories.txt, and per-category cat_<id>.json under
//!                --out/drill_expected for the crash drill to compare
//!                against the restarted server's responses
//!   snapshot-bench  durability bench: churn the Table-2 corpus through
//!                   the WAL + incremental segmented snapshots, then race
//!                   restoring the final state from the JSON oracle vs
//!                   from segments; merged into BENCH_par.json under
//!                   "durability"
//!   ingest-bench  paper-scale ingest: stream --offers N (millions are
//!                 fine — the generator is constant-memory) through the
//!                 durable write path, group commit (--group-size,
//!                 --group-wait-us, --workers writer threads, --batch-size
//!                 offers per commit) vs the per-batch-fsync baseline
//!                 (--baseline-offers cap); optional --scenario
//!                 flash-sale|merchant-churn|retraction-waves|mixed
//!                 reshapes the load; ends with a recovery drill over the
//!                 unfolded WAL tail; sustained offers/sec, p99 commit
//!                 latency, and peak RSS merge into BENCH_par.json under
//!                 "ingest_scale"
//!   serve-bench  closed-loop load generator: --workers K client threads
//!                (default 4) issue --requests N point lookups (default
//!                2000) against servers at 1/2/4/8 shards (--shards
//!                a,b,c); p50/p99 latency and throughput are merged into
//!                BENCH_par.json under "serve". With --read-heavy the mix
//!                becomes 99% GET /products/{category} (served from the
//!                snapshot response cache) and 1% churn writes; results
//!                are merged under "serve_readheavy". With --obs-overhead
//!                the point-lookup mix runs twice — observability off,
//!                then on (tracing + RED metrics + flight recorder) — at
//!                the first --shards count, and the comparison is merged
//!                under "serve_obs_overhead" with a documented ≤10% p50
//!                budget
//!   search-bench  search quality + latency: replay ground-truth
//!                 free-text queries against GET /search at 1/2/4/8
//!                 shards (--shards a,b,c; --workers, --requests as
//!                 serve-bench), byte-compare every body across shard
//!                 counts, score precision@1 / recall@10 against the
//!                 oracle (floors 0.80 / 0.70 — the run FAILS below
//!                 them), and merge into BENCH_par.json under "search"
//!   fig6      classifier vs single-feature baselines (Figure 6)
//!   fig7      with vs without historical matches (Figure 7)
//!   fig8      vs DUMAS / Naive Bayes / COMA++ (Figure 8)
//!   fig9      COMA++ delta ablation (Figure 9)
//!   ablation           extraction-noise ablation (beyond the paper)
//!   ablation-features  feature-grouping ablation (drop MC / C / M)
//!   ablation-fusion    value-fusion strategy ablation
//!   ablation-keys      clustering-key ablation (MPN / UPC / both)
//!   ablation-history   historical-match noise sweep
//!   extension-names    paper future work: name-similarity features
//!   all                tables + figures, sharing one world build
//!   all-ablations      every ablation + the extension
//! ```
//!
//! Text renderings go to stdout; CSV series are written under `--out`
//! (default `results/`). `--quiet` silences stderr progress chatter and the
//! stage summary; `--obs` (or `PSE_OBS=1`) turns on observability and
//! writes `OBS_REPORT.json` at the workspace root on exit.
//! `--verify-blocking` (with `fig8`) additionally audits the title
//! matcher's inverted-index candidate blocking against the exhaustive scan
//! over every world offer and fails the run on any disagreement.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pse_bench::{
    ablation_extraction, ablation_features, ablation_fusion, ablation_history_noise, ablation_keys,
    ablation_measures, build_world, curves_csv, embedded_spec_provider, extension_name_features,
    fig6, fig7, fig8, fig9, query_paths, render_curves, render_incremental, render_obs_overhead,
    render_search_bench, render_serve_bench, render_snapshot_bench, run_end_to_end,
    run_incremental, run_search_bench, run_serve_bench, run_serve_bench_obs_overhead,
    run_serve_bench_read_heavy, run_snapshot_bench, serve_corpus, table2, table3, table4,
    verify_blocking, EndToEnd, Scale,
};
use pse_datagen::World;
use pse_eval::correspondence::LabeledCurve;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("usage: experiments <table2|table3|table4|fig6|fig7|fig8|fig9|incremental|serve|serve-bench|search-bench|wal-replay|snapshot-bench|ingest-bench|ablation|ablation-features|ablation-fusion|ablation-keys|ablation-history|all|all-ablations> [flags]");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let quiet = rest.iter().any(|a| a == "--quiet");
    let audit_blocking = rest.iter().any(|a| a == "--verify-blocking");
    if rest.iter().any(|a| a == "--obs") {
        pse_obs::set_enabled(true);
    }
    let scale = match Scale::from_args(rest) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let out_dir = out_dir(rest);
    let batches = batches(rest);

    // ingest-bench streams its offers from a WorldBase and only needs a
    // small materialized world internally — branch before the eager
    // full-scale build above would materialize a million offers.
    if cmd == "ingest-bench" {
        let ok = run_ingest_bench_cmd(&scale, &out_dir, quiet, rest);
        write_obs_report(quiet);
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if !quiet {
        eprintln!(
            "# world: {} offers, {} merchants, {} leaf categories (seed {})",
            scale.offers,
            scale.merchants,
            scale.total_leaves(),
            scale.seed
        );
    }
    let t0 = std::time::Instant::now();
    let world = {
        let _obs = pse_obs::span("experiments.build_world");
        build_world(&scale)
    };
    if !quiet {
        eprintln!("# world built in {:.1?}; {} products", t0.elapsed(), world.catalog.len());
    }

    let run = |name: &str, world: &World| -> bool {
        let t = std::time::Instant::now();
        let _obs = pse_obs::span(&format!("experiments.{name}"));
        let mut ok = dispatch(name, world, &out_dir, quiet, batches, rest);
        if ok && name == "fig8" && audit_blocking {
            ok = run_blocking_audit(world);
        }
        if !quiet {
            eprintln!("# {name} finished in {:.1?}", t.elapsed());
        }
        ok
    };

    let ok = match cmd.as_str() {
        "all" => ["table2", "table3", "table4", "fig6", "fig7", "fig8", "fig9", "ablation"]
            .iter()
            .all(|c| run(c, &world)),
        "all-ablations" => {
            [
                "ablation",
                "ablation-features",
                "ablation-fusion",
                "ablation-keys",
                "ablation-measures",
                "extension-names",
            ]
            .iter()
            .all(|c| run(c, &world))
                && {
                    let t = std::time::Instant::now();
                    let _obs = pse_obs::span("experiments.ablation-history");
                    println!("{}", ablation_history_noise(&scale));
                    if !quiet {
                        eprintln!("# ablation-history finished in {:.1?}", t.elapsed());
                    }
                    true
                }
        }
        "ablation-history" => {
            let _obs = pse_obs::span("experiments.ablation-history");
            println!("{}", ablation_history_noise(&scale));
            true
        }
        name => run(name, &world),
    };
    write_obs_report(quiet);
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `experiments ingest-bench`: the paper-scale durable-ingest bench —
/// an OfferStream (constant-memory datagen) through the group-commit
/// write path vs the per-batch-fsync baseline, plus a recovery drill.
/// Results merge into BENCH_par.json under "ingest_scale".
fn run_ingest_bench_cmd(
    scale: &pse_bench::Scale,
    out_dir: &Path,
    quiet: bool,
    args: &[String],
) -> bool {
    let defaults = pse_bench::IngestBenchOpts::default();
    let opts = pse_bench::IngestBenchOpts {
        batch_size: flag_value(args, "--batch-size").unwrap_or(defaults.batch_size),
        writers: flag_value(args, "--workers").unwrap_or(defaults.writers),
        baseline_offers: flag_value(args, "--baseline-offers").unwrap_or(defaults.baseline_offers),
        group_size: flag_value(args, "--group-size").unwrap_or(defaults.group_size),
        group_wait_us: flag_value(args, "--group-wait-us").unwrap_or(defaults.group_wait_us),
        scenario: string_flag(args, "--scenario").unwrap_or(defaults.scenario),
        shards: flag_value(args, "--shards").unwrap_or(defaults.shards),
        compact_bytes: flag_value(args, "--compact-bytes").unwrap_or(defaults.compact_bytes),
    };
    if pse_datagen::Scenario::parse(&opts.scenario).is_none() {
        eprintln!(
            "error: unknown scenario {:?} (want steady, flash-sale, merchant-churn, \
             retraction-waves, or mixed)",
            opts.scenario
        );
        return false;
    }
    let t = std::time::Instant::now();
    let run = pse_bench::run_ingest_bench(scale, &opts, &out_dir.join("ingest_bench"));
    println!("{}", pse_bench::render_ingest_bench(&run));
    merge_into_bench_json("ingest_scale", &run, quiet);
    if !quiet {
        eprintln!("# ingest-bench finished in {:.1?}", t.elapsed());
    }
    if !run.recovery_equal {
        eprintln!("error: recovered state diverged from the live store");
    }
    if !run.group_commit_faster {
        // Timing on a noisy 1-CPU smoke host; flag loudly, fail soft.
        eprintln!(
            "warning: group commit ({:.0} offers/s) did not beat the per-batch-fsync \
             baseline ({:.0} offers/s)",
            run.grouped.offers_per_sec, run.baseline.offers_per_sec
        );
    }
    run.recovery_equal
}

/// `--verify-blocking`: compare the title matcher's blocked and naive
/// paths over every world offer; any disagreement fails the run.
fn run_blocking_audit(world: &World) -> bool {
    let _obs = pse_obs::span("experiments.verify-blocking");
    let audit = verify_blocking(world);
    println!(
        "Blocking audit: {} offers, {} matched, {} mismatches between blocked and naive paths",
        audit.offers, audit.matched, audit.mismatches
    );
    if audit.mismatches > 0 {
        eprintln!(
            "error: inverted-index blocking diverged from the exhaustive scan on {} offers",
            audit.mismatches
        );
    }
    audit.mismatches == 0
}

/// When observability is on, stamp provenance into the report, write
/// `OBS_REPORT.json` at the workspace root, and print the stage summary.
fn write_obs_report(quiet: bool) {
    if !pse_obs::enabled() {
        return;
    }
    let mut report = pse_obs::report();
    report.git_commit = pse_bench::git_commit();
    report.threads = pse_par::current_threads() as u64;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../OBS_REPORT.json");
    match std::fs::write(path, report.to_json()) {
        Ok(()) => {
            if !quiet {
                eprintln!("# observability report written to {path}");
            }
        }
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
    if !quiet {
        println!("{}", report.render_summary());
    }
}

/// End-to-end results are shared across table2/3/4 within one process run.
fn e2e_cached(world: &World) -> &'static EndToEnd {
    use std::sync::OnceLock;
    static CACHE: OnceLock<EndToEnd> = OnceLock::new();
    CACHE.get_or_init(|| run_end_to_end(world))
}

fn dispatch(
    cmd: &str,
    world: &World,
    out_dir: &PathBuf,
    quiet: bool,
    batches: usize,
    args: &[String],
) -> bool {
    match cmd {
        "incremental" => {
            let run = run_incremental(world, batches);
            println!("{}", render_incremental(&run));
            merge_into_bench_json("incremental", &run, quiet);
            if !run.equal {
                eprintln!("error: incremental store diverged from one-shot process");
            }
            run.equal
        }
        "serve" => run_serve(world, out_dir, quiet, args),
        "wal-replay" => run_wal_replay(world, out_dir, quiet, args),
        "snapshot-bench" => {
            let shards = flag_value(args, "--shards").unwrap_or(4);
            let dir = out_dir.join("snapshot_bench");
            let run = run_snapshot_bench(world, shards, batches, &dir);
            println!("{}", render_snapshot_bench(&run));
            merge_into_bench_json("durability", &run, quiet);
            if !run.equal {
                eprintln!("error: restore paths diverged from the live store");
            }
            if !run.segmented_restore_faster {
                // Timing on a noisy 1-CPU smoke host; flag loudly, fail soft.
                eprintln!(
                    "warning: segmented restore ({} ns) did not beat JSON restore ({} ns)",
                    run.segmented_restore_ns, run.json_restore_ns
                );
            }
            run.equal
        }
        "search-bench" => {
            let workers = flag_value(args, "--workers").unwrap_or(4);
            let requests = flag_value(args, "--requests").unwrap_or(2000);
            let shard_counts = shard_list(args).unwrap_or_else(|| vec![1, 2, 4, 8]);
            let run = run_search_bench(world, workers, requests, &shard_counts);
            println!("{}", render_search_bench(&run));
            merge_into_bench_json("search", &run, quiet);
            if !run.shard_counts_agree {
                eprintln!("error: /search bodies diverged across shard counts");
            }
            if !run.thresholds_met {
                eprintln!(
                    "error: search quality below floor: precision@1 {:.3} (floor {:.2}), recall@10 {:.3} (floor {:.2})",
                    run.precision_at_1,
                    run.precision_at_1_min,
                    run.recall_at_10,
                    run.recall_at_10_min
                );
            }
            run.shard_counts_agree && run.thresholds_met
        }
        "serve-bench" => {
            let workers = flag_value(args, "--workers").unwrap_or(4);
            let requests = flag_value(args, "--requests").unwrap_or(2000);
            let shard_counts = shard_list(args).unwrap_or_else(|| vec![1, 2, 4, 8]);
            let read_heavy = args.iter().any(|a| a == "--read-heavy");
            if args.iter().any(|a| a == "--obs-overhead") {
                let shards = shard_counts[0];
                let run = run_serve_bench_obs_overhead(world, workers, requests, shards);
                println!("{}", render_obs_overhead(&run));
                merge_into_bench_json("serve_obs_overhead", &run, quiet);
                if !run.within_budget {
                    // The 1-CPU smoke host is noisy; flag loudly, fail soft.
                    eprintln!(
                        "warning: obs p50 overhead {:+.1}% exceeds the {:.0}% budget",
                        run.p50_overhead_pct, run.budget_pct
                    );
                }
                return true;
            }
            let (run, key) = if read_heavy {
                let run = run_serve_bench_read_heavy(world, workers, requests, &shard_counts);
                (run, "serve_readheavy")
            } else {
                (run_serve_bench(world, workers, requests, &shard_counts), "serve")
            };
            println!("{}", render_serve_bench(&run));
            merge_into_bench_json(key, &run, quiet);
            true
        }
        "table2" => {
            println!("{}", table2(world, e2e_cached(world)));
            true
        }
        "table3" => {
            println!("{}", table3(world, e2e_cached(world)));
            true
        }
        "table4" => {
            println!("{}", table4(world, e2e_cached(world), 10));
            true
        }
        "fig6" => figure(
            quiet,
            out_dir,
            "fig6",
            "Figure 6: classifier vs single-feature baselines (all categories)",
            fig6(world),
        ),
        "fig7" => figure(
            quiet,
            out_dir,
            "fig7",
            "Figure 7: with vs without historical instance matches (Computing)",
            fig7(world),
        ),
        "fig8" => figure(
            quiet,
            out_dir,
            "fig8",
            "Figure 8: comparison with existing schema matchers (Computing)",
            fig8(world),
        ),
        "fig9" => figure(
            quiet,
            out_dir,
            "fig9",
            "Figure 9: COMA++ delta configurations (Computing)",
            fig9(world),
        ),
        "ablation" => figure(
            quiet,
            out_dir,
            "ablation_extraction",
            "Ablation: HTML extraction noise vs oracle specifications",
            ablation_extraction(world),
        ),
        "ablation-features" => figure(
            quiet,
            out_dir,
            "ablation_features",
            "Ablation: feature groupings (Computing)",
            ablation_features(world),
        ),
        "ablation-fusion" => {
            println!("{}", ablation_fusion(world));
            true
        }
        "ablation-keys" => {
            println!("{}", ablation_keys(world));
            true
        }
        "ablation-measures" => figure(
            quiet,
            out_dir,
            "ablation_measures",
            "Ablation: distributional-measure choice, Lee '99 (Computing)",
            ablation_measures(world),
        ),
        "extension-names" => figure(
            quiet,
            out_dir,
            "extension_names",
            "Extension (paper future work): instance vs instance+name features (Computing)",
            extension_name_features(world),
        ),
        other => {
            eprintln!("unknown subcommand {other}");
            false
        }
    }
}

fn figure(
    quiet: bool,
    out_dir: &PathBuf,
    stem: &str,
    title: &str,
    curves: Vec<LabeledCurve>,
) -> bool {
    println!("{}", render_curves(title, &curves));
    let path = out_dir.join(format!("{stem}.csv"));
    if let Err(e) =
        std::fs::create_dir_all(out_dir).and_then(|_| std::fs::write(&path, curves_csv(&curves)))
    {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else if !quiet {
        eprintln!("# series written to {}", path.display());
    }
    true
}

/// The CI serving smoke: pre-ingest half the corpus into a sharded store,
/// serve it, write the bound address and driving materials for the client
/// side, and block until a client POSTs /shutdown.
fn run_serve(world: &World, out_dir: &PathBuf, quiet: bool, args: &[String]) -> bool {
    let shards = flag_value(args, "--shards").unwrap_or(4);
    let addr = string_flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let wal_dir = string_flag(args, "--wal-dir").map(PathBuf::from);
    let sc = serve_corpus(world);
    let (pre, rest) = sc.corpus.split_at(sc.corpus.len() / 2);
    let store = pse_serve::ShardedStore::new(sc.correspondences.clone(), shards);
    // On a durable restart the seed is discarded for the recovered disk
    // state anyway; skip the pre-ingest so the served state is exactly
    // what recovery rebuilt (the restart leg of the crash drill).
    let durable_state_exists = wal_dir.as_ref().is_some_and(|d| {
        d.join("segments").join("manifest.json").exists() || d.join("wal.log").exists()
    });
    if !durable_state_exists {
        store.ingest(&world.catalog, pre, &embedded_spec_provider());
    } else if !quiet {
        eprintln!("# durable state found; skipping pre-ingest, serving recovered state");
    }
    let config = pse_serve::ServerConfig {
        addr,
        snapshot_path: Some(out_dir.join("serve.snapshot.json")),
        wal_path: wal_dir.as_ref().map(|d| d.join("wal.log")),
        snapshot_dir: wal_dir.as_ref().map(|d| d.join("segments")),
        compaction_threshold_bytes: flag_value(args, "--compact-bytes").unwrap_or(8 << 20),
        ..Default::default()
    };
    let handle = match pse_serve::start(store, world.catalog.clone(), config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: cannot start server: {e}");
            return false;
        }
    };

    // Materials for the driving client: a second-half ingest batch and the
    // point-lookup paths of everything already served.
    let batch = serde_json::to_string(&rest.to_vec()).expect("offers serialize");
    let queries = query_paths(handle.store()).join("\n") + "\n";
    if let Err(e) = std::fs::create_dir_all(out_dir)
        .and_then(|_| std::fs::write(out_dir.join("serve_batch.json"), batch))
        .and_then(|_| std::fs::write(out_dir.join("serve_queries.txt"), queries))
    {
        eprintln!("warning: could not write serve materials under {}: {e}", out_dir.display());
    }
    let bound = handle.addr().to_string();
    if let Some(port_file) = string_flag(args, "--port-file") {
        if let Err(e) = std::fs::write(&port_file, &bound) {
            eprintln!("error: cannot write {port_file}: {e}");
            let _ = handle.shutdown();
            return false;
        }
    }
    if !quiet {
        eprintln!("# serving {shards} shards at {bound}; POST /shutdown to stop");
    }
    handle.wait_for_stop();
    match handle.shutdown() {
        Ok(_) => true,
        Err(e) => {
            eprintln!("error: shutdown failed: {e}");
            false
        }
    }
}

/// The crash-drill oracle: recover the durable directory read-only (no
/// truncation, no WAL rotation — the crashed dir stays inspectable) and
/// write what a correctly restarted server must serve, byte for byte.
fn run_wal_replay(world: &World, out_dir: &Path, quiet: bool, args: &[String]) -> bool {
    let Some(dir) = string_flag(args, "--wal-dir").map(PathBuf::from) else {
        eprintln!("error: wal-replay requires --wal-dir DIR");
        return false;
    };
    let sc = serve_corpus(world);
    let dcfg = pse_wal::DurabilityConfig {
        wal_path: dir.join("wal.log"),
        snapshot_dir: dir.join("segments"),
        compaction_threshold_bytes: u64::MAX,
        group: Default::default(),
    };
    let recovered = match pse_wal::recover(&dcfg, &world.catalog, || {
        pse_store::ProductStore::new(sc.correspondences.clone())
    }) {
        Ok(Some((store, stats))) => {
            if !quiet {
                eprintln!(
                    "# recovered {} segments + {} WAL records ({} torn bytes discarded)",
                    stats.segments_loaded, stats.wal_records_replayed, stats.torn_bytes
                );
            }
            store
        }
        Ok(None) => {
            eprintln!("error: no durable state under {}", dir.display());
            return false;
        }
        Err(e) => {
            eprintln!("error: recovery failed: {e}");
            return false;
        }
    };
    let expected = out_dir.join("drill_expected");
    let mut categories: Vec<u32> = recovered.products().iter().map(|p| p.category.0).collect();
    categories.sort_unstable();
    categories.dedup();
    let write_all = || -> std::io::Result<()> {
        std::fs::create_dir_all(&expected)?;
        std::fs::write(expected.join("snapshot.json"), recovered.snapshot_json())?;
        let lines = categories.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("\n") + "\n";
        std::fs::write(expected.join("categories.txt"), lines)?;
        for c in &categories {
            let body =
                serde_json::to_string(&recovered.products_in_category(pse_core::CategoryId(*c)))
                    .expect("products serialize");
            std::fs::write(expected.join(format!("cat_{c}.json")), body)?;
        }
        Ok(())
    };
    if let Err(e) = write_all() {
        eprintln!("error: cannot write {}: {e}", expected.display());
        return false;
    }
    if !quiet {
        eprintln!(
            "# oracle for {} categories ({} products) written to {}",
            categories.len(),
            recovered.products().len(),
            expected.display()
        );
    }
    true
}

/// Merge one experiment's results into `BENCH_par.json` at the workspace
/// root under `key`, preserving whatever else is there (the Criterion
/// `paths` speedup table, its provenance header, other experiments).
fn merge_into_bench_json<T: serde::Serialize>(key: &str, run: &T, quiet: bool) {
    use serde::Value;
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par.json");
    let mut fields: Vec<(String, Value)> = match std::fs::read_to_string(path)
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
    {
        Some(Value::Object(fields)) => fields,
        _ => vec![
            ("git_commit".to_string(), Value::Str(pse_bench::git_commit())),
            ("threads".to_string(), Value::U64(pse_par::current_threads() as u64)),
        ],
    };
    let entry = run.to_value();
    if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
        slot.1 = entry;
    } else {
        fields.push((key.to_string(), entry));
    }
    let out = serde_json::to_string_pretty(&Value::Object(fields))
        .expect("bench json serialization is infallible");
    match std::fs::write(path, out + "\n") {
        Ok(()) => {
            if !quiet {
                eprintln!("# {key} results merged into {path}");
            }
        }
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

/// The value after a `--flag`, parsed, or `None` when absent/unparsable.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    string_flag(args, flag).and_then(|v| v.parse().ok())
}

fn string_flag(args: &[String], flag: &str) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            return it.next().cloned();
        }
    }
    None
}

/// `--shards a,b,c` as a list (serve-bench); `None` when absent.
fn shard_list(args: &[String]) -> Option<Vec<usize>> {
    let raw = string_flag(args, "--shards")?;
    let parsed: Vec<usize> = raw.split(',').filter_map(|p| p.trim().parse().ok()).collect();
    (!parsed.is_empty()).then_some(parsed)
}

fn batches(args: &[String]) -> usize {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--batches" {
            if let Some(v) = it.next() {
                return v.parse().unwrap_or(4).max(1);
            }
        }
    }
    4
}

fn out_dir(args: &[String]) -> PathBuf {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            if let Some(v) = it.next() {
                return PathBuf::from(v);
            }
        }
    }
    PathBuf::from("results")
}
