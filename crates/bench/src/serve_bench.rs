//! Serving-layer drivers: corpus/session plumbing for the `experiments
//! serve` smoke target and the closed-loop `serve-bench` load generator
//! whose p50/p99 latency and throughput per shard count are merged into
//! `BENCH_par.json` under `"serve"`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use pse_core::{CorrespondenceSet, Offer, Spec};
use pse_datagen::World;
use pse_eval::report::TextTable;
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_synthesis::{FnProvider, OfflineLearner, SpecProvider};
use serde::{Deserialize, Serialize};

/// Offers left unmatched by history with their extracted specifications
/// materialized into `offer.spec` — the wire format `POST /ingest` uses
/// (the server's provider reads the embedded spec, since landing pages
/// are not available on the other side of an HTTP boundary).
pub struct ServeCorpus {
    /// Correspondences learned from the world's historical matches.
    pub correspondences: CorrespondenceSet,
    /// Unmatched offers with embedded specs, in world order.
    pub corpus: Vec<Offer>,
}

/// Build the serving corpus via the honest HTML extraction path.
pub fn serve_corpus(world: &World) -> ServeCorpus {
    let provider = crate::html_provider(world);
    let offline =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let corpus = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .map(|o| Offer { spec: provider.spec(o), ..o.clone() })
        .collect();
    ServeCorpus { correspondences: offline.correspondences, corpus }
}

/// The provider paired with embedded-spec offers on the serving side.
pub fn embedded_spec_provider() -> FnProvider<impl Fn(&Offer) -> Spec + Sync> {
    FnProvider(|o: &Offer| o.spec.clone())
}

/// A point-lookup path for every product currently served, in store
/// order — the request mix for smokes and the load generator.
pub fn query_paths(store: &ShardedStore) -> Vec<String> {
    store
        .products()
        .iter()
        .map(|p| {
            format!(
                "/product?category={}&attr={}&key={}",
                p.category.0,
                encode_query_value(&p.key_attribute),
                encode_query_value(&p.key_value)
            )
        })
        .collect()
}

/// Percent-encode one query value (everything but unreserved characters).
fn encode_query_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(char::from_digit((b >> 4) as u32, 16).unwrap().to_ascii_uppercase());
                out.push(char::from_digit((b & 0xf) as u32, 16).unwrap().to_ascii_uppercase());
            }
        }
    }
    out
}

/// One shard count's closed-loop measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchRow {
    /// Shard count the store ran with.
    pub shards: usize,
    /// Read requests that completed with HTTP 200.
    pub requests: usize,
    /// Requests that failed or returned a non-200 status.
    pub errors: usize,
    /// Write requests (`POST /ingest` / `POST /retract`) that completed
    /// with HTTP 200 — zero for the pure point-lookup mix.
    pub writes: usize,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
}

/// Result of the closed-loop load run across shard counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeBenchRun {
    /// Concurrent client threads (and server worker threads).
    pub workers: usize,
    /// Requests issued per shard count.
    pub requests_per_shard_count: usize,
    /// Distinct products behind the query mix.
    pub products: usize,
    /// One row per shard count.
    pub rows: Vec<ServeBenchRow>,
}

/// Closed-loop load generation: for each shard count, ingest the whole
/// corpus, start a server on an ephemeral port, and hammer it with
/// `workers` client threads issuing point lookups until `requests`
/// requests have been issued.
pub fn run_serve_bench(
    world: &World,
    workers: usize,
    requests: usize,
    shard_counts: &[usize],
) -> ServeBenchRun {
    let workers = workers.max(1);
    let sc = serve_corpus(world);
    let mut rows = Vec::new();
    let mut products = 0;
    for &shards in shard_counts {
        let store = ShardedStore::new(sc.correspondences.clone(), shards);
        store.ingest(&world.catalog, &sc.corpus, &embedded_spec_provider());
        let paths = query_paths(&store);
        assert!(!paths.is_empty(), "serve-bench world must synthesize at least one product");
        products = paths.len();
        let config = ServerConfig { workers, ..ServerConfig::default() };
        let handle = pse_serve::start(store, world.catalog.clone(), config)
            .expect("serve-bench server starts");
        let addr = handle.addr().to_string();
        let next = AtomicUsize::new(0);
        let errors = AtomicUsize::new(0);
        let t0 = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut lat = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= requests {
                                break;
                            }
                            let path = &paths[i % paths.len()];
                            let t = Instant::now();
                            match http_request(&addr, "GET", path, None) {
                                Ok((200, _)) => lat.push(t.elapsed().as_micros() as u64),
                                _ => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        lat
                    })
                })
                .collect();
            joins.into_iter().flat_map(|j| j.join().expect("load worker joins")).collect()
        });
        let wall = t0.elapsed();
        handle.shutdown().expect("serve-bench server stops");
        latencies.sort_unstable();
        rows.push(ServeBenchRow {
            shards,
            requests: latencies.len(),
            errors: errors.into_inner(),
            writes: 0,
            p50_us: percentile(&latencies, 50),
            p99_us: percentile(&latencies, 99),
            throughput_rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        });
    }
    ServeBenchRun { workers, requests_per_shard_count: requests, products, rows }
}

/// The 99/1 read-heavy mix (ISSUE 6): 99% `GET /products/{category}` —
/// answered straight from the published snapshot's response cache — and
/// 1% streaming-sized writes: each write ingests or retracts one small
/// rotating window of a churn pool (ingest then retract of the same
/// window, so store growth is bounded), continuously invalidating and
/// rebuilding the cache while the readers hammer it. Latency percentiles
/// are over the reads; completed writes are counted per row; throughput
/// covers both.
pub fn run_serve_bench_read_heavy(
    world: &World,
    workers: usize,
    requests: usize,
    shard_counts: &[usize],
) -> ServeBenchRun {
    let workers = workers.max(1);
    let sc = serve_corpus(world);
    // The tail tenth of the corpus is the churn pool; the rest is the
    // stable bulk the readers see. Writes rotate over WINDOW-offer
    // chunks of the pool so each write is a realistic streaming batch,
    // not a bulk reload.
    const WINDOW: usize = 10;
    let pool_len = (sc.corpus.len() / 10).max(1);
    let (bulk, pool) = sc.corpus.split_at(sc.corpus.len() - pool_len);
    let ingest_bodies: Vec<String> = pool
        .chunks(WINDOW)
        .map(|w| serde_json::to_string(&w.to_vec()).expect("offers serialize"))
        .collect();
    let retract_bodies: Vec<String> = pool
        .chunks(WINDOW)
        .map(|w| {
            let ids: Vec<u64> = w.iter().map(|o| o.id.0).collect();
            serde_json::to_string(&ids).expect("ids serialize")
        })
        .collect();
    assert!(
        ingest_bodies.iter().all(|b| b.len() < (1 << 20) - 4096),
        "one churn window must fit the server's 1 MiB request cap"
    );
    let mut rows = Vec::new();
    let mut products = 0;
    for &shards in shard_counts {
        let store = ShardedStore::new(sc.correspondences.clone(), shards);
        store.ingest(&world.catalog, bulk, &embedded_spec_provider());
        let served = store.products();
        assert!(!served.is_empty(), "serve-bench world must synthesize at least one product");
        products = served.len();
        let mut categories: Vec<u32> = served.iter().map(|p| p.category.0).collect();
        categories.dedup();
        let paths: Vec<String> = categories.iter().map(|c| format!("/products/{c}")).collect();
        let config = ServerConfig { workers, ..ServerConfig::default() };
        let handle = pse_serve::start(store, world.catalog.clone(), config)
            .expect("serve-bench server starts");
        let addr = handle.addr().to_string();
        let next = AtomicUsize::new(0);
        let errors = AtomicUsize::new(0);
        let writes = AtomicUsize::new(0);
        let t0 = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut lat = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= requests {
                                break;
                            }
                            if i % 100 == 99 {
                                // The 1%: ingest one churn window, then
                                // retract the same window, then move on
                                // to the next window of the pool.
                                let nth = i / 100;
                                let window = (nth / 2) % ingest_bodies.len();
                                let (path, body) = if nth.is_multiple_of(2) {
                                    ("/ingest", ingest_bodies[window].as_str())
                                } else {
                                    ("/retract", retract_bodies[window].as_str())
                                };
                                match http_request(&addr, "POST", path, Some(body)) {
                                    Ok((200, _)) => {
                                        writes.fetch_add(1, Ordering::Relaxed);
                                    }
                                    _ => {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            } else {
                                let path = &paths[i % paths.len()];
                                let t = Instant::now();
                                match http_request(&addr, "GET", path, None) {
                                    Ok((200, _)) => lat.push(t.elapsed().as_micros() as u64),
                                    _ => {
                                        errors.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                            }
                        }
                        lat
                    })
                })
                .collect();
            joins.into_iter().flat_map(|j| j.join().expect("load worker joins")).collect()
        });
        let wall = t0.elapsed();
        handle.shutdown().expect("serve-bench server stops");
        latencies.sort_unstable();
        let writes = writes.into_inner();
        rows.push(ServeBenchRow {
            shards,
            requests: latencies.len(),
            errors: errors.into_inner(),
            writes,
            p50_us: percentile(&latencies, 50),
            p99_us: percentile(&latencies, 99),
            throughput_rps: (latencies.len() + writes) as f64 / wall.as_secs_f64().max(1e-9),
        });
    }
    ServeBenchRun { workers, requests_per_shard_count: requests, products, rows }
}

/// The documented tracing-overhead budget: p50 of the point-lookup mix
/// with observability (tracing + RED metrics + flight recorder) on may
/// regress at most this much over observability off.
pub const OBS_OVERHEAD_BUDGET_PCT: f64 = 10.0;

/// The obs-on vs obs-off comparison merged into `BENCH_par.json` under
/// `"serve_obs_overhead"`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ObsOverheadRun {
    /// Concurrent client threads (and server worker threads).
    pub workers: usize,
    /// Requests issued per run.
    pub requests: usize,
    /// The point-lookup mix with observability off.
    pub obs_off: ServeBenchRow,
    /// The same mix with observability on (tracing, endpoint histograms,
    /// flight recorder all live).
    pub obs_on: ServeBenchRow,
    /// p50 regression, percent (negative = obs-on measured faster).
    pub p50_overhead_pct: f64,
    /// p99 regression, percent.
    pub p99_overhead_pct: f64,
    /// The budget `p50_overhead_pct` is held to.
    pub budget_pct: f64,
    /// Whether the p50 regression stayed within the budget.
    pub within_budget: bool,
}

/// Measure the serving-path cost of observability: run the point-lookup
/// mix twice against identical stores — first with instrumentation off,
/// then with it on — and compare latency percentiles. The caller's
/// enabled-state is restored afterwards, so a surrounding `--obs` run
/// still writes its report.
pub fn run_serve_bench_obs_overhead(
    world: &World,
    workers: usize,
    requests: usize,
    shards: usize,
) -> ObsOverheadRun {
    let was_enabled = pse_obs::enabled();
    pse_obs::set_enabled(false);
    let off = run_serve_bench(world, workers, requests, &[shards]).rows.remove(0);
    pse_obs::set_enabled(true);
    let on = run_serve_bench(world, workers, requests, &[shards]).rows.remove(0);
    pse_obs::set_enabled(was_enabled);
    let pct = |on: u64, off: u64| (on as f64 - off as f64) / (off as f64).max(1.0) * 100.0;
    let p50_overhead_pct = pct(on.p50_us, off.p50_us);
    let p99_overhead_pct = pct(on.p99_us, off.p99_us);
    ObsOverheadRun {
        workers,
        requests,
        obs_off: off,
        obs_on: on,
        p50_overhead_pct,
        p99_overhead_pct,
        budget_pct: OBS_OVERHEAD_BUDGET_PCT,
        within_budget: p50_overhead_pct <= OBS_OVERHEAD_BUDGET_PCT,
    }
}

/// Render the overhead comparison as a text table.
pub fn render_obs_overhead(run: &ObsOverheadRun) -> String {
    let mut t =
        TextTable::new(["Mode", "Reads", "Errors", "p50 (us)", "p99 (us)", "Throughput (rps)"]);
    for (mode, r) in [("obs off", &run.obs_off), ("obs on", &run.obs_on)] {
        t.row([
            mode.to_string(),
            r.requests.to_string(),
            r.errors.to_string(),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            format!("{:.0}", r.throughput_rps),
        ]);
    }
    format!(
        "Serving: observability overhead, {} client threads, {} requests/run\n{}\np50 overhead {:+.1}% (budget {:.0}%), p99 overhead {:+.1}%",
        run.workers,
        run.requests,
        t.render(),
        run.p50_overhead_pct,
        run.budget_pct,
        run.p99_overhead_pct
    )
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    match sorted.len() {
        0 => 0,
        n => sorted[(n - 1) * pct / 100],
    }
}

/// Render the load run as a text table.
pub fn render_serve_bench(run: &ServeBenchRun) -> String {
    let mut t = TextTable::new([
        "Shards",
        "Reads",
        "Writes",
        "Errors",
        "p50 (us)",
        "p99 (us)",
        "Throughput (rps)",
    ]);
    for r in &run.rows {
        t.row([
            r.shards.to_string(),
            r.requests.to_string(),
            r.writes.to_string(),
            r.errors.to_string(),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            format!("{:.0}", r.throughput_rps),
        ]);
    }
    format!(
        "Serving: closed-loop load, {} client threads, {} products\n{}",
        run.workers,
        run.products,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_values_are_percent_encoded() {
        assert_eq!(encode_query_value("abc-123"), "abc-123");
        assert_eq!(encode_query_value("a b&c=d"), "a%20b%26c%3Dd");
    }

    #[test]
    fn percentiles_on_small_samples() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[5], 50), 5);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
    }
}
