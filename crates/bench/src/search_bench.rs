//! Search-quality and search-latency driver (ISSUE 10): replay
//! ground-truth free-text queries against `GET /search`, score
//! precision@1 / recall@10 against the oracle's answer sets, byte-compare
//! every response across shard counts, and measure the closed-loop
//! latency of the query path. The run is merged into `BENCH_par.json`
//! under `"search"`.
//!
//! Scoring bridges the catalog and the synthesized store through the
//! cluster key space: a ground-truth catalog product is "the same
//! product" as a served hit when one of its identifier values
//! normalizes ([`normalize_key`]) to the hit's `key_value` — the exact
//! equivalence the clustering stage itself uses. Queries whose answer
//! set has no served representative are unanswerable by construction
//! (their offers never arrived or never carried a usable key) and are
//! excluded from the quality denominators, counted in
//! [`SearchBenchRun::unanswerable_queries`].

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use pse_core::AttributeKind;
use pse_datagen::{truth_queries, TruthQuery, World};
use pse_eval::report::TextTable;
use pse_serve::{http_request, ServerConfig, ShardedStore};
use pse_synthesis::runtime::normalize_key;
use serde::{Deserialize, Serialize};

use crate::serve_bench::{embedded_spec_provider, serve_corpus};

/// Documented floor for precision@1 on the smoke corpus.
pub const SEARCH_PRECISION_AT_1_MIN: f64 = 0.8;
/// Documented floor for recall@10 on the smoke corpus.
pub const SEARCH_RECALL_AT_10_MIN: f64 = 0.7;
/// Hits requested per query — the `@10` in the quality metrics.
pub const SEARCH_TOP_K: usize = 10;
/// Ground-truth queries generated per run (the catalog stride in
/// [`truth_queries`] spreads them over the whole catalog).
pub const SEARCH_QUERY_COUNT: usize = 128;

/// One shard count's closed-loop latency measurement over the query mix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchBenchRow {
    /// Shard count the store ran with.
    pub shards: usize,
    /// Search requests that completed with HTTP 200.
    pub requests: usize,
    /// Requests that failed or returned a non-200 status.
    pub errors: usize,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
    /// Completed requests per wall-clock second.
    pub throughput_rps: f64,
}

/// Result of the search run: quality on the first shard count,
/// byte-agreement across all of them, latency per shard count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchBenchRun {
    /// Concurrent client threads (and server worker threads).
    pub workers: usize,
    /// Requests issued per shard count in the latency loop.
    pub requests_per_shard_count: usize,
    /// Distinct products served behind the queries.
    pub products: usize,
    /// Ground-truth queries generated.
    pub queries: usize,
    /// Queries whose answer set had at least one served product and
    /// therefore entered the quality denominators.
    pub scored_queries: usize,
    /// Queries excluded because no answer product is served.
    pub unanswerable_queries: usize,
    /// Fraction of scored queries whose top hit is a ground-truth answer.
    pub precision_at_1: f64,
    /// Mean over scored queries of answers found in the top
    /// [`SEARCH_TOP_K`] over answers findable there.
    pub recall_at_10: f64,
    /// The floor `precision_at_1` is held to.
    pub precision_at_1_min: f64,
    /// The floor `recall_at_10` is held to.
    pub recall_at_10_min: f64,
    /// Whether both quality floors held.
    pub thresholds_met: bool,
    /// Whether every query's `(status, body)` was byte-identical across
    /// all shard counts.
    pub shard_counts_agree: bool,
    /// One latency row per shard count.
    pub rows: Vec<SearchBenchRow>,
}

/// `GET /search` paths for the query mix, `k` pinned to
/// [`SEARCH_TOP_K`] so every body is comparable across runs.
pub fn search_query_paths(queries: &[TruthQuery]) -> Vec<String> {
    queries
        .iter()
        .map(|q| format!("/search?q={}&k={SEARCH_TOP_K}", encode_query_value(&q.text)))
        .collect()
}

/// Percent-encode one query value (everything but unreserved characters).
fn encode_query_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(char::from_digit((b >> 4) as u32, 16).unwrap().to_ascii_uppercase());
                out.push(char::from_digit((b & 0xf) as u32, 16).unwrap().to_ascii_uppercase());
            }
        }
    }
    out
}

/// Every normalized identifier value a ground-truth answer product could
/// have clustered under — the keys a served hit would carry if its
/// offers were synthesized. Answers span categories (see
/// [`TruthQuery::products`]), so identifier attributes come from each
/// answer product's own category templates.
fn answer_keys(world: &World, query: &TruthQuery) -> BTreeSet<String> {
    let by_id: HashMap<_, _> = world.catalog.products().map(|p| (p.id, p)).collect();
    let mut keys = BTreeSet::new();
    for pid in &query.products {
        let Some(product) = by_id.get(pid) else { continue };
        let Some(info) = world.category_info(product.category) else { continue };
        for t in &info.templates {
            if t.kind != AttributeKind::Identifier {
                continue;
            }
            if let Some(value) = product.spec.get(&t.name) {
                let key = normalize_key(value);
                if !key.is_empty() {
                    keys.insert(key);
                }
            }
        }
    }
    keys
}

/// The `key_value` of each hit in a `/search` response body, in rank
/// order. Returns empty on non-JSON bodies (the caller counts those as
/// misses, not panics — the byte-agreement check reports the real
/// divergence).
fn hit_keys(body: &str) -> Vec<String> {
    let Ok(v) = serde_json::from_str::<serde::Value>(body) else {
        return Vec::new();
    };
    let Some(serde::Value::Array(hits)) = v.get("hits") else {
        return Vec::new();
    };
    hits.iter()
        .filter_map(|h| match h.get("product").and_then(|p| p.get("key_value")) {
            Some(serde::Value::Str(s)) => Some(s.clone()),
            _ => None,
        })
        .collect()
}

/// Replay ground-truth queries against `GET /search` at every shard
/// count: fetch each query once for byte-agreement and quality scoring,
/// then run the closed-loop latency mix with `workers` client threads
/// until `requests` requests have been issued.
pub fn run_search_bench(
    world: &World,
    workers: usize,
    requests: usize,
    shard_counts: &[usize],
) -> SearchBenchRun {
    let workers = workers.max(1);
    let sc = serve_corpus(world);
    let queries = truth_queries(world, SEARCH_QUERY_COUNT);
    assert!(!queries.is_empty(), "search-bench world must yield ground-truth queries");
    let paths = search_query_paths(&queries);

    let mut rows = Vec::new();
    let mut products = 0;
    let mut served_keys: BTreeSet<String> = BTreeSet::new();
    let mut reference: Option<Vec<(u16, String)>> = None;
    let mut shard_counts_agree = true;
    for &shards in shard_counts {
        let store = ShardedStore::new(sc.correspondences.clone(), shards);
        store.ingest(&world.catalog, &sc.corpus, &embedded_spec_provider());
        let config = ServerConfig { workers, ..ServerConfig::default() };
        let handle = pse_serve::start(store, world.catalog.clone(), config)
            .expect("search-bench server starts");
        let served = handle.store().products();
        assert!(!served.is_empty(), "search-bench world must synthesize at least one product");
        products = served.len();
        let addr = handle.addr().to_string();

        // One pass over every query: these bodies are the quality input
        // (first shard count) and the byte-agreement evidence (the rest).
        let answers: Vec<(u16, String)> = paths
            .iter()
            .map(|p| http_request(&addr, "GET", p, None).expect("search request completes"))
            .collect();
        match &reference {
            None => {
                served_keys = served.iter().map(|p| p.key_value.clone()).collect();
                reference = Some(answers);
            }
            Some(want) => shard_counts_agree &= *want == answers,
        }

        // Closed-loop latency over the same mix.
        let next = AtomicUsize::new(0);
        let errors = AtomicUsize::new(0);
        let t0 = Instant::now();
        let mut latencies: Vec<u64> = std::thread::scope(|scope| {
            let joins: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut lat = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= requests {
                                break;
                            }
                            let path = &paths[i % paths.len()];
                            let t = Instant::now();
                            match http_request(&addr, "GET", path, None) {
                                Ok((200, _)) => lat.push(t.elapsed().as_micros() as u64),
                                _ => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        lat
                    })
                })
                .collect();
            joins.into_iter().flat_map(|j| j.join().expect("load worker joins")).collect()
        });
        let wall = t0.elapsed();
        handle.shutdown().expect("search-bench server stops");
        latencies.sort_unstable();
        rows.push(SearchBenchRow {
            shards,
            requests: latencies.len(),
            errors: errors.into_inner(),
            p50_us: percentile(&latencies, 50),
            p99_us: percentile(&latencies, 99),
            throughput_rps: latencies.len() as f64 / wall.as_secs_f64().max(1e-9),
        });
    }

    // Quality, scored on the first shard count's bodies.
    let reference = reference.expect("at least one shard count runs");
    let mut scored = 0usize;
    let mut unanswerable = 0usize;
    let mut top1_hits = 0usize;
    let mut recall_sum = 0.0f64;
    for (query, (status, body)) in queries.iter().zip(&reference) {
        let expected: BTreeSet<String> =
            answer_keys(world, query).into_iter().filter(|k| served_keys.contains(k)).collect();
        if expected.is_empty() {
            unanswerable += 1;
            continue;
        }
        scored += 1;
        let hits = if *status == 200 { hit_keys(body) } else { Vec::new() };
        if hits.first().is_some_and(|k| expected.contains(k)) {
            top1_hits += 1;
        }
        let found = hits.iter().filter(|k| expected.contains(*k)).count();
        // Denominator capped at k: with more than k answers, a perfect
        // top-k page still scores 1.0.
        recall_sum += found as f64 / expected.len().min(SEARCH_TOP_K) as f64;
    }
    let precision_at_1 = if scored == 0 { 0.0 } else { top1_hits as f64 / scored as f64 };
    let recall_at_10 = if scored == 0 { 0.0 } else { recall_sum / scored as f64 };

    SearchBenchRun {
        workers,
        requests_per_shard_count: requests,
        products,
        queries: queries.len(),
        scored_queries: scored,
        unanswerable_queries: unanswerable,
        precision_at_1,
        recall_at_10,
        precision_at_1_min: SEARCH_PRECISION_AT_1_MIN,
        recall_at_10_min: SEARCH_RECALL_AT_10_MIN,
        thresholds_met: precision_at_1 >= SEARCH_PRECISION_AT_1_MIN
            && recall_at_10 >= SEARCH_RECALL_AT_10_MIN,
        shard_counts_agree,
        rows,
    }
}

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    match sorted.len() {
        0 => 0,
        n => sorted[(n - 1) * pct / 100],
    }
}

/// Render the search run as a text table plus the quality line.
pub fn render_search_bench(run: &SearchBenchRun) -> String {
    let mut t = TextTable::new([
        "Shards",
        "Requests",
        "Errors",
        "p50 (us)",
        "p99 (us)",
        "Throughput (rps)",
    ]);
    for r in &run.rows {
        t.row([
            r.shards.to_string(),
            r.requests.to_string(),
            r.errors.to_string(),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            format!("{:.0}", r.throughput_rps),
        ]);
    }
    format!(
        "Search: {} ground-truth queries over {} products ({} scored, {} unanswerable)\n{}\nprecision@1 {:.3} (floor {:.2}), recall@10 {:.3} (floor {:.2}), shard counts agree: {}",
        run.queries,
        run.products,
        run.scored_queries,
        run.unanswerable_queries,
        t.render(),
        run.precision_at_1,
        run.precision_at_1_min,
        run.recall_at_10,
        run.recall_at_10_min,
        run.shard_counts_agree
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_datagen::WorldConfig;

    #[test]
    fn search_bench_meets_quality_floors_on_the_tiny_world() {
        let world = World::generate(WorldConfig::tiny());
        let run = run_search_bench(&world, 2, 64, &[1, 2]);
        assert!(run.queries > 0 && run.scored_queries > 0, "{run:?}");
        assert!(run.shard_counts_agree, "shard counts must agree: {run:?}");
        assert!(
            run.thresholds_met,
            "precision@1 {:.3} (floor {}), recall@10 {:.3} (floor {})",
            run.precision_at_1, run.precision_at_1_min, run.recall_at_10, run.recall_at_10_min
        );
        assert_eq!(run.rows.len(), 2);
        for row in &run.rows {
            assert_eq!(row.errors, 0, "query mix must serve cleanly: {row:?}");
            assert!(row.requests > 0);
        }
    }

    #[test]
    fn hit_keys_reads_ranked_key_values() {
        let body = r#"{"category":3,"constraints":[],"hits":[
            {"matched":1,"score":0.5,"product":{"key_value":"abc123","spec":[]}},
            {"matched":0,"score":0.1,"product":{"key_value":"zzz9","spec":[]}}]}"#;
        assert_eq!(hit_keys(body), vec!["abc123".to_string(), "zzz9".to_string()]);
        assert!(hit_keys("not json").is_empty());
        assert!(hit_keys(r#"{"hits":[]}"#).is_empty());
    }
}
