//! Paper-scale ingest bench: the streaming generator driving the
//! durable write path at a million offers, group commit vs the
//! per-batch-fsync baseline.
//!
//! Two legs over the same offer stream, each into a fresh durable
//! directory:
//!
//! * **serial** — `durable_ingest_serial`, one writer, one fsync per
//!   batch while the durability mutex is held: exactly the pre-group-
//!   commit write path, measured on a capped prefix of the stream so
//!   the leg stays short.
//! * **grouped** — `durable_ingest` from `--workers` threads sharing
//!   one [`OfferStream`]: commits stage concurrently, one leader
//!   fsyncs each group, applies retire through the turnstile in log
//!   order. Runs the full `--offers` count.
//!
//! Offers come from a [`WorldBase`] + [`OfferStream`] — constant
//! generator memory regardless of offer count — with page specs
//! embedded per batch via [`WorldBase::page_spec_for`] (the wire form
//! `POST /ingest` uses; pages don't cross HTTP boundaries).
//! Correspondences are learned once from a small materialized world on
//! the same seed, which shares the catalog and merchant vocabularies
//! with the stream by construction.
//!
//! After the grouped leg the bench runs a recovery drill: drop the
//! durability context with the WAL tail unfolded, recover the
//! directory fresh, and demand the recovered snapshot equal the live
//! store byte for byte — the group-commit invariant (apply order ==
//! log order) checked at full scale. Peak RSS (`VmHWM`) is recorded so
//! regressions in streaming memory show up in `BENCH_par.json`.
//!
//! [`OfferStream`]: pse_datagen::OfferStream

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use pse_core::Offer;
use pse_datagen::{Scenario, World, WorldBase};
use pse_eval::report::TextTable;
use pse_serve::{
    durable_ingest, durable_ingest_serial, durable_retract, durable_snapshot, open_durable,
    DurableCtx, ShardedStore,
};
use pse_wal::{DurabilityConfig, GroupCommitConfig};
use serde::{Deserialize, Serialize};

use crate::Scale;

/// Knobs of the ingest bench, resolved from CLI flags.
#[derive(Debug, Clone)]
pub struct IngestBenchOpts {
    /// Offers per ingest batch (`--batch-size`).
    pub batch_size: usize,
    /// Concurrent writer threads in the grouped leg (`--workers`).
    pub writers: usize,
    /// Offer cap for the serial baseline leg (`--baseline-offers`).
    pub baseline_offers: usize,
    /// Group-commit quorum (`--group-size`).
    pub group_size: usize,
    /// Group-commit bounded wait, microseconds (`--group-wait-us`).
    pub group_wait_us: u64,
    /// Named load scenario (`--scenario`).
    pub scenario: String,
    /// Store shards (`--shards`).
    pub shards: usize,
    /// WAL compaction threshold in bytes (`--compact-bytes`).
    pub compact_bytes: u64,
}

impl Default for IngestBenchOpts {
    fn default() -> Self {
        Self {
            // Small per-commit batches are the regime group commit
            // exists for: each commit is fsync-dominated, so sharing one
            // sync across a group is the whole win. Larger --batch-size
            // values amortize the fsync in the app layer instead and
            // flatten the comparison.
            batch_size: 4,
            writers: 8,
            baseline_offers: 50_000,
            group_size: GroupCommitConfig::default().group_size,
            // Several times the per-commit CPU cost, so a group can
            // actually fill while the leader waits; the serve-path
            // default (500 us) optimizes commit latency instead.
            group_wait_us: 2_000,
            scenario: "steady".to_string(),
            shards: 4,
            compact_bytes: 64 << 20,
        }
    }
}

/// One leg's measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestLegRow {
    /// `serial` (per-batch fsync baseline) or `grouped` (group commit).
    pub leg: String,
    /// Offers ingested.
    pub offers: usize,
    /// Ingest commits (batches) issued.
    pub commits: usize,
    /// Writer threads.
    pub writers: usize,
    /// Offer ids retracted by scenario waves.
    pub retractions: usize,
    /// Wall-clock for the leg, milliseconds.
    pub elapsed_ms: u64,
    /// Sustained durable-ingest throughput.
    pub offers_per_sec: f64,
    /// Median commit latency (stage → durable → applied), microseconds.
    pub p50_commit_us: u64,
    /// 99th-percentile commit latency, microseconds.
    pub p99_commit_us: u64,
}

/// Result of `experiments ingest-bench`, merged into `BENCH_par.json`
/// under `"ingest_scale"`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IngestScaleRun {
    /// Offers the grouped leg streamed.
    pub offers: usize,
    /// Offer cap of the serial baseline leg.
    pub baseline_offers: usize,
    /// Offers per ingest batch.
    pub batch_size: usize,
    /// Writer threads in the grouped leg.
    pub writers: usize,
    /// Group-commit quorum.
    pub group_size: usize,
    /// Group-commit bounded wait, microseconds.
    pub group_wait_us: u64,
    /// Load scenario name.
    pub scenario: String,
    /// Store shards.
    pub shards: usize,
    /// Products served after the grouped leg.
    pub products: usize,
    /// The per-batch-fsync baseline.
    pub baseline: IngestLegRow,
    /// The group-commit leg.
    pub grouped: IngestLegRow,
    /// Grouped throughput over baseline throughput.
    pub speedup: f64,
    /// Whether group commit beat the per-batch-fsync baseline.
    pub group_commit_faster: bool,
    /// Process peak RSS after both legs, kilobytes (`VmHWM`).
    pub peak_rss_kb: u64,
    /// Segments the recovery drill loaded.
    pub recovered_segments: usize,
    /// WAL records the recovery drill replayed (tail left unfolded on
    /// purpose — a fold would make this zero and the drill vacuous).
    pub recovered_wal_records: usize,
    /// The recovered snapshot equals the live store byte for byte.
    pub recovery_equal: bool,
}

/// Run the ingest bench. `dir` is wiped and reused for both legs'
/// durable directories.
pub fn run_ingest_bench(scale: &Scale, opts: &IngestBenchOpts, dir: &Path) -> IngestScaleRun {
    let _span = pse_obs::span("experiments.ingest_bench");
    let scenario = Scenario::parse(&opts.scenario)
        .unwrap_or_else(|| panic!("unknown scenario {:?}", opts.scenario));

    // Correspondences from a small materialized world on the same seed:
    // `num_offers` feeds no setup decision, so the small world shares
    // catalog, merchants, and vocabularies with the stream exactly.
    let mut cfg = scale.world_config();
    cfg.num_offers = cfg.num_offers.min(4_000);
    let world = World::generate(cfg.clone());
    let correspondences = crate::serve_corpus(&world).correspondences;
    let base = WorldBase::generate(cfg);

    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("ingest-bench dir");

    let baseline_offers = opts.baseline_offers.min(scale.offers).max(1);
    flush_writeback();
    let baseline = run_serial_leg(
        &world,
        &base,
        &correspondences,
        scenario,
        baseline_offers,
        opts,
        &dir.join("serial"),
    );
    dump_leg_obs("serial");
    flush_writeback();

    let grouped_dir = dir.join("grouped");
    let (grouped, store, dcfg) = run_grouped_leg(
        &world,
        &base,
        &correspondences,
        scenario,
        scale.offers,
        opts,
        &grouped_dir,
    );

    dump_leg_obs("grouped");

    // Recovery drill: the grouped leg's context was dropped with its
    // WAL tail unfolded; a fresh open must replay it to the same bytes.
    let live = store.snapshot_json();
    let seed = ShardedStore::new(correspondences.clone(), opts.shards);
    let (recovered, rctx, rstats) =
        open_durable(dcfg, &world.catalog, seed).expect("recovery drill open");
    let recovery_equal = recovered.snapshot_json() == live;
    drop(rctx);

    let speedup = grouped.offers_per_sec / baseline.offers_per_sec.max(f64::MIN_POSITIVE);
    IngestScaleRun {
        offers: scale.offers,
        baseline_offers,
        batch_size: opts.batch_size.max(1),
        writers: opts.writers.max(1),
        group_size: opts.group_size,
        group_wait_us: opts.group_wait_us,
        scenario: opts.scenario.clone(),
        shards: opts.shards,
        products: store.products().len(),
        baseline,
        grouped,
        speedup,
        group_commit_faster: speedup > 1.0,
        peak_rss_kb: peak_rss_kb(),
        recovered_segments: rstats.segments_loaded,
        recovered_wal_records: rstats.wal_records_replayed,
        recovery_equal,
    }
}

/// Flush accumulated dirty pages before a measured leg so neither leg
/// starts by paying the previous leg's writeback debt inside its own
/// fsyncs (the legs run back to back and each writes hundreds of MB).
/// Best-effort: a missing `sync` binary just skips the leveling.
fn flush_writeback() {
    let _ = std::process::Command::new("sync").status();
}

/// With observability on (`PSE_OBS=1` or `--obs`), print the leg's WAL
/// histograms — fsync cost, realized group size, group wait — and reset
/// the sink so the next leg's numbers start clean. Off by default: the
/// measured legs should not pay the instrumentation tax unasked.
fn dump_leg_obs(leg: &str) {
    if !pse_obs::enabled() {
        return;
    }
    let report = pse_obs::report();
    let mut line = format!("# obs[{leg}]");
    for h in &report.histograms {
        if h.name.starts_with("wal.") {
            let mean = if h.count == 0 { 0.0 } else { h.sum as f64 / h.count as f64 };
            line.push_str(&format!("  {} n={} mean={:.0} max={}", h.name, h.count, mean, h.max));
        }
    }
    eprintln!("{line}");
    // The write path's cost centers, so a slow leg is attributable at a
    // glance: commit CPU (ingest/reconcile/refuse/stage) vs fold time.
    const COST_CENTERS: [&str; 6] = [
        "store.ingest",
        "runtime.reconcile",
        "store.refuse",
        "wal.stage",
        "store.snapshot",
        "wal.snapshot",
    ];
    let mut line = format!("# obs[{leg}]");
    for s in &report.spans {
        if let Some(name) = COST_CENTERS.iter().find(|n| s.path.ends_with(*n)) {
            let mean_us = s.total_ns as f64 / s.count.max(1) as f64 / 1_000.0;
            line.push_str(&format!(
                "  {} n={} mean={:.0}us total={:.1}s",
                name,
                s.count,
                mean_us,
                s.total_ns as f64 / 1e9
            ));
        }
    }
    eprintln!("{line}");
    pse_obs::reset();
}

fn durability_config(dir: &Path, opts: &IngestBenchOpts) -> DurabilityConfig {
    DurabilityConfig {
        wal_path: dir.join("wal.log"),
        snapshot_dir: dir.join("segments"),
        compaction_threshold_bytes: opts.compact_bytes.max(1),
        group: GroupCommitConfig {
            group_size: opts.group_size.max(1),
            group_wait: Duration::from_micros(opts.group_wait_us),
        },
    }
}

/// Pull one batch, embed its page specs, and return it with its wave
/// retractions. Generation work happens outside the stream lock so
/// writer threads only serialize on the (cheap) RNG walk.
fn pull_batch(
    stream: &Mutex<pse_datagen::OfferStream<'_>>,
    base: &WorldBase,
    batch_size: usize,
) -> Option<(Vec<Offer>, Vec<pse_core::OfferId>)> {
    let batch = stream.lock().expect("offer stream").next_batch(batch_size)?;
    let offers = batch
        .offers
        .into_iter()
        .map(|so| {
            let spec = base.page_spec_for(&so.offer, so.product);
            Offer { spec, ..so.offer }
        })
        .collect();
    Some((offers, batch.retractions))
}

/// The background fold, mirroring the server's compaction loop: poll
/// `wants_compaction` until the writers finish, folding the WAL into
/// segments whenever it crosses the threshold — so the grouped leg
/// exercises WAL rotation (and committer re-arming) under load.
fn compaction_loop(store: &ShardedStore, ctx: &DurableCtx, done: &AtomicBool) {
    while !done.load(Ordering::Relaxed) {
        let wants = ctx.durability().lock().expect("durability lock").wants_compaction();
        if wants {
            let _ = durable_snapshot(store, ctx);
        } else {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn run_serial_leg(
    world: &World,
    base: &WorldBase,
    correspondences: &pse_core::CorrespondenceSet,
    scenario: Scenario,
    offers: usize,
    opts: &IngestBenchOpts,
    dir: &Path,
) -> IngestLegRow {
    let _span = pse_obs::span("ingest_bench.serial");
    std::fs::create_dir_all(dir).expect("serial leg dir");
    let dcfg = durability_config(dir, opts);
    let seed = ShardedStore::new(correspondences.clone(), opts.shards);
    let (store, ctx, _) = open_durable(dcfg, &world.catalog, seed).expect("serial leg open");
    let provider = crate::embedded_spec_provider();

    let stream = Mutex::new(base.stream_scenario(offers, scenario));
    let mut latencies = Vec::new();
    let mut ingested = 0usize;
    let mut retracted = 0usize;
    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| compaction_loop(&store, &ctx, &done));
        while let Some((batch, waves)) = pull_batch(&stream, base, opts.batch_size.max(1)) {
            let t = Instant::now();
            durable_ingest_serial(&store, &ctx, &world.catalog, &batch, &provider)
                .expect("serial ingest");
            latencies.push(t.elapsed().as_micros() as u64);
            ingested += batch.len();
            if !waves.is_empty() {
                // Single-threaded, so interleaving the turnstile-using
                // retract path with the serial ingest path is safe: the
                // turnstile only sequences concurrent commits.
                retracted += waves.len();
                durable_retract(&store, &ctx, &world.catalog, &waves).expect("serial retract");
            }
        }
        done.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed();
    drop(ctx);
    leg_row("serial", ingested, retracted, 1, elapsed, latencies)
}

#[allow(clippy::too_many_arguments)]
fn run_grouped_leg(
    world: &World,
    base: &WorldBase,
    correspondences: &pse_core::CorrespondenceSet,
    scenario: Scenario,
    offers: usize,
    opts: &IngestBenchOpts,
    dir: &Path,
) -> (IngestLegRow, ShardedStore, DurabilityConfig) {
    let _span = pse_obs::span("ingest_bench.grouped");
    std::fs::create_dir_all(dir).expect("grouped leg dir");
    let dcfg = durability_config(dir, opts);
    let seed = ShardedStore::new(correspondences.clone(), opts.shards);
    let (store, ctx, _) =
        open_durable(dcfg.clone(), &world.catalog, seed).expect("grouped leg open");
    let provider = crate::embedded_spec_provider();

    let writers = opts.writers.max(1);
    let stream = Mutex::new(base.stream_scenario(offers, scenario));
    let ingested = AtomicUsize::new(0);
    let retracted = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let all_latencies = Mutex::new(Vec::new());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| compaction_loop(&store, &ctx, &done));
        let mut handles = Vec::new();
        for _ in 0..writers {
            handles.push(s.spawn(|| {
                let mut local = Vec::new();
                while let Some((batch, waves)) = pull_batch(&stream, base, opts.batch_size.max(1)) {
                    let t = Instant::now();
                    durable_ingest(&store, &ctx, &world.catalog, &batch, &provider)
                        .expect("grouped ingest");
                    local.push(t.elapsed().as_micros() as u64);
                    ingested.fetch_add(batch.len(), Ordering::Relaxed);
                    if !waves.is_empty() {
                        // Best-effort revocation: a wave id whose ingest
                        // is still in flight on another writer no-ops
                        // and the offer survives — load shape, not an
                        // oracle. Recovery equality below is the oracle.
                        retracted.fetch_add(waves.len(), Ordering::Relaxed);
                        durable_retract(&store, &ctx, &world.catalog, &waves)
                            .expect("grouped retract");
                    }
                }
                all_latencies.lock().expect("latencies").extend(local);
            }));
        }
        for h in handles {
            h.join().expect("writer thread");
        }
        done.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed();
    // Drop the context with the WAL tail unfolded: the recovery drill
    // must replay real records, not just load folded segments.
    drop(ctx);

    let latencies = all_latencies.into_inner().expect("latencies");
    let row = leg_row(
        "grouped",
        ingested.into_inner(),
        retracted.into_inner(),
        writers,
        elapsed,
        latencies,
    );
    (row, store, dcfg)
}

fn leg_row(
    leg: &str,
    offers: usize,
    retractions: usize,
    writers: usize,
    elapsed: Duration,
    mut latencies: Vec<u64>,
) -> IngestLegRow {
    latencies.sort_unstable();
    let pct = |p: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    let secs = elapsed.as_secs_f64().max(f64::MIN_POSITIVE);
    IngestLegRow {
        leg: leg.to_string(),
        offers,
        commits: latencies.len(),
        writers,
        retractions,
        elapsed_ms: elapsed.as_millis() as u64,
        offers_per_sec: offers as f64 / secs,
        p50_commit_us: pct(0.50),
        p99_commit_us: pct(0.99),
    }
}

/// The process's peak resident set in kilobytes, from `/proc` (0 when
/// unavailable, e.g. off Linux).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else { return 0 };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Render the ingest bench as a text table plus the verdict lines.
pub fn render_ingest_bench(run: &IngestScaleRun) -> String {
    let mut t = TextTable::new([
        "Leg",
        "Offers",
        "Commits",
        "Writers",
        "Retractions",
        "Elapsed ms",
        "Offers/s",
        "p50 us",
        "p99 us",
    ]);
    for r in [&run.baseline, &run.grouped] {
        t.row(vec![
            r.leg.clone(),
            r.offers.to_string(),
            r.commits.to_string(),
            r.writers.to_string(),
            r.retractions.to_string(),
            r.elapsed_ms.to_string(),
            format!("{:.0}", r.offers_per_sec),
            r.p50_commit_us.to_string(),
            r.p99_commit_us.to_string(),
        ]);
    }
    format!(
        "Ingest at scale: streaming datagen → durable write path \
         ({} offers, batch {}, {} shards, scenario {})\n{}\
         group commit (size {}, wait {} us): {:.2}x vs per-batch fsync · \
         faster: {} · products: {} · peak RSS: {} MiB · \
         recovery: {} segments + {} WAL records, byte-identical: {}",
        run.offers,
        run.batch_size,
        run.shards,
        run.scenario,
        t.render(),
        run.group_size,
        run.group_wait_us,
        run.speedup,
        if run.group_commit_faster { "yes" } else { "NO" },
        run.products,
        run.peak_rss_kb / 1024,
        run.recovered_segments,
        run.recovered_wal_records,
        if run.recovery_equal { "yes" } else { "NO — MISMATCH" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rates_are_sane() {
        let row = leg_row("serial", 100, 0, 1, Duration::from_millis(200), (1..=100u64).collect());
        assert_eq!(row.p50_commit_us, 50);
        assert_eq!(row.p99_commit_us, 99);
        assert_eq!(row.commits, 100);
        assert!((row.offers_per_sec - 500.0).abs() < 1.0, "{}", row.offers_per_sec);
    }

    #[test]
    fn peak_rss_reads_proc() {
        // On Linux this must be a positive number of kilobytes.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[test]
    fn small_end_to_end_run_recovers_byte_identically() {
        let scale = Scale {
            offers: 600,
            merchants: 12,
            leaves: [1, 2, 1, 1],
            products_per_category: 12,
            ..Scale::default()
        };
        let opts = IngestBenchOpts {
            batch_size: 8,
            writers: 4,
            baseline_offers: 200,
            scenario: "mixed".to_string(),
            shards: 2,
            ..IngestBenchOpts::default()
        };
        let dir = std::env::temp_dir().join(format!("pse_ingest_bench_{}", std::process::id()));
        let run = run_ingest_bench(&scale, &opts, &dir);
        assert_eq!(run.grouped.offers, 600);
        assert_eq!(run.baseline.offers, 200);
        assert!(run.grouped.commits >= 600 / 8);
        assert!(run.recovery_equal, "recovered state must equal the live store");
        assert!(run.products > 0);
        let rendered = render_ingest_bench(&run);
        assert!(rendered.contains("grouped"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
