//! Criterion micro/meso benchmarks for every pipeline component, organized
//! by the table/figure whose regeneration they support (quality numbers
//! come from the `experiments` binary; these benches track the *cost* of
//! each stage).

use criterion::{criterion_group, BatchSize, Criterion};
use std::hint::black_box;

use pse_bench::{build_world, computing_offers, html_provider, Scale};
use pse_core::Offer;
use pse_datagen::World;
use pse_synthesis::{OfflineLearner, RuntimePipeline, SpecProvider};
use pse_text::{jaccard_bags, jensen_shannon, BagOfWords};

fn bench_world() -> World {
    let mut scale = Scale::smoke();
    scale.offers = 2_000;
    build_world(&scale)
}

/// Substrate costs: tokenization, divergences, string similarity.
fn bench_text(c: &mut Criterion) {
    let mut g = c.benchmark_group("text");
    let a = BagOfWords::from_values(["Serial ATA 300", "IDE 133", "SCSI Ultra 320", "SATA 150"]);
    let b = BagOfWords::from_values(["SATA-300 mb/s", "IDE-133 mb/s", "SCSI 320 mb/s"]);
    g.bench_function("jensen_shannon", |bench| {
        bench.iter(|| jensen_shannon(black_box(&a), black_box(&b)))
    });
    g.bench_function("jaccard", |bench| bench.iter(|| jaccard_bags(black_box(&a), black_box(&b))));
    g.bench_function("tokenize_title", |bench| {
        bench.iter(|| {
            pse_text::tokens(black_box("Hitachi HDT725050VLA360 500GB SATA-300 7200rpm Hard Drive"))
        })
    });
    g.bench_function("soft_tfidf", |bench| {
        let mut corpus = pse_text::tfidf::TfIdfCorpus::new();
        corpus.add_document(&a);
        corpus.add_document(&b);
        let soft = pse_text::SoftTfIdf::new(corpus);
        bench.iter(|| {
            soft.similarity(
                black_box("Seagate Barracuda 7200.10"),
                black_box("Segate Baracuda 7200"),
            )
        })
    });

    // Cosine kernel: the historical string path (re-weights both BTreeMap
    // vectors per call) vs the interned merge-join over pre-weighted
    // SparseVecs — the exact trade the matchers now make.
    let mut corpus = pse_text::tfidf::TfIdfCorpus::new();
    corpus.add_document(&a);
    corpus.add_document(&b);
    g.bench_function("cosine/btreemap", |bench| {
        bench.iter(|| corpus.cosine(black_box(&a), black_box(&b)))
    });
    let value_a = "Serial ATA 300 IDE 133 SCSI Ultra 320 SATA 150";
    let value_b = "SATA-300 mb/s IDE-133 mb/s SCSI 320 mb/s";
    let mut builder = pse_text::InternerBuilder::new();
    let ra = builder.tokenize(value_a);
    let rb = builder.tokenize(value_b);
    let mut cb = pse_text::InternedCorpusBuilder::new();
    cb.add_document(ra.iter().copied());
    cb.add_document(rb.iter().copied());
    let interner = builder.finalize();
    let icorpus = cb.finalize(&interner);
    let counts_of = |raw: &[u32]| {
        let mut m = std::collections::HashMap::new();
        for &p in raw {
            *m.entry(p).or_insert(0u64) += 1;
        }
        pse_text::SparseCounts::from_unsorted(
            m.into_iter().map(|(p, c)| (interner.sym(p), c)).collect(),
        )
    };
    let va = icorpus.weight_counts(&counts_of(&ra));
    let vb = icorpus.weight_counts(&counts_of(&rb));
    g.bench_function("cosine/interned", |bench| {
        bench.iter(|| pse_text::cosine_sparse(black_box(&va), black_box(&vb)))
    });
    g.finish();
}

/// The interned text fast paths against their string-path references: the
/// DUMAS SoftTFIDF matrix build (per-corpus tokenization, pre-weighted
/// docs, Jaro–Winkler memo) and the title matcher's inverted-index
/// candidate blocking. Both pairs produce byte-identical outputs (pinned
/// by equivalence tests), so only time may differ.
fn bench_text_kernels(c: &mut Criterion) {
    use pse_baselines::DumasMatcher;
    use pse_synthesis::TitleMatcher;
    let world = bench_world();
    let offers = computing_offers(&world);
    let provider = html_provider(&world);
    let specs: Vec<pse_core::Spec> = world.offers.iter().map(|o| provider.spec(o)).collect();
    let cached = {
        let specs = specs.clone();
        pse_synthesis::FnProvider(move |o: &Offer| specs[o.id.index()].clone())
    };
    let mut g = c.benchmark_group("text");
    g.sample_size(10);
    g.bench_function("softtfidf_matrix/fast", |bench| {
        bench.iter(|| {
            DumasMatcher::new().score_candidates(
                &world.catalog,
                black_box(&offers),
                &world.historical,
                &cached,
            )
        })
    });
    g.bench_function("softtfidf_matrix/naive", |bench| {
        bench.iter(|| {
            DumasMatcher::new().score_candidates_reference(
                &world.catalog,
                black_box(&offers),
                &world.historical,
                &cached,
            )
        })
    });
    let matcher = TitleMatcher::new(&world.catalog);
    g.bench_function("matcher_block/blocked", |bench| {
        bench.iter(|| {
            world.offers.iter().filter_map(|o| matcher.match_offer(o, &specs[o.id.index()])).count()
        })
    });
    g.bench_function("matcher_block/naive", |bench| {
        bench.iter(|| {
            world
                .offers
                .iter()
                .filter_map(|o| matcher.match_offer_naive(o, &specs[o.id.index()]))
                .count()
        })
    });
    g.finish();
}

/// Landing-page parsing and attribute extraction (the run-time pipeline's
/// first stage; feeds every table and figure).
fn bench_extraction(c: &mut Criterion) {
    let world = bench_world();
    let page = world.landing_page(world.offers[0].id);
    let mut g = c.benchmark_group("extraction");
    g.bench_function("parse_landing_page", |bench| {
        bench.iter(|| pse_html::parse(black_box(&page)))
    });
    g.bench_function("extract_pairs", |bench| {
        bench.iter(|| pse_extract::extract_pairs(black_box(&page)))
    });
    g.bench_function("render_landing_page", |bench| {
        bench.iter(|| world.landing_page(black_box(world.offers[0].id)))
    });
    g.finish();
}

/// Hungarian matching (DUMAS substrate, Figure 8).
fn bench_assignment(c: &mut Criterion) {
    use pse_assignment::{hungarian_max_matching, Matrix};
    use rand::{RngExt, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let m = Matrix::from_fn(12, 12, |_, _| rng.random::<f64>());
    c.bench_function("hungarian_12x12", |bench| {
        bench.iter(|| hungarian_max_matching(black_box(&m)))
    });
}

/// Value fusion (Table 2's last stage).
fn bench_fusion(c: &mut Criterion) {
    let values = vec![
        "Microsoft Windows Vista",
        "Windows Vista",
        "Microsoft Vista",
        "Windows Vista Home",
        "Microsoft Windows Vista",
    ];
    c.bench_function("fuse_values_5", |bench| {
        bench.iter(|| pse_synthesis::runtime::fuse_values(black_box(&values)))
    });
}

/// Offline learning end to end at smoke scale (Tables 2–4, Figures 6–9).
fn bench_offline(c: &mut Criterion) {
    let world = bench_world();
    let mut g = c.benchmark_group("offline");
    g.sample_size(10);
    g.bench_function("learn_smoke_world", |bench| {
        bench.iter_batched(
            || (),
            |_| {
                let provider = html_provider(&world);
                OfflineLearner::new().learn(
                    &world.catalog,
                    &world.offers,
                    &world.historical,
                    &provider,
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Run-time pipeline throughput (Table 2).
fn bench_runtime(c: &mut Criterion) {
    let world = bench_world();
    let provider = html_provider(&world);
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let pipeline = RuntimePipeline::new(outcome.correspondences);
    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10);
    g.bench_function("process_unmatched_offers", |bench| {
        bench.iter(|| pipeline.process(&world.catalog, black_box(&unmatched), &provider))
    });
    g.finish();
}

/// Baseline matcher costs (Figures 8 and 9).
fn bench_baselines(c: &mut Criterion) {
    use pse_baselines::{ComaConfig, ComaMatcher, ComaStrategy, DumasMatcher, NaiveBayesMatcher};
    let world = bench_world();
    let offers = computing_offers(&world);
    let provider = html_provider(&world);
    // Pre-extract specs once; matcher cost dominates with a cached provider.
    let specs: Vec<pse_core::Spec> = world.offers.iter().map(|o| provider.spec(o)).collect();
    let cached = pse_synthesis::FnProvider(move |o: &Offer| specs[o.id.index()].clone());
    let mut g = c.benchmark_group("baselines");
    g.sample_size(10);
    g.bench_function("dumas", |bench| {
        bench.iter(|| {
            DumasMatcher::new().score_candidates(
                &world.catalog,
                black_box(&offers),
                &world.historical,
                &cached,
            )
        })
    });
    g.bench_function("naive_bayes", |bench| {
        bench.iter(|| {
            NaiveBayesMatcher::new().score_candidates(&world.catalog, black_box(&offers), &cached)
        })
    });
    g.bench_function("coma_combined", |bench| {
        bench.iter(|| {
            ComaMatcher::new(ComaConfig::new(ComaStrategy::Combined)).score_candidates(
                &world.catalog,
                black_box(&offers),
                &cached,
            )
        })
    });
    g.finish();
}

/// World generation itself (the substitute for the Bing Shopping corpus).
fn bench_datagen(c: &mut Criterion) {
    let mut g = c.benchmark_group("datagen");
    g.sample_size(10);
    g.bench_function("generate_smoke_world", |bench| {
        bench.iter(|| {
            let mut scale = Scale::smoke();
            scale.offers = 2_000;
            build_world(black_box(&scale))
        })
    });
    g.finish();
}

/// The four `pse-par` hot paths, 1 worker vs N workers. Results are pure
/// wall-clock comparisons — outputs are byte-identical by construction
/// (see the `determinism_par` integration test), so only time may differ.
fn bench_par(c: &mut Criterion) {
    use pse_baselines::{ComaConfig, ComaMatcher, ComaStrategy, DumasMatcher, NaiveBayesMatcher};
    use pse_core::OfferId;
    use pse_eval::correspondence::{labeled_curve, LabeledCurve};

    let world = bench_world();
    let threads = pse_par::current_threads().max(2);
    let page_ids: Vec<OfferId> = world.offers.iter().map(|o| o.id).collect();
    let provider = html_provider(&world);
    let outcome =
        OfflineLearner::new().learn(&world.catalog, &world.offers, &world.historical, &provider);
    let pipeline = RuntimePipeline::new(outcome.correspondences);
    let unmatched: Vec<Offer> = world
        .offers
        .iter()
        .filter(|o| world.historical.product_of(o.id).is_none())
        .cloned()
        .collect();
    let offers = computing_offers(&world);
    let specs: Vec<pse_core::Spec> = world.offers.iter().map(|o| provider.spec(o)).collect();
    let cached = pse_synthesis::FnProvider(move |o: &Offer| specs[o.id.index()].clone());

    let mut g = c.benchmark_group("par");
    g.sample_size(10);
    for (suffix, t) in [("t1", 1), ("tN", threads)] {
        g.bench_function(&format!("offline_learn/{suffix}"), |bench| {
            bench.iter(|| {
                pse_par::with_threads(t, || {
                    let provider = html_provider(&world);
                    OfflineLearner::new().learn(
                        &world.catalog,
                        &world.offers,
                        &world.historical,
                        &provider,
                    )
                })
            })
        });
        g.bench_function(&format!("datagen_pages/{suffix}"), |bench| {
            bench.iter(|| pse_par::with_threads(t, || world.landing_pages(black_box(&page_ids))))
        });
        g.bench_function(&format!("runtime_process/{suffix}"), |bench| {
            bench.iter(|| {
                pse_par::with_threads(t, || {
                    pipeline.process(&world.catalog, black_box(&unmatched), &provider)
                })
            })
        });
        g.bench_function(&format!("baseline_sweep/{suffix}"), |bench| {
            bench.iter(|| {
                pse_par::with_threads(t, || {
                    let tasks: Vec<Box<dyn Fn() -> LabeledCurve + Sync + '_>> = vec![
                        Box::new(|| {
                            let s = DumasMatcher::new().score_candidates(
                                &world.catalog,
                                &offers,
                                &world.historical,
                                &cached,
                            );
                            labeled_curve("DUMAS", &s, &world.truth)
                        }),
                        Box::new(|| {
                            let s = NaiveBayesMatcher::new().score_candidates(
                                &world.catalog,
                                &offers,
                                &cached,
                            );
                            labeled_curve("NB", &s, &world.truth)
                        }),
                        Box::new(|| {
                            let s = ComaMatcher::new(ComaConfig::new(ComaStrategy::Combined))
                                .score_candidates(&world.catalog, &offers, &cached);
                            labeled_curve("COMA", &s, &world.truth)
                        }),
                    ];
                    pse_par::par_map(&tasks, |task| task())
                })
            })
        });
    }
    g.finish();
}

/// Summarize the `par/*` results (per path, the 1-thread and N-thread
/// medians and the speedup) and the `text/*` fast-vs-naive pairs into
/// BENCH_par.json at the workspace root. The write is read-modify-write:
/// keys other producers merged into the file (e.g. the `incremental` replay
/// written by the experiments binary) are preserved.
fn write_bench_par_json(threads: usize) {
    use serde_json::Value;
    let results = criterion::all_results();
    let median_of = |id: &str| results.iter().find(|r| r.id == id).map(|r| r.median_ns);
    let mut paths = Vec::new();
    for path in ["offline_learn", "datagen_pages", "runtime_process", "baseline_sweep"] {
        let (Some(t1), Some(tn)) =
            (median_of(&format!("par/{path}/t1")), median_of(&format!("par/{path}/tN")))
        else {
            continue;
        };
        paths.push(Value::Object(vec![
            ("path".to_string(), Value::Str(path.to_string())),
            ("t1_ns".to_string(), Value::F64(t1)),
            ("tn_ns".to_string(), Value::F64(tn)),
            ("speedup".to_string(), Value::F64(t1 / tn)),
        ]));
    }
    let mut kernels = Vec::new();
    for (name, naive, fast) in [
        ("softtfidf_matrix", "text/softtfidf_matrix/naive", "text/softtfidf_matrix/fast"),
        ("matcher_block", "text/matcher_block/naive", "text/matcher_block/blocked"),
        ("cosine", "text/cosine/btreemap", "text/cosine/interned"),
    ] {
        let (Some(n), Some(f)) = (median_of(naive), median_of(fast)) else {
            continue;
        };
        kernels.push(Value::Object(vec![
            ("kernel".to_string(), Value::Str(name.to_string())),
            ("naive_ns".to_string(), Value::F64(n)),
            ("fast_ns".to_string(), Value::F64(f)),
            ("speedup".to_string(), Value::F64(n / f)),
        ]));
    }
    if paths.is_empty() && kernels.is_empty() {
        return;
    }
    let dest = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par.json");
    let mut fields: Vec<(String, Value)> = match std::fs::read_to_string(dest)
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
    {
        Some(Value::Object(fields)) => fields,
        _ => Vec::new(),
    };
    let mut set = |key: &str, val: Value| match fields.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = val,
        None => fields.push((key.to_string(), val)),
    };
    set("git_commit", Value::Str(pse_bench::git_commit()));
    set("threads", Value::U64(threads as u64));
    set("pse_threads_env", std::env::var("PSE_THREADS").map(Value::Str).unwrap_or(Value::Null));
    // Record the host's real parallelism: on a single-core machine the
    // tN numbers measure executor overhead, not speedup.
    let host_cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    set("host_cpus", Value::U64(host_cpus as u64));
    if !paths.is_empty() {
        set("paths", Value::Array(paths));
    }
    if !kernels.is_empty() {
        set("text", Value::Array(kernels));
    }
    let out = format!(
        "{}\n",
        serde_json::to_string_pretty(&Value::Object(fields)).expect("bench summary serializes")
    );
    if let Err(e) = std::fs::write(dest, out) {
        eprintln!("could not write BENCH_par.json: {e}");
    } else {
        println!("wrote {dest}");
    }
}

criterion_group!(
    benches,
    bench_text,
    bench_text_kernels,
    bench_extraction,
    bench_assignment,
    bench_fusion,
    bench_offline,
    bench_runtime,
    bench_baselines,
    bench_datagen,
    bench_par,
);

fn main() {
    benches();
    write_bench_par_json(pse_par::current_threads().max(2));
}
