//! Labeling and precision-at-coverage curves for attribute correspondences.
//!
//! Section 5.2's protocol: take a matcher's scored output, exclude
//! name-identity candidates (they are the training signal, not a test),
//! label each remaining candidate correct/incorrect, and report precision
//! as a function of coverage as the score threshold θ sweeps. Appendix B:
//! at equal precision, higher coverage implies higher relative recall.

use pse_datagen::GroundTruth;
use pse_ml::metrics::{pr_curve, PrPoint};
use pse_synthesis::ScoredCandidate;
use serde::{Deserialize, Serialize};

/// A labeled precision/coverage curve with its provenance counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LabeledCurve {
    /// Matcher name (for reports).
    pub name: String,
    /// Candidates evaluated (after excluding name identities).
    pub evaluated: usize,
    /// Of those, how many are correct per the oracle.
    pub correct: usize,
    /// The precision-at-coverage curve, decreasing threshold.
    pub points: Vec<PrPoint>,
}

/// Label candidates against the oracle. Name-identity candidates are
/// excluded, mirroring the paper's evaluation-sample construction.
pub fn label_candidates(candidates: &[ScoredCandidate], truth: &GroundTruth) -> Vec<(f64, bool)> {
    candidates
        .iter()
        .filter(|c| !c.is_name_identity)
        .map(|c| {
            let correct = truth.correspondence_correct(
                &c.catalog_attribute,
                &c.merchant_attribute,
                c.merchant,
                c.category,
            );
            (c.score, correct)
        })
        .collect()
}

/// Build a named precision-at-coverage curve from scored candidates.
pub fn labeled_curve(
    name: impl Into<String>,
    candidates: &[ScoredCandidate],
    truth: &GroundTruth,
) -> LabeledCurve {
    let labeled = label_candidates(candidates, truth);
    let correct = labeled.iter().filter(|(_, c)| *c).count();
    LabeledCurve {
        name: name.into(),
        evaluated: labeled.len(),
        correct,
        points: pr_curve(&labeled),
    }
}

impl LabeledCurve {
    /// Precision at (or just past) the given coverage, if the curve reaches
    /// it.
    pub fn precision_at(&self, coverage: usize) -> Option<f64> {
        self.points.iter().find(|p| p.coverage >= coverage).map(|p| p.precision)
    }

    /// Maximum coverage the matcher achieved.
    pub fn max_coverage(&self) -> usize {
        self.points.last().map_or(0, |p| p.coverage)
    }

    /// Overall precision over everything the matcher output.
    pub fn overall_precision(&self) -> f64 {
        if self.evaluated == 0 {
            0.0
        } else {
            self.correct as f64 / self.evaluated as f64
        }
    }

    /// Coverage achieved at (or above) a target precision: the largest
    /// coverage whose prefix precision is ≥ `precision`.
    pub fn coverage_at_precision(&self, precision: f64) -> usize {
        self.points
            .iter()
            .filter(|p| p.precision >= precision)
            .map(|p| p.coverage)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_core::{CategoryId, MerchantId};

    fn truth() -> GroundTruth {
        let mut t = GroundTruth::default();
        t.attr_map.insert((MerchantId(0), CategoryId(0), "rpm".into()), Some("Speed".into()));
        t.attr_map.insert((MerchantId(0), CategoryId(0), "speed".into()), Some("Speed".into()));
        t
    }

    fn candidate(ap: &str, ao: &str, score: f64, identity: bool) -> ScoredCandidate {
        ScoredCandidate {
            catalog_attribute: ap.into(),
            merchant_attribute: ao.into(),
            merchant: MerchantId(0),
            category: CategoryId(0),
            score,
            is_name_identity: identity,
        }
    }

    #[test]
    fn labels_against_oracle_and_skips_identities() {
        let candidates = vec![
            candidate("Speed", "rpm", 0.9, false),    // correct
            candidate("Capacity", "rpm", 0.8, false), // wrong
            candidate("Speed", "speed", 1.0, true),   // identity: excluded
        ];
        let labeled = label_candidates(&candidates, &truth());
        assert_eq!(labeled.len(), 2);
        assert_eq!(labeled[0], (0.9, true));
        assert_eq!(labeled[1], (0.8, false));
    }

    #[test]
    fn curve_statistics() {
        let candidates =
            vec![candidate("Speed", "rpm", 0.9, false), candidate("Capacity", "rpm", 0.8, false)];
        let curve = labeled_curve("test", &candidates, &truth());
        assert_eq!(curve.evaluated, 2);
        assert_eq!(curve.correct, 1);
        assert_eq!(curve.max_coverage(), 2);
        assert_eq!(curve.precision_at(1), Some(1.0));
        assert_eq!(curve.precision_at(2), Some(0.5));
        assert_eq!(curve.precision_at(3), None);
        assert!((curve.overall_precision() - 0.5).abs() < 1e-12);
        assert_eq!(curve.coverage_at_precision(0.9), 1);
        assert_eq!(curve.coverage_at_precision(0.4), 2);
        assert_eq!(curve.coverage_at_precision(1.1), 0);
    }
}
