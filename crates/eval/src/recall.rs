//! Attribute recall by offer-set size (Table 4).
//!
//! The paper's protocol: sample synthesized products with ≥ 10 offers and
//! with < 10 offers; for each product, manually pool the attributes
//! mentioned across its offers' merchant pages (mapped to catalog
//! vocabulary) as ground truth `Y`; recall is `|X ∩ Y| / |Y|` where `X` is
//! the set of synthesized attributes. Our oracle replaces the manual pass:
//! it reads each offer's page specification and maps merchant attributes
//! through the true attribute map.

use std::collections::HashSet;

use pse_datagen::World;
use pse_synthesis::SynthesizedProduct;
use pse_text::normalize::normalize_attribute_name;
use serde::{Deserialize, Serialize};

use crate::synthesis_eval::{evaluate_product, SynthesisQuality};

/// Table 4 for one offer-set-size bucket.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecallBucket {
    /// Products in the bucket.
    pub products: usize,
    /// Synthesized attributes that appear in the ground-truth pool.
    pub recalled: usize,
    /// Size of the ground-truth attribute pool.
    pub pool: usize,
    /// Total pooled attribute-value pairs across offers (the paper reports
    /// 84.6 vs 9 per product for the two buckets).
    pub pooled_pairs: usize,
    /// Total synthesized attributes (the paper reports 13.3 vs 3.1).
    pub synthesized_attrs: usize,
    /// Precision metrics over the same bucket.
    pub quality: SynthesisQuality,
}

impl RecallBucket {
    /// Attribute recall `|X ∩ Y| / |Y|`.
    pub fn recall(&self) -> f64 {
        if self.pool == 0 {
            0.0
        } else {
            self.recalled as f64 / self.pool as f64
        }
    }

    /// Mean pooled attribute-value pairs per product.
    pub fn avg_pooled_pairs(&self) -> f64 {
        if self.products == 0 {
            0.0
        } else {
            self.pooled_pairs as f64 / self.products as f64
        }
    }

    /// Mean synthesized attributes per product.
    pub fn avg_synthesized(&self) -> f64 {
        if self.products == 0 {
            0.0
        } else {
            self.synthesized_attrs as f64 / self.products as f64
        }
    }
}

/// Table 4: the two buckets.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RecallReport {
    /// Products with at least `threshold` offers.
    pub large: RecallBucket,
    /// Products with fewer than `threshold` offers.
    pub small: RecallBucket,
    /// The bucket threshold (10 in the paper).
    pub threshold: usize,
}

/// Compute the Table 4 report over synthesized products.
pub fn recall_report(
    world: &World,
    products: &[SynthesizedProduct],
    threshold: usize,
) -> RecallReport {
    let mut report = RecallReport { threshold, ..Default::default() };
    for product in products {
        let bucket =
            if product.offers.len() >= threshold { &mut report.large } else { &mut report.small };
        evaluate_into(world, product, bucket);
    }
    report
}

fn evaluate_into(world: &World, product: &SynthesizedProduct, bucket: &mut RecallBucket) {
    bucket.products += 1;
    bucket.synthesized_attrs += product.spec.len();

    // Ground-truth pool: catalog attributes mentioned (under any merchant
    // name) on the member offers' pages — what a labeler would find by
    // inspecting each offer, including bullet-formatted pages.
    let mut pool: HashSet<String> = HashSet::new();
    let mut pooled_pairs = 0usize;
    for &oid in &product.offers {
        let offer = &world.offers[oid.index()];
        let Some(category) = offer.category else { continue };
        let page = world.page_spec(oid);
        pooled_pairs += page.len();
        for pair in page.iter() {
            let norm = normalize_attribute_name(&pair.name);
            if let Some(Some(catalog_attr)) =
                world.truth.catalog_attribute(offer.merchant, category, &norm)
            {
                pool.insert(normalize_attribute_name(catalog_attr));
            }
        }
    }
    bucket.pooled_pairs += pooled_pairs;
    bucket.pool += pool.len();

    let synthesized: HashSet<String> =
        product.spec.iter().map(|p| normalize_attribute_name(&p.name)).collect();
    bucket.recalled += synthesized.intersection(&pool).count();

    let q = evaluate_product(world, product);
    bucket.quality.products += q.products;
    bucket.quality.correct_products += q.correct_products;
    bucket.quality.attributes += q.attributes;
    bucket.quality.correct_attributes += q.correct_attributes;
    bucket.quality.impure_clusters += q.impure_clusters;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_datagen::WorldConfig;
    use pse_synthesis::{FnProvider, OfflineLearner, RuntimePipeline};

    #[test]
    fn report_buckets_and_recall_bounds() {
        let world = World::generate(WorldConfig::tiny());
        let provider = FnProvider(|o: &pse_core::Offer| world.page_spec(o.id));
        let outcome = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &provider,
        );
        let result = RuntimePipeline::new(outcome.correspondences).process(
            &world.catalog,
            &world.offers,
            &provider,
        );
        let report = recall_report(&world, &result.products, 3);
        let total = report.large.products + report.small.products;
        assert_eq!(total, result.products.len());
        for b in [&report.large, &report.small] {
            if b.products > 0 {
                let r = b.recall();
                assert!((0.0..=1.0).contains(&r), "recall {r}");
                assert!(b.pool > 0);
            }
        }
        // Larger offer sets pool more evidence per product.
        if report.large.products > 0 && report.small.products > 0 {
            assert!(report.large.avg_pooled_pairs() > report.small.avg_pooled_pairs());
        }
    }

    #[test]
    fn empty_product_list() {
        let world = World::generate(WorldConfig::tiny());
        let report = recall_report(&world, &[], 10);
        assert_eq!(report.large.products, 0);
        assert_eq!(report.small.recall(), 0.0);
    }
}
