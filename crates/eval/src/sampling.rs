//! Evaluation sampling, per the paper's §5 methodology.
//!
//! The paper never labels full outputs; it samples them at a 95% confidence
//! level using interval estimation (Mendenhall \[14\]): 384 correspondences
//! per configuration in §5.2, and 400 products / 1,447 attribute pairs in
//! §5.1. This module provides the same machinery — the sample-size
//! calculation for estimating a proportion, a seeded sampler, and the
//! resulting confidence interval — so scaled-up runs can label samples
//! instead of full outputs, exactly like the paper's labelers did.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Sample size needed to estimate a proportion within `margin` at the
/// given `confidence` (normal approximation, worst-case p = 0.5), capped
/// by the population size via finite-population correction.
///
/// `required_sample_size(usize::MAX as f64, 0.95, 0.05)` ≈ 384 — the
/// paper's sample size.
pub fn required_sample_size(population: f64, confidence: f64, margin: f64) -> usize {
    let z = z_score(confidence);
    let n0 = (z * z * 0.25) / (margin * margin);
    if population.is_finite() && population > 0.0 {
        // Finite-population correction.
        (n0 / (1.0 + (n0 - 1.0) / population)).ceil() as usize
    } else {
        n0.ceil() as usize
    }
}

/// Two-sided z-score for common confidence levels (linear interpolation in
/// between; clamped to [0.5, 0.999]).
pub fn z_score(confidence: f64) -> f64 {
    const TABLE: [(f64, f64); 7] = [
        (0.50, 0.674),
        (0.80, 1.282),
        (0.90, 1.645),
        (0.95, 1.960),
        (0.98, 2.326),
        (0.99, 2.576),
        (0.999, 3.291),
    ];
    let c = confidence.clamp(0.50, 0.999);
    let mut prev = TABLE[0];
    for &(cc, zz) in &TABLE[1..] {
        if c <= cc {
            let t = (c - prev.0) / (cc - prev.0);
            return prev.1 + t * (zz - prev.1);
        }
        prev = (cc, zz);
    }
    prev.1
}

/// Draw a deterministic uniform sample of `k` items (all items when the
/// population is smaller than `k`).
pub fn sample<T: Clone>(items: &[T], k: usize, seed: u64) -> Vec<T> {
    if items.len() <= k {
        return items.to_vec();
    }
    let mut idx: Vec<usize> = (0..items.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    idx[..k].iter().map(|&i| items[i].clone()).collect()
}

/// A proportion estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProportionEstimate {
    /// Point estimate (successes / sample size).
    pub p: f64,
    /// Half-width of the interval at the requested confidence.
    pub margin: f64,
    /// Sample size the estimate is based on.
    pub n: usize,
}

impl ProportionEstimate {
    /// Estimate a proportion from a labeled sample.
    pub fn from_sample(successes: usize, n: usize, confidence: f64) -> Self {
        if n == 0 {
            return Self { p: 0.0, margin: 1.0, n: 0 };
        }
        let p = successes as f64 / n as f64;
        let z = z_score(confidence);
        let margin = z * (p * (1.0 - p) / n as f64).sqrt();
        Self { p, margin, n }
    }

    /// The interval as `(low, high)`, clamped to [0, 1].
    pub fn interval(&self) -> (f64, f64) {
        ((self.p - self.margin).max(0.0), (self.p + self.margin).min(1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sample_size_is_384() {
        assert_eq!(required_sample_size(f64::INFINITY, 0.95, 0.05), 385);
        // With a large finite population, 384 (the paper's number).
        let n = required_sample_size(100_000.0, 0.95, 0.05);
        assert!((383..=385).contains(&n), "n={n}");
    }

    #[test]
    fn small_populations_are_labeled_fully() {
        let n = required_sample_size(50.0, 0.95, 0.05);
        assert!(n <= 50);
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(sample(&items, 100, 1).len(), 10);
    }

    #[test]
    fn z_scores_are_monotone() {
        let zs: Vec<f64> = [0.5, 0.8, 0.9, 0.95, 0.99, 0.999].iter().map(|c| z_score(*c)).collect();
        for w in zs.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!((z_score(0.95) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn sampling_is_deterministic_and_uniformish() {
        let items: Vec<u32> = (0..1000).collect();
        let a = sample(&items, 100, 7);
        let b = sample(&items, 100, 7);
        assert_eq!(a, b);
        let c = sample(&items, 100, 8);
        assert_ne!(a, c);
        // No duplicates.
        let mut d = a.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), a.len());
    }

    #[test]
    fn proportion_intervals() {
        let e = ProportionEstimate::from_sample(92, 100, 0.95);
        assert!((e.p - 0.92).abs() < 1e-12);
        let (lo, hi) = e.interval();
        assert!(lo > 0.85 && hi < 0.98);
        let empty = ProportionEstimate::from_sample(0, 0, 0.95);
        assert_eq!(empty.interval(), (0.0, 1.0));
    }
}
