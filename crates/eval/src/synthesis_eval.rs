//! End-to-end quality of synthesized products (Tables 2 and 3).
//!
//! The paper's labelers located each synthesized product on the
//! manufacturer's site and checked every attribute–value pair against the
//! manufacturer specification; a product counts as correct only when *all*
//! its pairs are correct (strict product precision). Our oracle plays the
//! manufacturer: the true product behind a cluster is the one most of its
//! member offers were derived from, and a pair is correct when its value is
//! equivalent to that product's value for the attribute.

use std::collections::HashMap;

use pse_core::{CategoryId, ProductId};
use pse_datagen::World;
use pse_synthesis::SynthesizedProduct;
use pse_text::normalize::values_equivalent;
use serde::{Deserialize, Serialize};

/// Quality metrics for a set of synthesized products.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SynthesisQuality {
    /// Products evaluated.
    pub products: usize,
    /// Products whose every pair was correct.
    pub correct_products: usize,
    /// Attribute–value pairs evaluated.
    pub attributes: usize,
    /// Pairs labeled correct.
    pub correct_attributes: usize,
    /// Clusters whose members disagreed about the true product (cluster
    /// impurity — the labeler would have called these invalid products).
    pub impure_clusters: usize,
}

impl SynthesisQuality {
    /// Attribute precision (Table 2).
    pub fn attribute_precision(&self) -> f64 {
        ratio(self.correct_attributes, self.attributes)
    }

    /// Strict product precision (Table 2).
    pub fn product_precision(&self) -> f64 {
        ratio(self.correct_products, self.products)
    }

    /// Mean synthesized attributes per product (Table 3's first row).
    pub fn avg_attributes_per_product(&self) -> f64 {
        if self.products == 0 {
            0.0
        } else {
            self.attributes as f64 / self.products as f64
        }
    }

    fn merge(&mut self, other: &SynthesisQuality) {
        self.products += other.products;
        self.correct_products += other.correct_products;
        self.attributes += other.attributes;
        self.correct_attributes += other.correct_attributes;
        self.impure_clusters += other.impure_clusters;
    }
}

fn ratio(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// The true product behind a synthesized cluster: the product most member
/// offers were derived from, with ties broken by lower id (determinism).
pub fn true_product_of(world: &World, product: &SynthesizedProduct) -> Option<(ProductId, bool)> {
    let mut counts: HashMap<ProductId, usize> = HashMap::new();
    for &offer in &product.offers {
        *counts.entry(world.truth.product_of(offer)).or_insert(0) += 1;
    }
    let total: usize = counts.values().sum();
    let (&winner, &n) = counts.iter().max_by_key(|(pid, n)| (**n, std::cmp::Reverse(**pid)))?;
    Some((winner, n == total))
}

/// Label one synthesized product against the oracle.
pub fn evaluate_product(world: &World, product: &SynthesizedProduct) -> SynthesisQuality {
    let mut q = SynthesisQuality { products: 1, ..Default::default() };
    let Some((true_pid, pure)) = true_product_of(world, product) else {
        return q;
    };
    if !pure {
        q.impure_clusters = 1;
    }
    let truth_spec = &world.catalog.product(true_pid).spec;
    let mut all_correct = true;
    for pair in product.spec.iter() {
        q.attributes += 1;
        let correct = truth_spec
            .get(&pair.name)
            .map(|tv| values_equivalent(&pair.value, tv))
            .unwrap_or(false);
        if correct {
            q.correct_attributes += 1;
        } else {
            all_correct = false;
        }
    }
    if all_correct && q.attributes > 0 {
        q.correct_products = 1;
    }
    q
}

/// Label a full synthesis run (Table 2).
pub fn evaluate_synthesis(world: &World, products: &[SynthesizedProduct]) -> SynthesisQuality {
    let mut total = SynthesisQuality::default();
    for p in products {
        total.merge(&evaluate_product(world, p));
    }
    total
}

/// Per-top-level-category breakdown (Table 3). Keys are top-level category
/// names in taxonomy order.
pub fn per_top_level(
    world: &World,
    products: &[SynthesizedProduct],
) -> Vec<(String, SynthesisQuality)> {
    let taxonomy = world.catalog.taxonomy();
    let mut by_top: HashMap<CategoryId, SynthesisQuality> = HashMap::new();
    for p in products {
        let top = taxonomy.top_level_of(p.category);
        by_top.entry(top).or_default().merge(&evaluate_product(world, p));
    }
    taxonomy
        .top_levels()
        .map(|t| (t.name.clone(), by_top.remove(&t.id).unwrap_or_default()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pse_datagen::WorldConfig;
    use pse_synthesis::{FnProvider, OfflineLearner, RuntimePipeline};

    fn run_world() -> (World, Vec<SynthesizedProduct>) {
        let world = World::generate(WorldConfig::tiny());
        let provider = FnProvider(|o: &pse_core::Offer| {
            // Direct page specs (no HTML noise) keep this test fast.
            o.spec.clone()
        });
        // Use true page specs for both phases.
        let page_provider = FnProvider(|o: &pse_core::Offer| world.page_spec(o.id));
        let outcome = OfflineLearner::new().learn(
            &world.catalog,
            &world.offers,
            &world.historical,
            &page_provider,
        );
        let _ = provider;
        let pipeline = RuntimePipeline::new(outcome.correspondences);
        let result = pipeline.process(&world.catalog, &world.offers, &page_provider);
        (world, result.products)
    }

    #[test]
    fn end_to_end_quality_is_high_on_clean_world() {
        let (world, products) = run_world();
        assert!(!products.is_empty(), "pipeline synthesized products");
        let q = evaluate_synthesis(&world, &products);
        assert_eq!(q.products, products.len());
        assert!(q.attributes > 0);
        assert!(
            q.attribute_precision() > 0.8,
            "attribute precision {} too low",
            q.attribute_precision()
        );
        // Strict product precision compounds per-attribute errors (paper
        // §5.1: attribute-rich categories score lower); with ~9 attributes
        // per product and ~0.9 attribute precision, 0.9⁹ ≈ 0.4 is expected
        // at this tiny scale (singleton clusters get no fusion redundancy).
        assert!(q.product_precision() > 0.25, "product precision {}", q.product_precision());
    }

    #[test]
    fn per_top_level_partitions_products() {
        let (world, products) = run_world();
        let rows = per_top_level(&world, &products);
        assert_eq!(rows.len(), 4);
        let total: usize = rows.iter().map(|(_, q)| q.products).sum();
        assert_eq!(total, products.len());
    }

    #[test]
    fn wrong_value_breaks_strict_product_precision() {
        let (world, mut products) = run_world();
        let p = &mut products[0];
        // Replace every value with garbage disjoint from the truth.
        let pairs: Vec<(String, String)> =
            p.spec.iter().map(|pair| (pair.name.clone(), "zzz bogus".to_string())).collect();
        p.spec = pse_core::Spec::from_pairs(pairs);
        let q = evaluate_product(&world, &products[0]);
        assert_eq!(q.correct_products, 0);
    }

    #[test]
    fn quality_ratios_handle_empty() {
        let q = SynthesisQuality::default();
        assert_eq!(q.attribute_precision(), 0.0);
        assert_eq!(q.product_precision(), 0.0);
        assert_eq!(q.avg_attributes_per_product(), 0.0);
    }
}
