//! Evaluation harness: the paper's metrics computed against the generator's
//! ground-truth oracle instead of human labelers.
//!
//! * [`correspondence`] — label scored correspondence candidates and build
//!   the precision-at-coverage curves of Section 5.2 (Figures 6–9);
//! * [`synthesis_eval`] — attribute precision / strict product precision of
//!   Tables 2 and 3, overall and per top-level category;
//! * [`recall`] — the attribute-recall protocol of Table 4 (pool of
//!   attributes mentioned on the merchant pages vs synthesized attributes,
//!   split by offer-set size);
//! * [`report`] — plain-text and CSV rendering of experiment outputs.

pub mod correspondence;
pub mod recall;
pub mod report;
pub mod sampling;
pub mod synthesis_eval;

pub use correspondence::{label_candidates, labeled_curve, LabeledCurve};
pub use recall::{recall_report, RecallReport};
pub use report::{Csv, TextTable};
pub use sampling::{required_sample_size, sample, ProportionEstimate};
pub use synthesis_eval::{evaluate_synthesis, per_top_level, SynthesisQuality};
