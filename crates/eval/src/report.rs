//! Plain-text tables and CSV writers for experiment outputs.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = w);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(&mut out, &sep);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        let _ = cols;
        out
    }
}

/// A minimal CSV writer (quotes cells containing separators or quotes).
#[derive(Debug, Clone, Default)]
pub struct Csv {
    buffer: String,
}

impl Csv {
    /// An empty CSV buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record.
    pub fn record<S: AsRef<str>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let mut first = true;
        for cell in cells {
            if !first {
                self.buffer.push(',');
            }
            first = false;
            self.push_cell(cell.as_ref());
        }
        self.buffer.push('\n');
        self
    }

    fn push_cell(&mut self, cell: &str) {
        if cell.contains([',', '"', '\n']) {
            self.buffer.push('"');
            for ch in cell.chars() {
                if ch == '"' {
                    self.buffer.push('"');
                }
                self.buffer.push(ch);
            }
            self.buffer.push('"');
        } else {
            self.buffer.push_str(cell);
        }
    }

    /// The rendered CSV text.
    pub fn as_str(&self) -> &str {
        &self.buffer
    }

    /// Consume into the rendered text.
    pub fn into_string(self) -> String {
        self.buffer
    }
}

/// Format a float with 2 decimal places (the paper's table style).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["Metric", "Value"]);
        t.row(["Input Offers", "856781"]);
        t.row(["Attribute Precision", "0.92"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Metric"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("856781"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["A", "B", "C"]);
        t.row(["x"]);
        assert!(t.render().contains('x'));
    }

    #[test]
    fn csv_quoting() {
        let mut csv = Csv::new();
        csv.record(["a", "b,c", "d\"e"]);
        csv.record(["1", "2", "3"]);
        assert_eq!(csv.as_str(), "a,\"b,c\",\"d\"\"e\"\n1,2,3\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(0.916), "0.92");
        assert_eq!(f3(0.9164), "0.916");
    }
}
