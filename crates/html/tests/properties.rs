//! Property-based tests: the parser and table extractor must be total
//! (never panic) over arbitrary input, and structural invariants must hold.

use proptest::prelude::*;
use pse_html::{extract_tables, parse, NodeData, Tokenizer};

proptest! {
    #[test]
    fn parser_is_total_on_arbitrary_input(s in ".{0,256}") {
        let doc = parse(&s);
        // Traversal covers exactly the arena.
        prop_assert_eq!(doc.descendants(doc.root()).count(), doc.len());
    }

    #[test]
    fn parser_is_total_on_taggy_input(
        s in r"(<[a-z/!]{0,4}[a-z ='\x22]{0,8}>?|[a-z&;#0-9 ]{0,6}){0,24}"
    ) {
        let _ = parse(&s);
        let _: Vec<_> = Tokenizer::tokenize(&s);
    }

    #[test]
    fn tree_is_well_formed(s in ".{0,256}") {
        let doc = parse(&s);
        for id in doc.descendants(doc.root()) {
            for &child in &doc.node(id).children {
                prop_assert_eq!(doc.node(child).parent, Some(id));
            }
        }
        prop_assert!(doc.node(doc.root()).parent.is_none());
        prop_assert!(matches!(doc.node(doc.root()).data, NodeData::Document));
    }

    #[test]
    fn extraction_is_total(s in ".{0,256}") {
        let doc = parse(&s);
        for t in extract_tables(&doc) {
            for row in &t.rows {
                for cell in row {
                    prop_assert!(cell.colspan >= 1);
                }
            }
        }
    }

    #[test]
    fn text_content_is_whitespace_collapsed(s in ".{0,128}") {
        let doc = parse(&s);
        let text = doc.text_content(doc.root());
        prop_assert!(!text.contains("  "), "double space in {text:?}");
        prop_assert!(!text.starts_with(' '));
        prop_assert!(!text.ends_with(' '));
    }

    #[test]
    fn spec_tables_round_trip(
        pairs in prop::collection::vec(("[A-Za-z ]{1,12}", "[A-Za-z0-9 ./]{1,16}"), 1..6)
    ) {
        // Build a table, parse it back, and recover every row.
        let mut html = String::from("<table>");
        for (k, v) in &pairs {
            html.push_str(&format!("<tr><td>{k}</td><td>{v}</td></tr>"));
        }
        html.push_str("</table>");
        let doc = parse(&html);
        let tables = extract_tables(&doc);
        prop_assert_eq!(tables.len(), 1);
        prop_assert_eq!(tables[0].rows.len(), pairs.len());
        for (row, (k, v)) in tables[0].rows.iter().zip(&pairs) {
            prop_assert_eq!(row.len(), 2);
            // Cell text is whitespace-collapsed relative to the input.
            prop_assert_eq!(&row[0].text, &pse_html::dom::collapse_whitespace(k));
            prop_assert_eq!(&row[1].text, &pse_html::dom::collapse_whitespace(v));
        }
    }
}
