//! Tree construction: token stream → [`Document`].
//!
//! Implements a pragmatic subset of the HTML5 tree-building rules — enough
//! to handle the tag soup found on merchant pages:
//!
//! * void elements (`<br>`, `<img>`, …) never nest children;
//! * implied end tags: a new `<tr>` closes an open `<tr>`, `<td>`/`<th>`
//!   close open cells, `<li>` closes `<li>`, `<p>` closes `<p>`, `<option>`
//!   closes `<option>`;
//! * an unmatched end tag is ignored; an end tag matching a non-top open
//!   element pops everything above it;
//! * comments and doctypes are preserved / skipped without error.

use crate::dom::{Document, NodeData, NodeId};
use crate::tokenizer::{Token, Tokenizer};

/// Elements that cannot have content.
fn is_void(name: &str) -> bool {
    matches!(
        name,
        "area"
            | "base"
            | "br"
            | "col"
            | "embed"
            | "hr"
            | "img"
            | "input"
            | "link"
            | "meta"
            | "param"
            | "source"
            | "track"
            | "wbr"
    )
}

/// Tags implicitly closed when `incoming` opens while `open` is on the stack
/// top.
fn implies_end(incoming: &str, open: &str) -> bool {
    match incoming {
        "tr" => matches!(open, "tr" | "td" | "th"),
        "td" | "th" => matches!(open, "td" | "th"),
        "li" => open == "li",
        "p" => open == "p",
        "option" => open == "option",
        "thead" | "tbody" | "tfoot" => {
            matches!(open, "tr" | "td" | "th" | "thead" | "tbody" | "tfoot")
        }
        "table" => matches!(open, "p"),
        _ => false,
    }
}

/// Parse an HTML string into a [`Document`]. Never fails: arbitrary input
/// produces some tree.
///
/// ```
/// use pse_html::parse;
/// let doc = parse("<table><tr><td>Brand<td>Hitachi</table>");
/// assert_eq!(doc.elements_named("td").count(), 2);
/// ```
pub fn parse(input: &str) -> Document {
    let mut doc = Document::new();
    // Stack of open elements: (node id, tag name).
    let mut stack: Vec<(NodeId, String)> = vec![(doc.root(), String::new())];

    for token in Tokenizer::new(input) {
        match token {
            Token::StartTag { name, attrs, self_closing } => {
                // Apply implied end tags.
                while stack.len() > 1 && implies_end(&name, &stack.last().unwrap().1) {
                    stack.pop();
                }
                let parent = stack.last().unwrap().0;
                let id = doc.append(parent, NodeData::Element { name: name.clone(), attrs });
                if !self_closing && !is_void(&name) {
                    stack.push((id, name));
                }
            }
            Token::EndTag { name } => {
                // Find the matching open element (skip the root sentinel).
                if let Some(pos) = stack[1..].iter().rposition(|(_, n)| *n == name) {
                    stack.truncate(pos + 1);
                }
                // Unmatched end tags are ignored.
            }
            Token::Text(text) => {
                if !text.is_empty() {
                    let parent = stack.last().unwrap().0;
                    doc.append(parent, NodeData::Text(text));
                }
            }
            Token::Comment(c) => {
                let parent = stack.last().unwrap().0;
                doc.append(parent, NodeData::Comment(c));
            }
            Token::Doctype(_) => {}
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_tree() {
        let doc = parse("<html><body><p>hi</p></body></html>");
        let p = doc.elements_named("p").next().unwrap();
        assert_eq!(doc.text_content(p), "hi");
        assert!(doc.ancestor_named(p, "body").is_some());
        assert!(doc.ancestor_named(p, "html").is_some());
    }

    #[test]
    fn implied_row_and_cell_ends() {
        // No </td> or </tr> anywhere — the tree must still have 2 rows × 2 cells.
        let doc = parse("<table><tr><td>A<td>1<tr><td>B<td>2</table>");
        let table = doc.elements_named("table").next().unwrap();
        let rows: Vec<_> =
            doc.descendants(table).filter(|id| doc.tag_name(*id) == Some("tr")).collect();
        assert_eq!(rows.len(), 2);
        for row in rows {
            let cells =
                doc.node(row).children.iter().filter(|c| doc.tag_name(**c) == Some("td")).count();
            assert_eq!(cells, 2);
        }
    }

    #[test]
    fn void_elements_do_not_swallow_siblings() {
        let doc = parse("<p>a<br>b</p>");
        let p = doc.elements_named("p").next().unwrap();
        assert_eq!(doc.text_content(p), "a b");
        let br = doc.elements_named("br").next().unwrap();
        assert!(doc.node(br).children.is_empty());
    }

    #[test]
    fn unmatched_end_tags_are_ignored() {
        let doc = parse("</div><p>x</p></span>");
        assert_eq!(doc.elements_named("p").count(), 1);
    }

    #[test]
    fn mismatched_nesting_recovers() {
        let doc = parse("<div><b>bold<i>both</b>italic</i></div>");
        // </b> pops both <i> and <b>; the trailing text lands in <div>.
        let div = doc.elements_named("div").next().unwrap();
        assert_eq!(doc.text_content(div), "bold both italic");
    }

    #[test]
    fn li_and_p_imply_ends() {
        let doc = parse("<ul><li>one<li>two</ul><p>a<p>b");
        assert_eq!(doc.elements_named("li").count(), 2);
        let lis: Vec<_> = doc.elements_named("li").collect();
        assert_eq!(doc.text_content(lis[0]), "one");
        assert_eq!(doc.text_content(lis[1]), "two");
        assert_eq!(doc.elements_named("p").count(), 2);
    }

    #[test]
    fn script_text_is_not_markup() {
        let doc = parse("<script>var x = '<table>';</script><div>real</div>");
        assert_eq!(doc.elements_named("table").count(), 0);
        assert_eq!(doc.elements_named("div").count(), 1);
    }

    #[test]
    fn nested_tables_preserved() {
        let doc = parse("<table><tr><td><table><tr><td>inner</td></tr></table></td></tr></table>");
        assert_eq!(doc.elements_named("table").count(), 2);
        let tds: Vec<_> = doc.elements_named("td").collect();
        assert_eq!(tds.len(), 2);
    }

    #[test]
    fn arbitrary_garbage_never_panics() {
        for s in [
            "",
            "<<<>>>",
            "<table><td></table></td>",
            "&&& <p <p <p>",
            "<!doctype html><!--",
            "<a href=>x",
        ] {
            let _ = parse(s);
        }
    }
}
