//! Logical table extraction from a parsed document.
//!
//! Converts each `<table>` element into a [`Table`]: a list of rows, each a
//! list of [`TableCell`]s with collapsed text. Rows belonging to *nested*
//! tables are attributed to the inner table only, so a specification table
//! inside a layout table is extracted cleanly.

use crate::dom::{Document, NodeData, NodeId};

/// One extracted cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableCell {
    /// Collapsed text content of the cell.
    pub text: String,
    /// Whether the cell was a `<th>`.
    pub is_header: bool,
    /// The `colspan` attribute (1 when absent or invalid).
    pub colspan: u32,
}

/// One extracted table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    /// Rows in document order; each row is its cells in document order.
    pub rows: Vec<Vec<TableCell>>,
}

impl Table {
    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Whether every non-empty row has exactly two cells — the shape the
    /// attribute extractor looks for.
    pub fn is_two_column(&self) -> bool {
        !self.rows.is_empty() && self.rows.iter().all(|r| r.len() == 2)
    }
}

/// Extract every `<table>` in the document, outermost first.
pub fn extract_tables(doc: &Document) -> Vec<Table> {
    doc.elements_named("table").map(|t| extract_table(doc, t)).collect()
}

/// Extract one `<table>` element.
pub fn extract_table(doc: &Document, table: NodeId) -> Table {
    debug_assert_eq!(doc.tag_name(table), Some("table"));
    let mut rows = Vec::new();
    for id in doc.descendants(table) {
        if doc.tag_name(id) != Some("tr") {
            continue;
        }
        // Skip rows of nested tables: their nearest table ancestor is not us.
        if doc.ancestor_named(id, "table") != Some(table) {
            continue;
        }
        let mut cells = Vec::new();
        for &child in &doc.node(id).children {
            let tag = doc.tag_name(child);
            let is_header = tag == Some("th");
            if !(is_header || tag == Some("td")) {
                continue;
            }
            let colspan = doc
                .attr(child, "colspan")
                .and_then(|v| v.trim().parse::<u32>().ok())
                .filter(|&v| v >= 1)
                .unwrap_or(1);
            cells.push(TableCell { text: cell_text(doc, child), is_header, colspan });
        }
        rows.push(cells);
    }
    Table { rows }
}

/// Text of a cell, *excluding* any nested-table content (a layout cell that
/// wraps a whole inner table should not report the inner table's text).
fn cell_text(doc: &Document, cell: NodeId) -> String {
    let mut pieces = Vec::new();
    collect_text_excluding_tables(doc, cell, &mut pieces);
    crate::dom::collapse_whitespace(&pieces.join(" "))
}

fn collect_text_excluding_tables(doc: &Document, id: NodeId, out: &mut Vec<String>) {
    for &child in &doc.node(id).children {
        match &doc.node(child).data {
            NodeData::Text(t) => out.push(t.clone()),
            NodeData::Element { name, .. } if name == "table" => {}
            NodeData::Element { .. } => collect_text_excluding_tables(doc, child, out),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn extracts_spec_table() {
        let doc = parse(
            "<table>\
             <tr><td>Brand</td><td>Hitachi</td></tr>\
             <tr><td>Capacity</td><td>500 GB</td></tr>\
             </table>",
        );
        let tables = extract_tables(&doc);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.num_rows(), 2);
        assert!(t.is_two_column());
        assert_eq!(t.rows[0][0].text, "Brand");
        assert_eq!(t.rows[0][1].text, "Hitachi");
        assert_eq!(t.rows[1][1].text, "500 GB");
    }

    #[test]
    fn header_cells_flagged() {
        let doc = parse("<table><tr><th>Spec</th><th>Value</th></tr></table>");
        let t = &extract_tables(&doc)[0];
        assert!(t.rows[0][0].is_header);
        assert!(t.rows[0][1].is_header);
    }

    #[test]
    fn colspan_parsed_with_fallback() {
        let doc = parse(
            "<table><tr><td colspan=2>Merged</td></tr><tr><td colspan=zero>x</td><td colspan=\"0\">y</td></tr></table>",
        );
        let t = &extract_tables(&doc)[0];
        assert_eq!(t.rows[0][0].colspan, 2);
        assert_eq!(t.rows[1][0].colspan, 1);
        assert_eq!(t.rows[1][1].colspan, 1);
    }

    #[test]
    fn nested_table_rows_belong_to_inner() {
        let doc = parse(
            "<table><tr><td>\
               <table><tr><td>Speed</td><td>7200</td></tr></table>\
             </td></tr></table>",
        );
        let tables = extract_tables(&doc);
        assert_eq!(tables.len(), 2);
        // Outer table: one row, one cell, whose text excludes the inner table.
        assert_eq!(tables[0].num_rows(), 1);
        assert_eq!(tables[0].rows[0][0].text, "");
        // Inner table has the spec row.
        assert_eq!(tables[1].rows[0][0].text, "Speed");
        assert_eq!(tables[1].rows[0][1].text, "7200");
    }

    #[test]
    fn rows_without_cells_are_kept_empty() {
        let doc = parse("<table><tr></tr><tr><td>a</td><td>b</td></tr></table>");
        let t = &extract_tables(&doc)[0];
        assert_eq!(t.num_rows(), 2);
        assert!(t.rows[0].is_empty());
        assert!(!t.is_two_column());
    }

    #[test]
    fn tbody_and_thead_are_transparent() {
        let doc = parse(
            "<table><thead><tr><th>A</th><th>V</th></tr></thead>\
             <tbody><tr><td>Brand</td><td>Sony</td></tr></tbody></table>",
        );
        let t = &extract_tables(&doc)[0];
        assert_eq!(t.num_rows(), 2);
        assert!(t.is_two_column());
    }

    #[test]
    fn markup_inside_cells_contributes_text() {
        let doc =
            parse("<table><tr><td><b>Buffer</b> Size</td><td><span>16</span> MB</td></tr></table>");
        let t = &extract_tables(&doc)[0];
        assert_eq!(t.rows[0][0].text, "Buffer Size");
        assert_eq!(t.rows[0][1].text, "16 MB");
    }

    #[test]
    fn no_tables_yields_empty() {
        let doc = parse("<div><p>no tables here</p></div>");
        assert!(extract_tables(&doc).is_empty());
    }
}
