//! A forgiving HTML tokenizer.
//!
//! Produces a flat stream of [`Token`]s from raw HTML. Malformed input never
//! panics: anything that cannot be interpreted as markup is emitted as text.
//! `<script>` and `<style>` contents are treated as raw text (no tag parsing
//! inside) and skipped over in one token.

use crate::entity::decode_entities;

/// One lexical token of an HTML document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr="v" …>`; `self_closing` when spelled `<name/>`.
    StartTag {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order, values entity-decoded.
        attrs: Vec<(String, String)>,
        /// Whether the tag ended with `/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Lowercased tag name.
        name: String,
    },
    /// A run of character data, entity-decoded.
    Text(String),
    /// `<!-- … -->` contents.
    Comment(String),
    /// `<!DOCTYPE …>` contents.
    Doctype(String),
}

/// Streaming tokenizer over an input string.
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// When set, everything up to `</{raw_until}>` is raw text.
    raw_until: Option<String>,
}

impl<'a> Tokenizer<'a> {
    /// Tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self { input, pos: 0, raw_until: None }
    }

    /// Collect all tokens (convenience for tests and small inputs).
    pub fn tokenize(input: &'a str) -> Vec<Token> {
        Self::new(input).collect()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn next_raw_text(&mut self, end_tag: &str) -> Token {
        // Scan for `</end_tag` case-insensitively.
        let rest = self.rest();
        let needle = format!("</{end_tag}");
        let lower = rest.to_lowercase();
        match lower.find(&needle) {
            Some(idx) => {
                let text = &rest[..idx];
                self.bump(idx);
                self.raw_until = None;
                // Leave the end tag itself for the normal path.
                Token::Text(text.to_string())
            }
            None => {
                let text = rest.to_string();
                self.pos = self.input.len();
                self.raw_until = None;
                Token::Text(text)
            }
        }
    }

    fn next_markup(&mut self) -> Option<Token> {
        let rest = self.rest();
        debug_assert!(rest.starts_with('<'));

        if let Some(comment) = rest.strip_prefix("<!--") {
            let (body, consumed) = match comment.find("-->") {
                Some(end) => (&comment[..end], 4 + end + 3),
                None => (comment, rest.len()),
            };
            let tok = Token::Comment(body.to_string());
            self.bump(consumed);
            return Some(tok);
        }
        if rest.len() >= 2 && (rest.as_bytes()[1] == b'!' || rest.as_bytes()[1] == b'?') {
            // Doctype or processing instruction: skip to '>'.
            let (body, consumed) = match rest.find('>') {
                Some(end) => (&rest[2..end], end + 1),
                None => (&rest[2..], rest.len()),
            };
            let tok = Token::Doctype(body.trim().to_string());
            self.bump(consumed);
            return Some(tok);
        }

        let is_end = rest.as_bytes().get(1) == Some(&b'/');
        let name_start = if is_end { 2 } else { 1 };
        let name_len = rest[name_start..].bytes().take_while(|b| b.is_ascii_alphanumeric()).count();
        if name_len == 0 {
            // `<` not followed by a tag: literal text.
            self.bump(1);
            return Some(Token::Text("<".to_string()));
        }
        let name = rest[name_start..name_start + name_len].to_lowercase();

        // Find the closing '>' (not inside a quoted attribute value).
        let mut i = name_start + name_len;
        let bytes = rest.as_bytes();
        let mut quote: Option<u8> = None;
        while i < bytes.len() {
            let b = bytes[i];
            match quote {
                Some(q) => {
                    if b == q {
                        quote = None;
                    }
                }
                None => match b {
                    b'"' | b'\'' => quote = Some(b),
                    b'>' => break,
                    _ => {}
                },
            }
            i += 1;
        }
        let attr_src = &rest[name_start + name_len..i.min(rest.len())];
        let consumed = (i + 1).min(rest.len());
        self.bump(consumed);

        if is_end {
            return Some(Token::EndTag { name });
        }

        let trimmed = attr_src.trim_end();
        let self_closing = trimmed.ends_with('/');
        let attr_src = trimmed.strip_suffix('/').unwrap_or(trimmed);
        let attrs = parse_attributes(attr_src);
        if matches!(name.as_str(), "script" | "style" | "textarea" | "title") && !self_closing {
            self.raw_until = Some(name.clone());
        }
        Some(Token::StartTag { name, attrs, self_closing })
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = Token;

    fn next(&mut self) -> Option<Token> {
        if self.pos >= self.input.len() {
            return None;
        }
        if let Some(tag) = self.raw_until.clone() {
            return Some(self.next_raw_text(&tag));
        }
        let rest = self.rest();
        if rest.starts_with('<') {
            return self.next_markup();
        }
        // Character data until the next '<'.
        let end = rest.find('<').unwrap_or(rest.len());
        let text = decode_entities(&rest[..end]);
        self.bump(end);
        Some(Token::Text(text))
    }
}

/// Parse the attribute portion of a start tag.
fn parse_attributes(src: &str) -> Vec<(String, String)> {
    let mut attrs = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        // Skip whitespace.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        // Attribute name.
        let name_start = i;
        while i < bytes.len()
            && !bytes[i].is_ascii_whitespace()
            && bytes[i] != b'='
            && bytes[i] != b'/'
        {
            i += 1;
        }
        if i == name_start {
            i += 1; // Stray character; skip.
            continue;
        }
        let name = src[name_start..i].to_lowercase();
        // Skip whitespace before '='.
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            attrs.push((name, String::new()));
            continue;
        }
        i += 1; // consume '='
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            attrs.push((name, String::new()));
            break;
        }
        let value = match bytes[i] {
            q @ (b'"' | b'\'') => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != q {
                    i += 1;
                }
                let v = &src[start..i];
                i = (i + 1).min(bytes.len());
                v
            }
            _ => {
                let start = i;
                while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                    i += 1;
                }
                &src[start..i]
            }
        };
        attrs.push((name, decode_entities(value)));
    }
    attrs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(name: &str, attrs: &[(&str, &str)]) -> Token {
        Token::StartTag {
            name: name.into(),
            attrs: attrs.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect(),
            self_closing: false,
        }
    }

    #[test]
    fn simple_document() {
        let toks = Tokenizer::tokenize("<p>Hello <b>world</b></p>");
        assert_eq!(
            toks,
            vec![
                start("p", &[]),
                Token::Text("Hello ".into()),
                start("b", &[]),
                Token::Text("world".into()),
                Token::EndTag { name: "b".into() },
                Token::EndTag { name: "p".into() },
            ]
        );
    }

    #[test]
    fn attributes_quoted_unquoted_and_bare() {
        let toks = Tokenizer::tokenize(r#"<td class="spec" colspan=2 nowrap data-x='a&amp;b'>"#);
        assert_eq!(
            toks,
            vec![start(
                "td",
                &[("class", "spec"), ("colspan", "2"), ("nowrap", ""), ("data-x", "a&b")]
            )]
        );
    }

    #[test]
    fn self_closing_and_case_folding() {
        let toks = Tokenizer::tokenize("<BR/><IMG SRC=x.png />");
        assert!(
            matches!(&toks[0], Token::StartTag { name, self_closing: true, .. } if name == "br")
        );
        assert!(matches!(&toks[1], Token::StartTag { name, self_closing: true, attrs, .. }
            if name == "img" && attrs[0] == ("src".to_string(), "x.png".to_string())));
    }

    #[test]
    fn comments_and_doctype() {
        let toks = Tokenizer::tokenize("<!DOCTYPE html><!-- hi --><p>x</p>");
        assert_eq!(toks[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(toks[1], Token::Comment(" hi ".into()));
    }

    #[test]
    fn script_contents_are_raw() {
        let toks = Tokenizer::tokenize("<script>if (a < b) { x(); }</script><p>t</p>");
        assert!(matches!(&toks[0], Token::StartTag { name, .. } if name == "script"));
        assert_eq!(toks[1], Token::Text("if (a < b) { x(); }".into()));
        assert_eq!(toks[2], Token::EndTag { name: "script".into() });
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for s in ["<", "<p", "</", "<!--x", "<td class=\"a", "<script>never ends"] {
            let _ = Tokenizer::tokenize(s);
        }
    }

    #[test]
    fn stray_lt_is_text() {
        let toks = Tokenizer::tokenize("a < b");
        let text: String = toks
            .iter()
            .map(|t| match t {
                Token::Text(s) => s.as_str(),
                _ => "",
            })
            .collect();
        assert_eq!(text, "a < b");
    }

    #[test]
    fn entities_decoded_in_text() {
        let toks = Tokenizer::tokenize("R&amp;D &#64; home");
        assert_eq!(toks, vec![Token::Text("R&D @ home".into())]);
    }

    #[test]
    fn gt_inside_quoted_attribute() {
        let toks = Tokenizer::tokenize(r#"<a title="x > y">link</a>"#);
        assert!(matches!(&toks[0], Token::StartTag { name, attrs, .. }
            if name == "a" && attrs[0].1 == "x > y"));
        assert_eq!(toks[1], Token::Text("link".into()));
    }
}
