//! Decoding of HTML character references (entities).
//!
//! Supports the named entities that occur in practice on merchant pages plus
//! decimal (`&#64;`) and hexadecimal (`&#x40;`) numeric references. Unknown
//! references are left verbatim, which is what browsers do for strings like
//! `"AT&T"`.

/// Decode all character references in `input`.
///
/// ```
/// use pse_html::entity::decode_entities;
/// assert_eq!(decode_entities("3.5&quot; &amp; 500&nbsp;GB"), "3.5\" & 500\u{a0}GB");
/// assert_eq!(decode_entities("&#65;&#x42;"), "AB");
/// assert_eq!(decode_entities("AT&T"), "AT&T");
/// ```
pub fn decode_entities(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let bytes = input.as_bytes();
    let mut out = String::with_capacity(input.len());
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Copy the full UTF-8 character.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        // Find a terminating ';' within a reasonable window.
        match bytes[i + 1..].iter().take(32).position(|&b| b == b';') {
            Some(rel) => {
                let name = &input[i + 1..i + 1 + rel];
                match decode_reference(name) {
                    Some(decoded) => {
                        out.push_str(&decoded);
                        i += rel + 2;
                    }
                    None => {
                        out.push('&');
                        i += 1;
                    }
                }
            }
            None => {
                out.push('&');
                i += 1;
            }
        }
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

/// Decode one reference body (without `&` and `;`). `None` when unknown.
fn decode_reference(name: &str) -> Option<String> {
    if let Some(rest) = name.strip_prefix('#') {
        let code = if let Some(hex) = rest.strip_prefix(['x', 'X']) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            rest.parse::<u32>().ok()?
        };
        return char::from_u32(code).map(String::from);
    }
    let ch = match name {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        "nbsp" => '\u{a0}',
        "copy" => '©',
        "reg" => '®',
        "trade" => '™',
        "deg" => '°',
        "plusmn" => '±',
        "frac12" => '½',
        "frac14" => '¼',
        "times" => '×',
        "divide" => '÷',
        "mdash" => '—',
        "ndash" => '–',
        "lsquo" => '\u{2018}',
        "rsquo" => '\u{2019}',
        "ldquo" => '\u{201c}',
        "rdquo" => '\u{201d}',
        "hellip" => '…',
        "bull" => '•',
        "middot" => '·',
        "micro" => 'µ',
        "eacute" => 'é',
        "egrave" => 'è',
        "agrave" => 'à',
        "uuml" => 'ü',
        "ouml" => 'ö',
        "auml" => 'ä',
        "szlig" => 'ß',
        "euro" => '€',
        "pound" => '£',
        "yen" => '¥',
        "cent" => '¢',
        _ => return None,
    };
    Some(ch.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode_entities("&lt;b&gt;"), "<b>");
        assert_eq!(decode_entities("&amp;amp;"), "&amp;");
        assert_eq!(decode_entities("100&deg;"), "100°");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode_entities("&#8220;hi&#8221;"), "\u{201c}hi\u{201d}");
        assert_eq!(decode_entities("&#x1F600;"), "😀");
    }

    #[test]
    fn invalid_references_pass_through() {
        assert_eq!(decode_entities("AT&T and &unknown; stay"), "AT&T and &unknown; stay");
        assert_eq!(decode_entities("&#xZZ;"), "&#xZZ;");
        assert_eq!(decode_entities("trailing &"), "trailing &");
        assert_eq!(decode_entities("&#1114112;"), "&#1114112;"); // out of range
    }

    #[test]
    fn no_ampersand_fast_path() {
        assert_eq!(decode_entities("plain text"), "plain text");
        assert_eq!(decode_entities(""), "");
    }

    #[test]
    fn multibyte_text_is_preserved() {
        assert_eq!(decode_entities("héllo &amp; wörld"), "héllo & wörld");
    }
}
