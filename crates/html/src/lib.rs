//! A small, tag-soup tolerant HTML parser with a table model.
//!
//! The run-time pipeline of Nguyen et al. (VLDB 2011) extracts offer
//! specifications from merchant *landing pages*: it "parses the DOM tree of
//! the Web page and returns all tables on the page", then selects two-column
//! rows as attribute–value pairs (Section 4). Real merchant HTML is messy —
//! unclosed tags, implied `</tr>`s, entities, inline scripts — so the parser
//! must be forgiving and must never panic on arbitrary input.
//!
//! The crate is organized as a pipeline:
//! [`tokenizer`] → [`parser`] (builds the arena [`dom::Document`]) →
//! [`table`] (extracts a logical table model).

pub mod dom;
pub mod entity;
pub mod parser;
pub mod table;
pub mod tokenizer;

pub use dom::{Document, NodeData, NodeId};
pub use parser::parse;
pub use table::{extract_tables, Table, TableCell};
pub use tokenizer::{Token, Tokenizer};
