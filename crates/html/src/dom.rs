//! Arena-based DOM tree.
//!
//! Nodes live in a flat `Vec`; [`NodeId`] indices link parents and children.
//! This keeps the tree cache-friendly and avoids `Rc`/`RefCell` churn while
//! scanning hundreds of thousands of landing pages.

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// Payload of a DOM node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeData {
    /// The synthetic document root.
    Document,
    /// An element with its (lowercased) tag name and attributes.
    Element {
        /// Lowercased tag name.
        name: String,
        /// Attributes in source order.
        attrs: Vec<(String, String)>,
    },
    /// A text node.
    Text(String),
    /// A comment node.
    Comment(String),
}

/// One node of the arena.
#[derive(Debug, Clone)]
pub struct Node {
    /// Payload.
    pub data: NodeData,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children in document order.
    pub children: Vec<NodeId>,
}

/// A parsed HTML document.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
}

impl Document {
    /// A document containing only the root node.
    pub fn new() -> Self {
        Self { nodes: vec![Node { data: NodeData::Document, parent: None, children: Vec::new() }] }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Number of nodes (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Append a new node under `parent` and return its id.
    pub fn append(&mut self, parent: NodeId, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { data, parent: Some(parent), children: Vec::new() });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Tag name of `id` when it is an element.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Value of attribute `name` on element `id`.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { attrs, .. } => {
                attrs.iter().find(|(a, _)| a.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
            }
            _ => None,
        }
    }

    /// Depth-first pre-order traversal starting at `start` (inclusive).
    pub fn descendants(&self, start: NodeId) -> Descendants<'_> {
        Descendants { doc: self, stack: vec![start] }
    }

    /// All elements with the given tag name, in document order.
    pub fn elements_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = NodeId> + 'a {
        self.descendants(self.root()).filter(move |id| self.tag_name(*id) == Some(name))
    }

    /// Concatenated text of all text-node descendants, whitespace-collapsed.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut pieces = Vec::new();
        for d in self.descendants(id) {
            if let NodeData::Text(t) = &self.node(d).data {
                pieces.push(t.as_str());
            }
        }
        collapse_whitespace(&pieces.join(" "))
    }

    /// The nearest ancestor (excluding `id` itself) with the given tag name.
    pub fn ancestor_named(&self, id: NodeId, name: &str) -> Option<NodeId> {
        let mut cur = self.node(id).parent;
        while let Some(p) = cur {
            if self.tag_name(p) == Some(name) {
                return Some(p);
            }
            cur = self.node(p).parent;
        }
        None
    }
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

/// Iterator over a subtree in document order.
pub struct Descendants<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        let children = &self.doc.node(id).children;
        self.stack.extend(children.iter().rev());
        Some(id)
    }
}

/// Collapse runs of whitespace (incl. `&nbsp;`) into single spaces and trim.
pub fn collapse_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut in_space = true; // leading whitespace is dropped
    for ch in s.chars() {
        if ch.is_whitespace() || ch == '\u{a0}' {
            if !in_space {
                out.push(' ');
                in_space = true;
            }
        } else {
            out.push(ch);
            in_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut doc = Document::new();
        let root = doc.root();
        let table = doc.append(
            root,
            NodeData::Element {
                name: "table".into(),
                attrs: vec![("class".into(), "specs".into())],
            },
        );
        let tr = doc.append(table, NodeData::Element { name: "tr".into(), attrs: vec![] });
        let td1 = doc.append(tr, NodeData::Element { name: "td".into(), attrs: vec![] });
        doc.append(td1, NodeData::Text("Brand".into()));
        let td2 = doc.append(tr, NodeData::Element { name: "td".into(), attrs: vec![] });
        doc.append(td2, NodeData::Text("  Hitachi \n Global ".into()));
        doc
    }

    #[test]
    fn traversal_and_queries() {
        let doc = sample();
        assert_eq!(doc.elements_named("td").count(), 2);
        assert_eq!(doc.elements_named("table").count(), 1);
        let table = doc.elements_named("table").next().unwrap();
        assert_eq!(doc.attr(table, "class"), Some("specs"));
        assert_eq!(doc.attr(table, "CLASS"), Some("specs"));
        assert_eq!(doc.attr(table, "id"), None);
    }

    #[test]
    fn text_content_collapses_whitespace() {
        let doc = sample();
        let table = doc.elements_named("table").next().unwrap();
        assert_eq!(doc.text_content(table), "Brand Hitachi Global");
    }

    #[test]
    fn ancestor_lookup() {
        let doc = sample();
        let td = doc.elements_named("td").next().unwrap();
        assert!(doc.ancestor_named(td, "table").is_some());
        assert!(doc.ancestor_named(td, "div").is_none());
        let table = doc.elements_named("table").next().unwrap();
        assert!(doc.ancestor_named(table, "table").is_none());
    }

    #[test]
    fn collapse_whitespace_cases() {
        assert_eq!(collapse_whitespace("  a  b\u{a0}c \n"), "a b c");
        assert_eq!(collapse_whitespace(""), "");
        assert_eq!(collapse_whitespace("   "), "");
    }

    #[test]
    fn document_order_traversal() {
        let doc = sample();
        let names: Vec<_> = doc
            .descendants(doc.root())
            .filter_map(|id| doc.tag_name(id).map(str::to_string))
            .collect();
        assert_eq!(names, ["table", "tr", "td", "td"]);
    }
}
