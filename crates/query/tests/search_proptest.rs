//! Property pin: the inverted-index search is byte-identical to the
//! naive full-scan reference over arbitrary small catalogs and queries.
//!
//! The generator draws tokens from a tiny alphabet on purpose — heavy
//! collisions between attribute names, values, and query tokens are
//! exactly where an unsound candidate set (a document the scan keeps
//! but the postings miss) would show up. Values mixing digit and word
//! tokens exercise the `values_equivalent` digit-sequence rule, the one
//! case where a satisfying document can share no literal token with the
//! resolved constraint.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use pse_core::{CategoryId, CorrespondenceSet, Spec};
use pse_query::{search, search_scan, CategoryIndex, SearchIndex};
use pse_synthesis::SynthesizedProduct;

// Word and digit tokens in one alphabet: digit-heavy values exercise
// the `values_equivalent` magnitude rule.
const ALPHABET: &[&str] =
    &["canon", "nikon", "silver", "black", "gb", "mp", "pro", "mini", "12", "500", "7200", "8"];
const ATTRS: &[&str] = &["brand", "color", "capacity", "resolution"];

fn token() -> impl Strategy<Value = String> {
    (0..ALPHABET.len()).prop_map(|i| ALPHABET[i].to_string())
}

fn value() -> impl Strategy<Value = String> {
    proptest::collection::vec(token(), 1..3).prop_map(|t| t.join(" "))
}

fn spec() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(((0..ATTRS.len()).prop_map(|i| ATTRS[i].to_string()), value()), 1..4)
}

fn products() -> impl Strategy<Value = Vec<SynthesizedProduct>> {
    proptest::collection::vec((0u32..3, value(), spec()), 1..12).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (cat, key, pairs))| SynthesizedProduct {
                category: CategoryId(cat),
                key_attribute: "MPN".into(),
                // Distinct keys: the serving layer's cluster merge
                // guarantees uniqueness per (category, attr, key).
                key_value: format!("{key} {i}"),
                spec: Spec::from_pairs(pairs),
                offers: Vec::new(),
            })
            .collect()
    })
}

fn query() -> impl Strategy<Value = String> {
    proptest::collection::vec(token(), 0..6).prop_map(|t| t.join(" "))
}

fn build(products: &[SynthesizedProduct]) -> SearchIndex {
    let mut by_cat: BTreeMap<CategoryId, Vec<&SynthesizedProduct>> = BTreeMap::new();
    for p in products {
        by_cat.entry(p.category).or_default().push(p);
    }
    let cs = CorrespondenceSet::new();
    by_cat
        .into_iter()
        .map(|(cat, mut ps)| {
            ps.sort_by(|a, b| {
                (&a.key_attribute, &a.key_value).cmp(&(&b.key_attribute, &b.key_value))
            });
            (cat, Arc::new(CategoryIndex::build(cat, &ps, &cs)))
        })
        .collect()
}

proptest! {
    #[test]
    fn index_search_equals_full_scan(ps in products(), q in query(), k in 1usize..8) {
        let idx = build(&ps);
        prop_assert_eq!(search(&idx, &q, k), search_scan(&idx, &q, k));
    }

    #[test]
    fn search_is_deterministic(ps in products(), q in query()) {
        let idx = build(&ps);
        let a = search(&idx, &q, 10);
        let b = search(&build(&ps), &q, 10);
        prop_assert_eq!(a, b);
    }
}
