//! The per-category inverted index the query engine searches.
//!
//! A [`CategoryIndex`] freezes one category's visible products into an
//! immutable, self-contained search structure: a lexicographic token
//! [`Interner`], an [`InternedCorpus`] with per-document TF-IDF vectors,
//! token → document postings, and two phrase resolvers — normalized
//! attribute-name phrases (catalog names *and* the merchant surface
//! forms learned by offline correspondence learning) and normalized
//! value phrases. Everything is built from the documents in one
//! deterministic pass over an already-sorted product slice, so two
//! builds over the same products are identical regardless of how many
//! shards or threads produced them.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use pse_core::{CategoryId, CorrespondenceSet};
use pse_synthesis::SynthesizedProduct;
use pse_text::normalize::values_equivalent;
use pse_text::strsim::jaro_winkler;
use pse_text::tfidf::TfIdfCorpus;
use pse_text::{
    normalize_attribute_name, normalize_value, tokens, BagOfWords, InternedCorpus,
    InternedCorpusBuilder, Interner, InternerBuilder, SparseCounts, SparseVec, Sym,
};

use crate::resolve::FUZZY_THETA;

/// The full searchable catalog: one immutable index per category. The
/// serving layer materializes the map from its published snapshot and
/// swaps it together with the snapshot, so a search always sees one
/// consistent state.
pub type SearchIndex = BTreeMap<CategoryId, Arc<CategoryIndex>>;

/// One indexed product.
#[derive(Debug)]
pub struct Doc {
    /// The clustering key attribute (e.g. `"MPN"`).
    pub key_attribute: String,
    /// The normalized key value — together with the category and key
    /// attribute this is the product's cluster key.
    pub key_value: String,
    /// `(normalized attribute, normalized value)` pairs of the fused
    /// specification, sorted; empty normalized values are dropped.
    pub pairs: Vec<(String, String)>,
    /// L2-normalized TF-IDF vector over the document's interned tokens.
    pub vec: SparseVec,
    /// Offers fused into the product — the evidence behind the spec.
    /// Ranking weights cosine by it, so a product many merchants carry
    /// outranks a single-offer phantom cluster (an extraction-garbled
    /// key) with a near-identical spec.
    pub support: u32,
}

/// One distinct normalized value observed in the category, with the
/// attribute it appeared under.
#[derive(Debug)]
pub struct ValueEntry {
    /// Normalized catalog attribute name.
    pub attr: String,
    /// Normalized value.
    pub value: String,
}

/// One category's products frozen into a searchable structure.
#[derive(Debug)]
pub struct CategoryIndex {
    /// The category this index covers.
    pub category: CategoryId,
    interner: Interner,
    corpus: InternedCorpus,
    docs: Vec<Doc>,
    /// `postings[sym]` = ascending doc ids containing that token.
    postings: Vec<Vec<u32>>,
    /// Exact resolver: interned token phrase → indices into `values`.
    value_phrases: HashMap<Vec<Sym>, Vec<u32>>,
    /// Agglutination resolver: separator-free token concatenation →
    /// indices into `values`, so `"7.5 cm"` in a query still resolves
    /// when every merchant wrote `"7.5cm"` (same normal form, different
    /// token boundaries).
    value_concats: HashMap<String, Vec<u32>>,
    values: Vec<ValueEntry>,
    /// Attribute-name resolver: interned token phrase → sorted
    /// normalized catalog attribute names the phrase can mean.
    attr_phrases: HashMap<Vec<Sym>, Vec<String>>,
    /// Pre-weighted SoftTFIDF state over the distinct normalized
    /// values, for the fuzzy fallback when no phrase resolves exactly.
    fuzzy: FuzzyValues,
}

/// The fuzzy resolver's frozen state: every value entry's L2-normalized
/// TF-IDF weights over a dedicated token vocabulary, precomputed once at
/// build. [`CategoryIndex::fuzzy_value`] is bit-identical to scoring
/// each entry with [`pse_text::SoftTfIdf::similarity`] — same corpus
/// weights, same sorted iteration orders, same short-circuit — but no
/// per-entry tokenization or weighting, memoizes each (query token,
/// vocabulary token) Jaro–Winkler score once per call, and skips token
/// pairs that provably cannot reach θ (the same length/prefix bound
/// proven sound for [`pse_text::InternedSoftTfIdf::similarity`]).
#[derive(Debug)]
struct FuzzyValues {
    corpus: TfIdfCorpus,
    /// Distinct entry tokens, lexicographically sorted; positions are
    /// the `fid`s below, so ascending fid = the token order
    /// [`pse_text::SoftTfIdf::similarity`] scans.
    vocab: Vec<String>,
    vocab_lookup: HashMap<String, u32>,
    /// Character count per vocabulary token, parallel to `vocab`.
    lens: Vec<u32>,
    /// Per value entry: `(fid, weight)` ascending by fid — the entry's
    /// L2-normalized TF-IDF vector.
    docs: Vec<Vec<(u32, f64)>>,
}

impl FuzzyValues {
    /// Precompute the per-entry weight vectors. `values` must be the
    /// entry list in id order; `corpus` the TF-IDF statistics over
    /// exactly those values.
    fn build(corpus: TfIdfCorpus, values: &[ValueEntry]) -> Self {
        let mut vocab: BTreeSet<String> = BTreeSet::new();
        for e in values {
            vocab.extend(tokens(&e.value));
        }
        let vocab: Vec<String> = vocab.into_iter().collect();
        let vocab_lookup: HashMap<String, u32> =
            vocab.iter().enumerate().map(|(i, t)| (t.clone(), i as u32)).collect();
        let lens = vocab.iter().map(|t| t.chars().count() as u32).collect();
        let docs = values
            .iter()
            .map(|e| {
                let mut bag = BagOfWords::new();
                for t in tokens(&e.value) {
                    bag.add_token(t);
                }
                // weight_vector iterates sorted by token, and fids are
                // assigned in token order, so the doc is ascending by fid.
                corpus.weight_vector(&bag).into_iter().map(|(t, w)| (vocab_lookup[&t], w)).collect()
            })
            .collect();
        Self { corpus, vocab, vocab_lookup, lens, docs }
    }
}

impl CategoryIndex {
    /// Build the index for `category` from its visible products, which
    /// must arrive sorted by cluster key (the serving layer's merged
    /// snapshot order) — the build is then shard-count independent.
    /// `correspondences` contributes the merchant attribute surface
    /// forms learned offline.
    pub fn build(
        category: CategoryId,
        products: &[&SynthesizedProduct],
        correspondences: &CorrespondenceSet,
    ) -> Self {
        let _span = pse_obs::span("query.index_build");
        // Pass 1: intern every document token, plus the attribute-name
        // tokens (catalog and merchant surface forms) so name phrases
        // are resolvable even though documents only contain values.
        let mut builder = InternerBuilder::default();
        let mut corpus_builder = InternedCorpusBuilder::new();
        let mut provisional_docs: Vec<Vec<u32>> = Vec::with_capacity(products.len());
        let mut attr_names: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        for p in products {
            let mut prov = builder.tokenize(&p.key_value);
            for av in p.spec.iter() {
                prov.extend(builder.tokenize(&av.value));
                let norm = av.normalized_name();
                builder.tokenize(&norm);
                attr_names.entry(norm.clone()).or_default().insert(norm);
            }
            corpus_builder.add_document(prov.iter().copied());
            provisional_docs.push(prov);
        }
        for c in correspondences.iter().filter(|c| c.category == category) {
            let merchant_surface = normalize_attribute_name(&c.merchant_attribute);
            let catalog = normalize_attribute_name(&c.catalog_attribute);
            builder.tokenize(&merchant_surface);
            attr_names.entry(merchant_surface).or_default().insert(catalog);
        }
        let interner = builder.finalize();
        let corpus = corpus_builder.finalize(&interner);

        // Pass 2: per-document TF-IDF vectors, postings, and the
        // normalized pair lists constraints are checked against.
        let mut docs = Vec::with_capacity(products.len());
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); interner.len()];
        let mut distinct_values: BTreeSet<(String, String)> = BTreeSet::new();
        for (i, (p, prov)) in products.iter().zip(&provisional_docs).enumerate() {
            let counts = SparseCounts::from_doc(&interner.doc(prov));
            for &(sym, _) in counts.entries() {
                postings[sym.0 as usize].push(i as u32);
            }
            let mut pairs: Vec<(String, String)> = p
                .spec
                .iter()
                .map(|av| (av.normalized_name(), normalize_value(&av.value)))
                .filter(|(_, v)| !v.is_empty())
                .collect();
            pairs.sort();
            pairs.dedup();
            for (a, v) in &pairs {
                distinct_values.insert((a.clone(), v.clone()));
            }
            docs.push(Doc {
                key_attribute: p.key_attribute.clone(),
                key_value: p.key_value.clone(),
                pairs,
                vec: corpus.weight_counts(&counts),
                support: p.offers.len().max(1) as u32,
            });
        }

        // The value resolver: every distinct (attr, value), exact phrase
        // keyed by the value's interned tokens, fuzzy scored by a
        // SoftTFIDF over the same values.
        let mut values = Vec::with_capacity(distinct_values.len());
        let mut value_phrases: HashMap<Vec<Sym>, Vec<u32>> = HashMap::new();
        let mut value_concats: HashMap<String, Vec<u32>> = HashMap::new();
        let mut fuzzy_corpus = TfIdfCorpus::default();
        for (attr, value) in distinct_values {
            let id = values.len() as u32;
            if let Some(syms) = lookup_phrase(&interner, &value) {
                value_phrases.entry(syms).or_default().push(id);
            }
            let concat = tokens(&value).concat();
            if !concat.is_empty() {
                value_concats.entry(concat).or_default().push(id);
            }
            fuzzy_corpus.add_document(&BagOfWords::from_values([value.as_str()]));
            values.push(ValueEntry { attr, value });
        }
        let mut attr_phrases: HashMap<Vec<Sym>, Vec<String>> = HashMap::new();
        for (surface, catalog_attrs) in attr_names {
            if let Some(syms) = lookup_phrase(&interner, &surface) {
                let slot = attr_phrases.entry(syms).or_default();
                slot.extend(catalog_attrs);
                slot.sort();
                slot.dedup();
            }
        }
        Self {
            category,
            interner,
            corpus,
            docs,
            postings,
            value_phrases,
            value_concats,
            fuzzy: FuzzyValues::build(fuzzy_corpus, &values),
            values,
            attr_phrases,
        }
    }

    /// Indexed documents, in cluster-key order.
    pub fn docs(&self) -> &[Doc] {
        &self.docs
    }

    /// The interned symbol for one normalized token, if in vocabulary.
    pub fn lookup(&self, token: &str) -> Option<Sym> {
        self.interner.lookup(token)
    }

    /// The interned phrase for a token slice; `None` when any token is
    /// out of vocabulary (then no exact phrase can match either).
    pub fn phrase_syms(&self, toks: &[String]) -> Option<Vec<Sym>> {
        toks.iter().map(|t| self.interner.lookup(t)).collect()
    }

    /// Exact value resolution: the `(attr, value)` entries whose
    /// normalized value tokens equal `syms`, in (attr, value) order.
    pub fn exact_values(&self, syms: &[Sym]) -> Option<&[u32]> {
        self.value_phrases.get(syms).map(Vec::as_slice)
    }

    /// Attribute-name resolution: the normalized catalog attributes the
    /// phrase `syms` can mean (via catalog names or learned merchant
    /// surface forms), sorted.
    pub fn exact_attrs(&self, syms: &[Sym]) -> Option<&[String]> {
        self.attr_phrases.get(syms).map(Vec::as_slice)
    }

    /// Agglutination-tolerant value resolution: the entries whose
    /// normalized value concatenates (separator-free) to the same string
    /// as the query window — the same normal form the labeler-style
    /// value equivalence accepts as identical.
    pub fn concat_values(&self, window: &[String]) -> Option<&[u32]> {
        self.value_concats.get(&window.concat()).map(Vec::as_slice)
    }

    /// Hint-scoped equivalent-value resolution: entries under one of the
    /// user-named `attrs` whose value carries the same magnitudes as the
    /// digit-bearing query phrase with compatible units — the explicit
    /// attribute plus equal digit sequences pin the fact even when
    /// merchants dropped or abbreviated the unit (`"depth 30 cm"` vs a
    /// fused `"30"`, `"32.5 in"` vs `"32.5 inches"`), while `"10
    /// inches"` still refuses a `"10 cm"` entry.
    pub fn hinted_equivalent_values(&self, attrs: &[String], phrase: &[String]) -> Vec<u32> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                if !attrs.contains(&e.attr) {
                    return false;
                }
                let vt = tokens(&e.value);
                hinted_value_match(phrase, &vt)
                    || (!phrase.iter().any(|t| t.bytes().all(|b| b.is_ascii_digit()))
                        && values_equivalent(&phrase.join(" "), &e.value))
            })
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// One value entry by id.
    pub fn value_entry(&self, id: u32) -> &ValueEntry {
        &self.values[id as usize]
    }

    /// Fuzzy value resolution: the entry with the highest SoftTFIDF
    /// similarity to `phrase` at or above [`FUZZY_THETA`]; earlier
    /// entries win ties. `None` when nothing clears the threshold.
    ///
    /// Scores are bit-identical to [`SoftTfIdf::similarity`] against
    /// every entry (see [`FuzzyValues`]); the query is tokenized and
    /// weighted once, entries reuse their precomputed vectors, and
    /// Jaro–Winkler scores are memoized per (query token, vocabulary
    /// token) for the duration of the call.
    ///
    /// [`SoftTfIdf::similarity`]: pse_text::SoftTfIdf::similarity
    pub fn fuzzy_value(&self, phrase: &str) -> Option<(u32, f64)> {
        let ta = tokens(phrase);
        let va: Vec<(String, f64)> = if ta.is_empty() {
            Vec::new()
        } else {
            let mut bag = BagOfWords::new();
            for t in &ta {
                bag.add_token(t.clone());
            }
            // BTreeMap → ascending token order, the order SoftTfIdf
            // iterates the query side in.
            self.fuzzy.corpus.weight_vector(&bag).into_iter().collect()
        };
        let q_lens: Vec<u32> = va.iter().map(|(t, _)| t.chars().count() as u32).collect();
        let q_fids: Vec<Option<u32>> =
            va.iter().map(|(t, _)| self.fuzzy.vocab_lookup.get(t).copied()).collect();
        let mut memo: Vec<HashMap<u32, f64>> = vec![HashMap::new(); va.len()];
        // The θ-prefilter constants proven sound for
        // `InternedSoftTfIdf::similarity`: a skipped pair is provably
        // below θ and could never update `best_s`.
        let cut = (FUZZY_THETA - 0.8) * 5.0;
        let theta_gate = FUZZY_THETA - 1e-6;
        let mut best: Option<(u32, f64)> = None;
        for (id, doc) in self.fuzzy.docs.iter().enumerate() {
            let sim = if ta.is_empty() || doc.is_empty() {
                if ta.is_empty() && doc.is_empty() {
                    1.0
                } else {
                    0.0
                }
            } else {
                let mut sum = 0.0;
                for (qi, (t, wa)) in va.iter().enumerate() {
                    // Exact matches short-circuit the scan.
                    if let Some(fid) = q_fids[qi] {
                        if let Ok(pos) = doc.binary_search_by_key(&fid, |&(f, _)| f) {
                            sum += wa * doc[pos].1;
                            continue;
                        }
                    }
                    let la = q_lens[qi];
                    let mut best_s = 0.0f64;
                    let mut best_w = 0.0f64;
                    for &(fid, wb) in doc {
                        let lb = self.fuzzy.lens[fid as usize];
                        let (mn, mx) = if la <= lb { (la, lb) } else { (lb, la) };
                        if (mn as f64) < cut * (mx as f64) - 1e-6 {
                            continue;
                        }
                        let u = &self.fuzzy.vocab[fid as usize];
                        let prefix =
                            t.chars().zip(u.chars()).take(4).take_while(|(x, y)| x == y).count();
                        let jbound = (mn as f64 / mx as f64 + 2.0) / 3.0;
                        if jbound + 0.1 * prefix as f64 * (1.0 - jbound) < theta_gate {
                            continue;
                        }
                        let s = *memo[qi].entry(fid).or_insert_with(|| jaro_winkler(t, u));
                        if s >= FUZZY_THETA && s > best_s {
                            best_s = s;
                            best_w = wb;
                        }
                    }
                    if best_s > 0.0 {
                        sum += wa * best_w * best_s;
                    }
                }
                sum.clamp(0.0, 1.0)
            };
            if sim >= FUZZY_THETA && best.is_none_or(|(_, b)| sim > b) {
                best = Some((id as u32, sim));
            }
        }
        best
    }

    /// Ascending doc ids containing `sym`.
    pub fn postings(&self, sym: Sym) -> &[u32] {
        &self.postings[sym.0 as usize]
    }

    /// The L2-normalized TF-IDF query vector for a bag of query tokens;
    /// out-of-vocabulary tokens contribute nothing (they cannot overlap
    /// any document).
    pub fn query_vec(&self, toks: &[String]) -> SparseVec {
        let mut counts: BTreeMap<Sym, u64> = BTreeMap::new();
        for sym in toks.iter().filter_map(|t| self.interner.lookup(t)) {
            *counts.entry(sym).or_insert(0) += 1;
        }
        self.corpus.weight_counts(&SparseCounts::from_unsorted(counts.into_iter().collect()))
    }

    /// Every value entry id whose normalized value is *equivalent* to
    /// `value` under the fused-value equivalence relation (containment,
    /// tight concatenation, digit-sequence equality). Retrieval unions
    /// these entries' token postings so equivalence matches — which can
    /// share no literal token with the query — are never missed.
    pub fn equivalent_values(&self, value: &str) -> Vec<u32> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, e)| values_equivalent(&e.value, value))
            .map(|(i, _)| i as u32)
            .collect()
    }
}

/// Whether a digit-bearing query phrase denotes the same fact as an
/// indexed value: identical non-empty digit sequences, and every
/// multi-character unit token of the phrase prefix-aligns with some unit
/// token of the value (`"in"`/`"inches"`, `"mb"`/`"mbps"`; never
/// `"inches"`/`"cm"`). Single-character leftovers of tokenization
/// (`"mb s"` from `"MB/s"`) are ignored; extra value tokens (merchant
/// junk suffixes) are allowed.
fn hinted_value_match(phrase: &[String], value: &[String]) -> bool {
    let is_digits = |t: &String| t.bytes().all(|b| b.is_ascii_digit());
    let pd: Vec<&String> = phrase.iter().filter(|t| is_digits(t)).collect();
    let vd: Vec<&String> = value.iter().filter(|t| is_digits(t)).collect();
    if pd.is_empty() || pd != vd {
        return false;
    }
    let prefix_align = |a: &str, b: &str| {
        a == b || (a.len() >= 2 && b.len() >= 2 && (a.starts_with(b) || b.starts_with(a)))
    };
    phrase
        .iter()
        .filter(|t| !is_digits(t) && t.len() >= 2)
        .all(|p| value.iter().filter(|t| !is_digits(t)).any(|v| prefix_align(p, v)))
}

/// Look up every token of `text` in the finalized interner; `None` when
/// any token is missing (cannot happen for phrases interned in pass 1,
/// but the resolver stays total either way).
fn lookup_phrase(interner: &Interner, text: &str) -> Option<Vec<Sym>> {
    let toks = tokens(text);
    if toks.is_empty() {
        return None;
    }
    toks.iter().map(|t| interner.lookup(t)).collect()
}
