//! Retrieval and ranking.
//!
//! [`search`] answers a query through the inverted index; [`search_scan`]
//! answers it by scoring every indexed document. The two are
//! byte-identical (property-pinned in `tests/`): the index candidate set
//! is a proven superset of every document a full scan could keep, and
//! the scoring and ordering code is shared.

use std::collections::BTreeSet;

use pse_core::CategoryId;
use pse_text::{cosine_sparse, tokens, SparseVec};

use crate::index::{CategoryIndex, SearchIndex};
use crate::resolve::{Constraint, Resolution};

/// One ranked product.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Category of the product.
    pub category: CategoryId,
    /// The cluster key attribute.
    pub key_attribute: String,
    /// The normalized cluster key value.
    pub key_value: String,
    /// How many resolved constraints the product satisfies.
    pub matched: u32,
    /// TF-IDF cosine between query and document token vectors.
    pub score: f64,
    /// Offers fused into the product — the evidence weight behind it.
    pub support: u32,
}

impl Hit {
    /// The ranking key within one `matched` tier: cosine weighted by
    /// log-evidence. A product carried by many merchants outranks a
    /// single-offer phantom cluster (extraction-garbled key, duplicated
    /// spec) whose shorter document would otherwise edge it on raw
    /// cosine.
    fn weighted_score(&self) -> f64 {
        self.score * (1.0 + f64::from(self.support).ln())
    }
}

/// A ranked answer with the interpretation that produced it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchResult {
    /// The primary elected category (the smallest-id winner of the
    /// constraint vote); `None` when no phrase resolved anywhere and
    /// retrieval fell back to global free text.
    pub category: Option<CategoryId>,
    /// The primary category's resolved constraints, in query order
    /// (empty when `category` is `None`).
    pub constraints: Vec<Constraint>,
    /// Ranked hits: constraints satisfied desc, evidence-weighted
    /// cosine desc, cluster key asc. At most `k`. Sibling categories
    /// share attribute vocabularies, so when several categories tie the
    /// election exactly ("Dell" resolves as a brand in each of them),
    /// hits are drawn from every tied category — each scored against
    /// its own category's constraints — and ranked together.
    pub hits: Vec<Hit>,
}

/// Answer `query` over the index, returning at most `k` hits.
///
/// Candidates are the union of (a) the postings of every in-vocabulary
/// query token and (b) the postings of the tokens of every indexed
/// value equivalent to a resolved constraint's value. (a) covers every
/// document with nonzero cosine; (b) covers every document that
/// satisfies a constraint through
/// [`pse_text::normalize::values_equivalent`], which can hold with no
/// shared token (`"500 gigabytes"` ≡ `"500 gb"`). Together they are a
/// superset of everything [`search_scan`] keeps, so both rank the same
/// hits in the same order.
pub fn search(index: &SearchIndex, query: &str, k: usize) -> SearchResult {
    let _span = pse_obs::span("query.search");
    pse_obs::incr("query.requests");
    let toks = tokens(query);
    let winners = elect_categories(index, &toks);
    let mut candidates = 0u64;
    let mut hits = Vec::new();
    if winners.is_empty() {
        pse_obs::incr("query.no_category");
        for ci in index.values() {
            let mut ids: BTreeSet<u32> = BTreeSet::new();
            for t in &toks {
                if let Some(sym) = ci.lookup(t) {
                    ids.extend(ci.postings(sym));
                }
            }
            candidates += ids.len() as u64;
            score_docs(&mut hits, ci, &ci.query_vec(&toks), &[], ids.iter().copied());
        }
    }
    for (cat, r) in &winners {
        let ci = &index[cat];
        let mut ids: BTreeSet<u32> = BTreeSet::new();
        for t in &toks {
            if let Some(sym) = ci.lookup(t) {
                ids.extend(ci.postings(sym));
            }
        }
        for c in &r.constraints {
            for (_, cv) in &c.candidates {
                for vid in ci.equivalent_values(cv) {
                    for vt in tokens(&ci.value_entry(vid).value) {
                        if let Some(sym) = ci.lookup(&vt) {
                            ids.extend(ci.postings(sym));
                        }
                    }
                }
            }
        }
        candidates += ids.len() as u64;
        score_docs(&mut hits, ci, &ci.query_vec(&toks), &r.constraints, ids.iter().copied());
    }
    pse_obs::observe("query.candidates", candidates);
    rank(&mut hits, k);
    let (category, constraints) = primary(winners);
    SearchResult { category, constraints, hits }
}

/// The naive reference: identical resolution and scoring, but every
/// indexed document is a candidate. Exists to pin [`search`]'s index
/// shortcuts — any divergence is a soundness bug in the index.
pub fn search_scan(index: &SearchIndex, query: &str, k: usize) -> SearchResult {
    let toks = tokens(query);
    let winners = elect_categories(index, &toks);
    let mut hits = Vec::new();
    if winners.is_empty() {
        for ci in index.values() {
            let all = 0..ci.docs().len() as u32;
            score_docs(&mut hits, ci, &ci.query_vec(&toks), &[], all);
        }
    }
    for (cat, r) in &winners {
        let ci = &index[cat];
        let all = 0..ci.docs().len() as u32;
        score_docs(&mut hits, ci, &ci.query_vec(&toks), &r.constraints, all);
    }
    rank(&mut hits, k);
    let (category, constraints) = primary(winners);
    SearchResult { category, constraints, hits }
}

/// Resolve the query against every category and elect the winners.
///
/// The vote key is (tokens covered, constraint-score sum, constraint
/// count): an interpretation covering more of the query wins outright —
/// a category that reads "ide ata 133" as one interface value explains
/// more of the query than a sibling reading only "133" as a screen
/// size — then confidence decides. Categories tying the best key
/// *exactly* are all elected, in ascending id order: sibling categories
/// share attribute vocabularies, so "Dell" resolves identically in each
/// of them and every one may hold answer products. Empty when nothing
/// resolved anywhere.
fn elect_categories(index: &SearchIndex, toks: &[String]) -> Vec<(CategoryId, Resolution)> {
    let mut winners: Vec<(CategoryId, Resolution)> = Vec::new();
    for (&cat, ci) in index {
        let r = Resolution::resolve(ci, toks);
        if r.constraints.is_empty() {
            continue;
        }
        let ord = match winners.first() {
            None => std::cmp::Ordering::Greater,
            Some((_, b)) => r
                .covered
                .cmp(&b.covered)
                .then(r.score.total_cmp(&b.score))
                .then(r.constraints.len().cmp(&b.constraints.len())),
        };
        match ord {
            std::cmp::Ordering::Greater => winners = vec![(cat, r)],
            std::cmp::Ordering::Equal => winners.push((cat, r)),
            std::cmp::Ordering::Less => {}
        }
    }
    if let Some((_, r)) = winners.first() {
        let exact = r.constraints.iter().filter(|c| c.exact).count() as u64;
        pse_obs::add("query.resolved_exact", exact);
        pse_obs::add("query.resolved_fuzzy", r.constraints.len() as u64 - exact);
    }
    winners
}

/// The primary (smallest-id) winner's category and constraints — what
/// the response reports as the query's interpretation.
fn primary(winners: Vec<(CategoryId, Resolution)>) -> (Option<CategoryId>, Vec<Constraint>) {
    match winners.into_iter().next() {
        Some((cat, r)) => (Some(cat), r.constraints),
        None => (None, Vec::new()),
    }
}

/// Score candidate documents and keep those with at least one satisfied
/// constraint or nonzero cosine.
fn score_docs(
    hits: &mut Vec<Hit>,
    ci: &CategoryIndex,
    qvec: &SparseVec,
    constraints: &[Constraint],
    ids: impl Iterator<Item = u32>,
) {
    for id in ids {
        let doc = &ci.docs()[id as usize];
        let matched = constraints.iter().filter(|c| c.satisfied_by(&doc.pairs)).count() as u32;
        let score = cosine_sparse(qvec, &doc.vec);
        if matched > 0 || score > 0.0 {
            hits.push(Hit {
                category: ci.category,
                key_attribute: doc.key_attribute.clone(),
                key_value: doc.key_value.clone(),
                matched,
                score,
                support: doc.support,
            });
        }
    }
}

/// Order hits by (matched desc, evidence-weighted cosine desc, cluster
/// key asc) and keep the top `k`. `total_cmp` keeps the order total (no
/// NaNs can occur, but the comparator must not panic regardless).
fn rank(hits: &mut Vec<Hit>, k: usize) {
    hits.sort_by(|a, b| {
        b.matched.cmp(&a.matched).then(b.weighted_score().total_cmp(&a.weighted_score())).then_with(
            || {
                (&a.category, &a.key_attribute, &a.key_value).cmp(&(
                    &b.category,
                    &b.key_attribute,
                    &b.key_value,
                ))
            },
        )
    });
    hits.truncate(k);
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use pse_core::{CorrespondenceSet, Spec};
    use pse_synthesis::SynthesizedProduct;

    use super::*;
    use crate::index::SearchIndex;

    fn product(cat: u32, key: &str, pairs: &[(&str, &str)]) -> SynthesizedProduct {
        SynthesizedProduct {
            category: CategoryId(cat),
            key_attribute: "MPN".into(),
            key_value: key.into(),
            spec: Spec::from_pairs(pairs.iter().map(|&(n, v)| (n, v))),
            offers: Vec::new(),
        }
    }

    fn build_index(products: &[SynthesizedProduct]) -> SearchIndex {
        let mut by_cat: BTreeMap<CategoryId, Vec<&SynthesizedProduct>> = BTreeMap::new();
        for p in products {
            by_cat.entry(p.category).or_default().push(p);
        }
        let cs = CorrespondenceSet::new();
        by_cat
            .into_iter()
            .map(|(cat, mut ps)| {
                ps.sort_by(|a, b| {
                    (&a.key_attribute, &a.key_value).cmp(&(&b.key_attribute, &b.key_value))
                });
                (cat, Arc::new(CategoryIndex::build(cat, &ps, &cs)))
            })
            .collect()
    }

    fn camera_world() -> Vec<SynthesizedProduct> {
        vec![
            product(
                0,
                "eos5d",
                &[
                    ("MPN", "EOS5D"),
                    ("Brand", "Canon"),
                    ("Resolution", "12 MP"),
                    ("Color", "Silver"),
                ],
            ),
            product(
                0,
                "d700",
                &[("MPN", "D700"), ("Brand", "Nikon"), ("Resolution", "12 MP"), ("Color", "Black")],
            ),
            product(
                1,
                "wd5000",
                &[("MPN", "WD5000"), ("Brand", "Western Digital"), ("Capacity", "500 GB")],
            ),
        ]
    }

    #[test]
    fn exact_constraints_elect_the_category_and_rank_matches_first() {
        let idx = build_index(&camera_world());
        let r = search(&idx, "canon 12 mp silver", 10);
        assert_eq!(r.category, Some(CategoryId(0)));
        assert_eq!(r.constraints.len(), 3);
        assert!(r.constraints.iter().all(|c| c.exact));
        assert_eq!(r.hits[0].key_value, "eos5d");
        assert_eq!(r.hits[0].matched, 3);
    }

    #[test]
    fn attribute_hint_narrows_the_next_value() {
        let idx = build_index(&camera_world());
        let r = search(&idx, "brand canon", 10);
        let c = &r.constraints[0];
        assert_eq!(c.attribute, "brand");
        assert_eq!(c.value, "canon");
    }

    #[test]
    fn equivalent_value_with_no_shared_token_is_still_retrieved() {
        // "500 gigabytes" shares only the digit token with the doc, and
        // the constraint resolves fuzzily or not at all — the scan
        // equivalence is what the proptest pins; here we pin the
        // digit-only overlap case end to end.
        let idx = build_index(&camera_world());
        let r = search(&idx, "capacity 500 gb", 10);
        assert_eq!(r.category, Some(CategoryId(1)));
        assert_eq!(r.hits[0].key_value, "wd5000");
        assert!(r.hits[0].matched >= 1);
        assert_eq!(r, search_scan(&idx, "capacity 500 gb", 10));
    }

    #[test]
    fn unresolvable_query_falls_back_to_global_free_text() {
        let idx = build_index(&camera_world());
        let r = search(&idx, "zzz unknown", 10);
        assert_eq!(r.category, None);
        assert!(r.constraints.is_empty());
        assert!(r.hits.is_empty());
        assert_eq!(r, search_scan(&idx, "zzz unknown", 10));
    }

    #[test]
    fn empty_query_is_empty_not_everything() {
        let idx = build_index(&camera_world());
        let r = search(&idx, "", 10);
        assert!(r.hits.is_empty());
        assert_eq!(r, search_scan(&idx, "", 10));
    }

    #[test]
    fn k_truncates_after_ranking() {
        let idx = build_index(&camera_world());
        let all = search(&idx, "12 mp", 10);
        let one = search(&idx, "12 mp", 1);
        assert_eq!(all.hits.len(), 2);
        assert_eq!(one.hits.len(), 1);
        assert_eq!(one.hits[0], all.hits[0]);
    }
}
