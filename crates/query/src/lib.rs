//! Structured query engine over the synthesized catalog.
//!
//! The paper's pipeline (PVLDB 4(7), Fig. 4) ends with clean synthesized
//! products; this crate is the step that lets users *find* them. A
//! free-text query like `"canon 12 mp silver"` is answered in four
//! deterministic stages, each reusing an artifact the system already
//! built:
//!
//! 1. **Segmentation** — the query is tokenized with the shared
//!    [`pse_text`] tokenizer and scanned greedily left-to-right for the
//!    longest contiguous phrases that name an attribute or a value known
//!    to a category's index. Attribute *surface forms* include the
//!    merchant names learned by offline correspondence learning, so
//!    `"hard disk size 500 gb"` segments the merchant phrasing, not just
//!    the catalog one.
//! 2. **Resolution** — each phrase becomes a `(category, attribute,
//!    normalized value)` constraint: exact interned-token lookup first,
//!    then a SoftTFIDF fallback for fuzzy value matches at or above
//!    [`FUZZY_THETA`]. The query's category is inferred by voting across
//!    the per-category resolutions (sum of constraint scores; ties break
//!    to more constraints, then the smaller id).
//! 3. **Retrieval** — candidates come from an inverted index over
//!    interned tokens ([`CategoryIndex`]): the union of the postings of
//!    every query token, plus the postings of every indexed value
//!    equivalent to a resolved constraint (so a constraint satisfied
//!    through [`pse_text::normalize::values_equivalent`] can never be
//!    missed). This makes the index provably a superset of the naive
//!    full scan — [`search`] and [`search_scan`] are byte-identical,
//!    property-pinned in the crate tests.
//! 4. **Ranking** — candidates order by (constraints satisfied desc,
//!    TF-IDF cosine over interned tokens desc, cluster key asc), using
//!    the same [`pse_text::InternedCorpus`] weighting the matcher uses.
//!
//! The engine itself is single-threaded and allocation-light; the
//! serving layer keeps one [`CategoryIndex`] per category, built lazily
//! from the published snapshot and invalidated per category by the same
//! dirty-cluster deltas that invalidate the response cache — so results
//! are identical at any thread or shard count.

pub mod index;
pub mod resolve;
pub mod search;

pub use index::{CategoryIndex, Doc, SearchIndex};
pub use resolve::{Constraint, Resolution, FUZZY_THETA, MAX_PHRASE_TOKENS};
pub use search::{search, search_scan, Hit, SearchResult};

/// Seed every counter and histogram the engine can emit, so the metric
/// set in an observability report is a function of the engine being
/// wired in, not of which queries happened to arrive (`obs_check`
/// demands the full set whenever a `query.*` span is present).
pub fn seed_metrics() {
    for c in ["query.requests", "query.resolved_exact", "query.resolved_fuzzy", "query.no_category"]
    {
        pse_obs::seed(c);
    }
    pse_obs::seed_histogram("query.candidates");
}
