//! Query segmentation and constraint resolution.
//!
//! A free-text query is tokenized once with the shared [`pse_text`]
//! tokenizer and then scanned greedily left-to-right against one
//! category's index: at each position the longest phrase (up to
//! [`MAX_PHRASE_TOKENS`]) that names a known attribute or value wins.
//! Attribute-name phrases become *hints* that narrow the very next
//! value constraint; value phrases become [`Constraint`]s — resolved
//! exactly through the interned phrase maps, or through the SoftTFIDF
//! fallback at or above [`FUZZY_THETA`] when no exact phrase starts at
//! the position. Tokens that resolve to nothing stay free text and
//! still participate in TF-IDF ranking.

use crate::index::CategoryIndex;

/// Inner SoftTFIDF threshold for the fuzzy value fallback, and the θ of
/// the scorer itself: only near-identical phrasings (token reorderings,
/// small typos) resolve fuzzily; everything else stays free text.
pub const FUZZY_THETA: f64 = 0.90;

/// Longest attribute or value phrase considered during segmentation.
/// Generated values are at most a few tokens; bounding the window keeps
/// segmentation linear in query length.
pub const MAX_PHRASE_TOKENS: usize = 4;

/// Extra category-election weight for each constraint bound through an
/// explicit attribute-name hint: a user who names an attribute that
/// really carries the value is strong evidence for the category, and the
/// bonus lets that interpretation beat an accidental bare-value
/// collision in another category.
pub const HINT_BONUS: f64 = 0.25;

/// Resolution confidence for a hint-scoped equivalent-value match —
/// below exact (the value phrasing differs) but well above the fuzzy
/// threshold (the named attribute plus equal digit content pins it).
const HINTED_EQUIVALENCE_SCORE: f64 = 0.95;

/// One resolved attribute-value constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// The query phrase that produced the constraint (normalized
    /// tokens, space-joined).
    pub phrase: String,
    /// Normalized catalog attribute the constraint binds to, when the
    /// segmentation saw an attribute-name hint; empty means "any
    /// attribute with this value".
    pub attribute: String,
    /// The normalized value of the best-resolving entry.
    pub value: String,
    /// Every `(attr, value)` entry the phrase may denote, sorted — a
    /// document satisfies the constraint by matching any of them.
    pub candidates: Vec<(String, String)>,
    /// Resolution confidence: 1.0 for exact, the SoftTFIDF similarity
    /// for fuzzy.
    pub score: f64,
    /// Whether the phrase resolved through the exact interned lookup
    /// (or the equivalent separator-free concatenation — same normal
    /// form, different token boundaries).
    pub exact: bool,
    /// Whether an attribute-name hint narrowed this constraint — the
    /// user named the attribute and the value resolved under it.
    pub hinted: bool,
}

impl Constraint {
    /// Whether a document's sorted non-empty `(attr, value)` pairs
    /// satisfy this constraint: some candidate's attribute appears with
    /// an *equivalent* value (equality, containment, tight concat, or
    /// digit-sequence identity — merchant phrasings of one fact).
    pub fn satisfied_by(&self, pairs: &[(String, String)]) -> bool {
        self.candidates.iter().any(|(ca, cv)| {
            pairs.iter().any(|(da, dv)| {
                da == ca && !dv.is_empty() && pse_text::normalize::values_equivalent(dv, cv)
            })
        })
    }
}

/// The outcome of resolving one query against one category's index.
#[derive(Debug, Clone, Default)]
pub struct Resolution {
    /// Constraints in query order.
    pub constraints: Vec<Constraint>,
    /// The category's vote weight: the sum of constraint scores plus
    /// [`HINT_BONUS`] per hint-bound constraint.
    pub score: f64,
    /// Query tokens this interpretation explains: constraint phrase
    /// tokens plus the attribute-name phrases of consumed hints. The
    /// primary election criterion — "ide ata 133" read as one
    /// three-token interface beats a sibling category reading only
    /// "133" as a screen size, whatever the scores.
    pub covered: usize,
}

impl Resolution {
    /// Resolve the already-tokenized query `toks` against `index`.
    /// Deterministic: greedy longest-match left-to-right, exact before
    /// fuzzy, ties broken by entry order.
    pub fn resolve(index: &CategoryIndex, toks: &[String]) -> Self {
        let mut constraints = Vec::new();
        let mut covered = 0usize;
        // Attribute hint from the most recent attribute-name phrase
        // (attributes it may name, token length of the naming phrase),
        // consumed by the next value constraint.
        let mut hint: Option<(Vec<String>, usize)> = None;
        let mut i = 0;
        while i < toks.len() {
            let max_len = MAX_PHRASE_TOKENS.min(toks.len() - i);
            let mut advanced = false;
            // Exact phrases first, longest first: attribute names act
            // as hints, values become constraints. Within one window
            // length: attribute name, exact value, concatenation-equal
            // value, then hint-scoped equivalent value.
            for len in (1..=max_len).rev() {
                let window = &toks[i..i + len];
                if let Some(syms) = index.phrase_syms(window) {
                    if let Some(attrs) = index.exact_attrs(&syms) {
                        hint = Some((attrs.to_vec(), len));
                        i += len;
                        advanced = true;
                        break;
                    }
                    if let Some(ids) = index.exact_values(&syms) {
                        constraints.push(make_constraint(
                            index,
                            window,
                            ids,
                            1.0,
                            true,
                            &mut hint,
                            &mut covered,
                        ));
                        i += len;
                        advanced = true;
                        break;
                    }
                }
                if let Some(ids) = index.concat_values(window) {
                    constraints.push(make_constraint(
                        index,
                        window,
                        ids,
                        1.0,
                        true,
                        &mut hint,
                        &mut covered,
                    ));
                    i += len;
                    advanced = true;
                    break;
                }
            }
            if advanced {
                continue;
            }
            // Hint-scoped equivalence next (after *every* exact window
            // length, so a long near-match can never shadow a shorter
            // exact one): a pending attribute-name hint plus a
            // digit-bearing phrase resolves through magnitude identity
            // with compatible units.
            if let Some((attrs, _)) = hint.clone() {
                for len in (1..=max_len).rev() {
                    let window = &toks[i..i + len];
                    let ids = index.hinted_equivalent_values(&attrs, window);
                    if !ids.is_empty() {
                        constraints.push(make_constraint(
                            index,
                            window,
                            &ids,
                            HINTED_EQUIVALENCE_SCORE,
                            false,
                            &mut hint,
                            &mut covered,
                        ));
                        i += len;
                        advanced = true;
                        break;
                    }
                }
            }
            if advanced {
                continue;
            }
            // Fuzzy fallback, longest phrase first so "cannon" can still
            // bind a multi-token brand; single unresolvable tokens stay
            // free text.
            for len in (1..=max_len).rev() {
                let phrase = toks[i..i + len].join(" ");
                if let Some((id, sim)) = index.fuzzy_value(&phrase) {
                    constraints.push(make_constraint(
                        index,
                        &toks[i..i + len],
                        &[id],
                        sim,
                        false,
                        &mut hint,
                        &mut covered,
                    ));
                    i += len;
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                i += 1;
            }
        }
        let score =
            constraints.iter().map(|c| c.score + if c.hinted { HINT_BONUS } else { 0.0 }).sum();
        Self { constraints, score, covered }
    }
}

/// Turn resolved value-entry ids into a [`Constraint`], applying (and
/// consuming) a pending attribute hint: when the hint intersects the
/// candidate attributes the candidates narrow to the intersection,
/// otherwise the hint is dropped — a mismatched hint must not veto an
/// exact value match. `covered` accumulates the query tokens this
/// constraint explains — its phrase, plus the attribute-name phrase of
/// a hint it consumed.
fn make_constraint(
    index: &CategoryIndex,
    window: &[String],
    ids: &[u32],
    score: f64,
    exact: bool,
    hint: &mut Option<(Vec<String>, usize)>,
    covered: &mut usize,
) -> Constraint {
    let mut candidates: Vec<(String, String)> = ids
        .iter()
        .map(|&id| {
            let e = index.value_entry(id);
            (e.attr.clone(), e.value.clone())
        })
        .collect();
    candidates.sort();
    candidates.dedup();
    let mut attribute = String::new();
    let mut hinted = false;
    *covered += window.len();
    if let Some((attrs, hint_len)) = hint.take() {
        let narrowed: Vec<(String, String)> =
            candidates.iter().filter(|(a, _)| attrs.contains(a)).cloned().collect();
        if !narrowed.is_empty() {
            candidates = narrowed;
            hinted = true;
            *covered += hint_len;
            if candidates.iter().all(|(a, _)| *a == candidates[0].0) {
                attribute = candidates[0].0.clone();
            }
        }
    } else if candidates.iter().all(|(a, _)| *a == candidates[0].0) {
        // Unambiguous even without a hint — echo the attribute.
        attribute = candidates[0].0.clone();
    }
    Constraint {
        phrase: window.join(" "),
        attribute,
        value: candidates[0].1.clone(),
        candidates,
        score,
        exact,
        hinted,
    }
}
