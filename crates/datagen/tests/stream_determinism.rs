//! OfferStream determinism pins (PR 9 tentpole): the streaming
//! generator is byte-identical to the materialized `World::generate` on
//! the same config, the offer sequence is invariant under batch size,
//! and scenario retraction waves only revoke already-emitted ids.

use std::sync::OnceLock;

use proptest::prelude::*;
use pse_datagen::{Scenario, StreamedOffer, World, WorldBase, WorldConfig};

fn tiny_base() -> &'static WorldBase {
    static BASE: OnceLock<WorldBase> = OnceLock::new();
    BASE.get_or_init(|| WorldBase::generate(WorldConfig::tiny()))
}

fn drain(base: &WorldBase, total: usize, batch: usize, scenario: Scenario) -> Vec<StreamedOffer> {
    let mut stream = base.stream_scenario(total, scenario);
    let mut out = Vec::with_capacity(total);
    while let Some(b) = stream.next_batch(batch) {
        out.extend(b.offers);
    }
    out
}

proptest! {
    /// Chaining `next_batch(k)` for any k yields the same offer
    /// sequence as one `next_batch(total)` — batching is presentation,
    /// not distribution.
    #[test]
    fn batch_size_invariance(batch in 1usize..97, total in 1usize..240) {
        let base = tiny_base();
        let chunked = drain(base, total, batch, Scenario::default());
        let whole = drain(base, total, total, Scenario::default());
        prop_assert_eq!(chunked, whole);
    }

    /// Batch-size invariance holds under every named scenario too —
    /// churn epochs and flash-sale bursts key off the offer index, not
    /// off batch boundaries.
    #[test]
    fn scenario_batch_size_invariance(batch in 1usize..97, which in 0usize..4) {
        let names = ["flash-sale", "merchant-churn", "retraction-waves", "mixed"];
        let base = tiny_base();
        let scenario = Scenario::parse(names[which]).expect("known scenario");
        let chunked = drain(base, 200, batch, scenario);
        let whole = drain(base, 200, 200, scenario);
        prop_assert_eq!(chunked, whole);
    }

    /// Streaming `num_offers` offers from a `WorldBase` reproduces the
    /// materialized `World` exactly — offers, true products, historical
    /// matches, and bullet-page flags — at any seed.
    #[test]
    fn stream_equals_materialized_world(seed in 0u64..1_000) {
        let cfg = WorldConfig { seed, ..WorldConfig::tiny() };
        let world = World::generate(cfg.clone());
        let base = WorldBase::generate(cfg);
        let streamed = drain(&base, world.offers.len(), 64, Scenario::default());
        prop_assert_eq!(streamed.len(), world.offers.len());
        for (so, offer) in streamed.iter().zip(&world.offers) {
            prop_assert_eq!(&so.offer, offer);
            prop_assert_eq!(so.product, world.truth.product_of(offer.id));
            prop_assert_eq!(so.historical, world.historical.product_of(offer.id));
            prop_assert_eq!(so.bullet, world.truth.is_bullet_page(offer.id));
        }
    }

    /// Every retraction id a batch reports was emitted in or before
    /// that batch, and each id is retracted at most once per stream.
    #[test]
    fn retraction_waves_lag_emission(every in 16usize..80, batch in 1usize..50) {
        let base = tiny_base();
        let scenario = Scenario {
            retraction_wave: Some(pse_datagen::RetractionWave { every, fraction: 0.2 }),
            ..Scenario::default()
        };
        let mut stream = base.stream_scenario(300, scenario);
        let mut emitted = 0usize;
        let mut seen = std::collections::HashSet::new();
        while let Some(b) = stream.next_batch(batch) {
            emitted += b.offers.len();
            for id in b.retractions {
                prop_assert!(id.index() < emitted, "retraction {} after {} emitted", id.index(), emitted);
                prop_assert!(seen.insert(id), "id retracted twice");
            }
        }
    }
}
