//! Landing-page rendering.
//!
//! Every offer gets a merchant landing page with the structure real product
//! pages have: navigation chrome (layout tables), a title block, the
//! specification block — usually a two-column table, sometimes a bulleted
//! list the table extractor misses — and, with configurable probability, a
//! noisy two-column table (customer reviews, shipping details) that the
//! extractor *will* pick up, producing exactly the kind of bogus pairs the
//! paper's Schema Reconciliation step has to filter out.

use pse_core::Spec;
use rand::RngExt;

/// Style decisions for one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageStyle {
    /// Render specs as a bulleted list instead of a table.
    pub bullet_specs: bool,
    /// Include a noisy two-column review/shipping table.
    pub noise_table: bool,
    /// Include a `Specifications` banner row (`<th colspan=2>`).
    pub banner_row: bool,
}

/// Render a landing page for an offer.
///
/// `spec` is the merchant-formatted offer specification (the information a
/// scraper could in principle recover); `style` controls the page shape and
/// `rng` draws the noise content.
pub fn render_landing_page<R: rand::Rng + ?Sized>(
    title: &str,
    merchant_name: &str,
    price_cents: u64,
    spec: &Spec,
    style: PageStyle,
    rng: &mut R,
) -> String {
    let mut html = String::with_capacity(2048);
    html.push_str("<!DOCTYPE html><html><head><title>");
    html.push_str(&escape(title));
    html.push_str(
        "</title><style>.nav{width:100%}</style>\
        <script>var tracking = '<table>';</script></head><body>",
    );

    // Navigation chrome: a three-column layout table (ignored by the
    // extractor because its rows are not two-column).
    html.push_str(
        "<table class=\"nav\"><tr>\
         <td>Home</td><td>Departments</td><td>Cart (0)</td>\
         </tr></table>",
    );

    html.push_str("<h1>");
    html.push_str(&escape(title));
    html.push_str("</h1><div class=\"seller\">Sold by ");
    html.push_str(&escape(merchant_name));
    html.push_str(&format!(
        "</div><div class=\"price\">${}.{:02}</div>",
        price_cents / 100,
        price_cents % 100
    ));

    if style.bullet_specs {
        html.push_str("<h2>Product Details</h2><ul>");
        for pair in spec.iter() {
            html.push_str("<li>");
            html.push_str(&escape(&pair.name));
            html.push_str(": ");
            html.push_str(&escape(&pair.value));
            html.push_str("</li>");
        }
        html.push_str("</ul>");
    } else {
        html.push_str("<h2>Specifications</h2><table class=\"specs\">");
        if style.banner_row {
            html.push_str("<tr><th colspan=\"2\">Technical Specifications</th></tr>");
        }
        for pair in spec.iter() {
            html.push_str("<tr><td>");
            html.push_str(&escape(&pair.name));
            html.push_str("</td><td>");
            html.push_str(&escape(&pair.value));
            html.push_str("</td></tr>");
        }
        // Occasional merged marketing row inside the spec table.
        if rng.random_bool(0.3) {
            html.push_str("<tr><td colspan=\"2\">Free shipping on orders over $25!</td></tr>");
        }
        html.push_str("</table>");
    }

    if style.noise_table {
        html.push_str("<h2>Customer Reviews</h2><table class=\"reviews\">");
        let reviewers = ["John D.", "Mary S.", "Alex P.", "Chris W."];
        let blurbs = [
            "Works great, very happy",
            "Arrived quickly, well packaged",
            "Would buy again",
            "Exactly as described",
        ];
        for _ in 0..rng.random_range(1..=3usize) {
            let who = reviewers[rng.random_range(0..reviewers.len())];
            let what = blurbs[rng.random_range(0..blurbs.len())];
            html.push_str(&format!("<tr><td>{who}</td><td>{what}</td></tr>"));
        }
        html.push_str("</table>");
    }

    html.push_str("<table class=\"footer\"><tr><td>About Us</td><td>Contact</td><td>Privacy</td></tr></table>");
    html.push_str("</body></html>");
    html
}

/// Minimal HTML escaping for text content.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> Spec {
        Spec::from_pairs([("Brand", "Hitachi"), ("Hard Disk Size", "500"), ("RPM", "7200 rpm")])
    }

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1)
    }

    #[test]
    fn table_page_round_trips_through_extractor() {
        let style = PageStyle { bullet_specs: false, noise_table: false, banner_row: true };
        let html = render_landing_page(
            "Hitachi 500GB",
            "Microwarehouse",
            8999,
            &spec(),
            style,
            &mut rng(),
        );
        let extracted = pse_extract_for_test(&html);
        assert_eq!(extracted.get("Brand"), Some("Hitachi"));
        assert_eq!(extracted.get("Hard Disk Size"), Some("500"));
        assert_eq!(extracted.get("RPM"), Some("7200 rpm"));
    }

    #[test]
    fn bullet_page_yields_no_table_pairs() {
        let style = PageStyle { bullet_specs: true, noise_table: false, banner_row: false };
        let html = render_landing_page("X", "M", 100, &spec(), style, &mut rng());
        let extracted = pse_extract_for_test(&html);
        assert_eq!(extracted.get("Brand"), None);
    }

    #[test]
    fn noise_table_produces_bogus_pairs() {
        let style = PageStyle { bullet_specs: false, noise_table: true, banner_row: false };
        let html = render_landing_page("X", "M", 100, &spec(), style, &mut rng());
        let extracted = pse_extract_for_test(&html);
        // Review rows are two-column, so at least one bogus pair appears.
        assert!(extracted.len() > spec().len(), "extracted {:?}", extracted);
    }

    #[test]
    fn titles_are_escaped() {
        let style = PageStyle { bullet_specs: false, noise_table: false, banner_row: false };
        let html =
            render_landing_page("3.5\" <Drive> & Co", "M", 100, &Spec::new(), style, &mut rng());
        assert!(html.contains("3.5&quot; &lt;Drive&gt; &amp; Co"));
    }

    /// Local re-implementation of the extraction call to avoid a circular
    /// dev-dependency on `pse-extract` (which depends on nothing here, but
    /// keeping datagen's dev-deps minimal keeps build graphs simple).
    fn pse_extract_for_test(html: &str) -> Spec {
        pse_html_parse(html)
    }

    fn pse_html_parse(html: &str) -> Spec {
        // A tiny inline extractor equivalent to pse-extract's logic.
        let doc = pse_html::parse(html);
        let mut out = Spec::new();
        for table in pse_html::extract_tables(&doc) {
            for row in &table.rows {
                if row.len() == 2
                    && row[0].colspan == 1
                    && row[1].colspan == 1
                    && !(row[0].is_header && row[1].is_header)
                    && !row[0].text.trim().is_empty()
                    && !row[1].text.trim().is_empty()
                {
                    out.push(row[0].text.trim(), row[1].text.trim());
                }
            }
        }
        out
    }
}
