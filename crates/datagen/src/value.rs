//! Canonical attribute-value generation.
//!
//! Each catalog attribute carries a [`ValueGen`] describing how product
//! values for it are drawn. Category instances skew the choice weights
//! (two hard-drive subcategories prefer different capacities), which gives
//! every (category, attribute) pair its own value *distribution* — the
//! signal the paper's matcher learns from.

use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Generator for the canonical (catalog-side) values of one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ValueGen {
    /// A numeric magnitude from a fixed menu, rendered with a unit,
    /// e.g. `500` + `"GB"` → `"500 GB"`.
    Numeric {
        /// The menu of plausible magnitudes.
        values: Vec<f64>,
        /// Canonical unit suffix (may be empty).
        unit: String,
        /// Alternative unit spellings merchants may use (`"gigabytes"`).
        alt_units: Vec<String>,
    },
    /// A categorical value from a fixed vocabulary.
    Enum {
        /// The vocabulary.
        choices: Vec<String>,
    },
    /// A brand name from a pool.
    Brand {
        /// The brand pool of the category.
        pool: Vec<String>,
    },
    /// A manufacturer part number: letters + digits, high cardinality.
    Mpn,
    /// A 12-digit universal product code.
    Upc,
}

impl ValueGen {
    /// Number of distinct base choices (`u64::MAX` for identifiers).
    pub fn cardinality(&self) -> u64 {
        match self {
            ValueGen::Numeric { values, .. } => values.len() as u64,
            ValueGen::Enum { choices } => choices.len() as u64,
            ValueGen::Brand { pool } => pool.len() as u64,
            ValueGen::Mpn | ValueGen::Upc => u64::MAX,
        }
    }

    /// Draw weights skewing this generator's menu for one category.
    ///
    /// Returns an empty vector for identifier generators.
    pub fn category_weights<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let n = match self {
            ValueGen::Numeric { values, .. } => values.len(),
            ValueGen::Enum { choices } => choices.len(),
            ValueGen::Brand { pool } => pool.len(),
            _ => 0,
        };
        // Squared uniforms concentrate mass on a few choices, giving each
        // category a recognizably skewed distribution.
        (0..n)
            .map(|_| {
                let u: f64 = rng.random();
                u * u + 0.05
            })
            .collect()
    }

    /// Sample one canonical value using the category `weights` (as produced
    /// by [`Self::category_weights`]).
    pub fn sample<R: rand::Rng + ?Sized>(&self, weights: &[f64], rng: &mut R) -> String {
        match self {
            ValueGen::Numeric { values, unit, .. } => {
                let v = values[weighted_index(weights, rng)];
                if unit.is_empty() {
                    format_number(v)
                } else {
                    format!("{} {}", format_number(v), unit)
                }
            }
            ValueGen::Enum { choices } => choices[weighted_index(weights, rng)].clone(),
            ValueGen::Brand { pool } => pool[weighted_index(weights, rng)].clone(),
            ValueGen::Mpn => {
                let letters: String =
                    (0..3).map(|_| (b'A' + rng.random_range(0..26u8)) as char).collect();
                let digits: u32 = rng.random_range(10_000..1_000_000);
                let tail: String =
                    (0..2).map(|_| (b'A' + rng.random_range(0..26u8)) as char).collect();
                format!("{letters}{digits}{tail}")
            }
            ValueGen::Upc => {
                let hi: u64 = rng.random_range(100_000..1_000_000);
                let lo: u64 = rng.random_range(0..1_000_000);
                format!("{hi}{lo:06}")
            }
        }
    }
}

/// Render `v` without a trailing `.0` for integral values.
pub fn format_number(v: f64) -> String {
    if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v}")
    }
}

/// Sample an index proportional to `weights`; uniform when `weights` is
/// empty or sums to zero.
pub fn weighted_index<R: rand::Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    if weights.is_empty() {
        return 0;
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.random_range(0..weights.len());
    }
    let mut target = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        target -= w;
        if target <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    #[test]
    fn numeric_sampling_respects_menu() {
        let g = ValueGen::Numeric {
            values: vec![250.0, 500.0, 1000.0],
            unit: "GB".into(),
            alt_units: vec![],
        };
        let mut r = rng();
        let w = g.category_weights(&mut r);
        for _ in 0..50 {
            let v = g.sample(&w, &mut r);
            assert!(["250 GB", "500 GB", "1000 GB"].contains(&v.as_str()), "unexpected value {v}");
        }
    }

    #[test]
    fn weights_skew_distributions() {
        let g = ValueGen::Enum { choices: vec!["a".into(), "b".into()] };
        let mut r = rng();
        let w = vec![100.0, 1.0];
        let a_count = (0..200).filter(|_| g.sample(&w, &mut r) == "a").count();
        assert!(a_count > 150, "a_count={a_count}");
    }

    #[test]
    fn identifiers_are_high_cardinality() {
        let g = ValueGen::Mpn;
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(g.sample(&[], &mut r));
        }
        assert!(seen.len() > 95);
        for v in &seen {
            assert!(v.len() >= 9 && v.len() <= 11, "mpn shape: {v}");
        }
    }

    #[test]
    fn upc_is_twelve_digits() {
        let g = ValueGen::Upc;
        let mut r = rng();
        for _ in 0..20 {
            let v = g.sample(&[], &mut r);
            assert_eq!(v.len(), 12, "{v}");
            assert!(v.bytes().all(|b| b.is_ascii_digit()));
        }
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(500.0), "500");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(7200.0), "7200");
    }

    #[test]
    fn weighted_index_edge_cases() {
        let mut r = rng();
        assert_eq!(weighted_index(&[], &mut r), 0);
        assert_eq!(weighted_index(&[1.0], &mut r), 0);
        let i = weighted_index(&[0.0, 0.0], &mut r);
        assert!(i < 2);
    }
}
