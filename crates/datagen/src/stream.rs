//! Constant-memory offer streaming for paper-scale ingest.
//!
//! [`World::generate`] materializes every offer in `Vec`s — fine at
//! test scale, hopeless at the paper's 856,781 offers and beyond. An
//! [`OfferStream`] walks the same per-offer RNG sequence the
//! materializer uses, yielding offers in batches without retaining any
//! of them: memory is the [`WorldBase`] scaffold plus one batch,
//! independent of how many offers the stream produces.
//!
//! Determinism contract (pinned by proptests in `world.rs`):
//!
//! * a drained stream of `config.num_offers` offers equals
//!   [`World::generate`]'s `offers` byte for byte — `generate` *is* a
//!   drained stream, so this holds by construction;
//! * batch size never changes the sequence — `next_batch(1)` chained
//!   and `next_batch(10_000)` chained concatenate to the same offers;
//! * a stream may run past `config.num_offers` (the offer count feeds
//!   no setup decision), so million-offer runs reuse small-world
//!   configs and stay prefix-compatible with them.
//!
//! A [`Scenario`] reshapes the load for ingest benchmarks — flash-sale
//! bursts that concentrate offers on one hot category (shard hot
//! spots), merchant churn that rotates the active merchant set
//! (vocabulary cold starts), and retraction waves that revoke a slice
//! of a just-emitted window (tombstone pressure). All knobs are off by
//! default, and the default scenario is exactly the materializer's
//! distribution.
//!
//! [`World::generate`]: crate::world::World::generate

use pse_core::{MerchantId, Offer, OfferId, ProductId, Spec};
use rand::{rngs::StdRng, RngExt};

use crate::value::weighted_index;
use crate::world::{offer_price, offer_title, slug, WorldBase};

/// Periodic demand spike: every `period` offers, the first `burst` of
/// them land on a single rotating hot category instead of the skewed
/// steady-state category distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashSale {
    /// Cycle length in offers.
    pub period: usize,
    /// Offers at the start of each cycle that hit the hot category.
    pub burst: usize,
}

/// Merchant onboarding/offboarding: the active merchant set is a
/// rotating window — each `window` offers, it advances by one merchant,
/// so merchants continually come online and drop offline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MerchantChurn {
    /// Offers between advances of the active window.
    pub window: usize,
    /// Fraction of all merchants online at any moment.
    pub online_fraction: f64,
}

/// Periodic retractions: after every `every` offers, a wave revokes
/// `fraction` of the window just emitted (evenly strided offer ids —
/// arithmetic, no RNG, so waves never perturb the offer sequence).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetractionWave {
    /// Offers between waves.
    pub every: usize,
    /// Fraction of each window to retract.
    pub fraction: f64,
}

/// Load shape of an [`OfferStream`]. `Scenario::default()` leaves every
/// knob off and reproduces [`World::generate`]'s distribution exactly.
///
/// [`World::generate`]: crate::world::World::generate
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Scenario {
    /// Flash-sale bursts onto one hot category.
    pub flash_sale: Option<FlashSale>,
    /// Merchant onboarding/offboarding churn.
    pub merchant_churn: Option<MerchantChurn>,
    /// Periodic retraction waves.
    pub retraction_wave: Option<RetractionWave>,
}

impl Scenario {
    /// Parse a named scenario for CLI use: `steady` (default),
    /// `flash-sale`, `merchant-churn`, `retraction-waves`, or `mixed`
    /// (all three). Returns `None` for unknown names.
    pub fn parse(name: &str) -> Option<Self> {
        let flash = FlashSale { period: 5_000, burst: 1_500 };
        let churn = MerchantChurn { window: 2_000, online_fraction: 0.6 };
        let waves = RetractionWave { every: 50_000, fraction: 0.1 };
        match name {
            "steady" => Some(Self::default()),
            "flash-sale" => Some(Self { flash_sale: Some(flash), ..Self::default() }),
            "merchant-churn" => Some(Self { merchant_churn: Some(churn), ..Self::default() }),
            "retraction-waves" => Some(Self { retraction_wave: Some(waves), ..Self::default() }),
            "mixed" => Some(Self {
                flash_sale: Some(flash),
                merchant_churn: Some(churn),
                retraction_wave: Some(waves),
            }),
            _ => None,
        }
    }
}

/// One streamed offer plus the ground truth the materializer would have
/// recorded for it: the true product, the (possibly erroneous)
/// historical match, and whether its landing page renders as bullets.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedOffer {
    /// The offer, byte-identical to the materializer's.
    pub offer: Offer,
    /// The true product (what `truth.offer_product` would record).
    pub product: ProductId,
    /// The historical match, if the offer carries one.
    pub historical: Option<ProductId>,
    /// Whether the landing page renders specs as bullets.
    pub bullet: bool,
}

/// One batch from an [`OfferStream`]: new offers, plus the offer ids a
/// retraction wave revoked while the batch was being emitted (empty
/// unless the scenario enables waves).
#[derive(Debug, Clone, Default)]
pub struct StreamBatch {
    /// Offers in stream order.
    pub offers: Vec<StreamedOffer>,
    /// Offer ids retracted by waves that completed inside this batch.
    pub retractions: Vec<OfferId>,
}

/// A constant-memory iterator over the offers of a [`WorldBase`]. See
/// the module docs for the determinism contract.
#[derive(Debug, Clone)]
pub struct OfferStream<'a> {
    base: &'a WorldBase,
    rng: StdRng,
    next: usize,
    limit: usize,
    scenario: Scenario,
    /// Categories with at least one covering merchant — the flash-sale
    /// hot-category rotation draws from these so a burst can always be
    /// served.
    hot_categories: Vec<usize>,
    churn_pool: Vec<usize>,
}

impl<'a> OfferStream<'a> {
    pub(crate) fn new(base: &'a WorldBase, total: usize, scenario: Scenario) -> Self {
        let hot_categories = if scenario.flash_sale.is_some() {
            (0..base.categories.len()).filter(|&ci| !base.merchants_of_cat[ci].is_empty()).collect()
        } else {
            Vec::new()
        };
        Self {
            base,
            rng: base.offer_loop_rng(),
            next: 0,
            limit: total,
            scenario,
            hot_categories,
            churn_pool: Vec::new(),
        }
    }

    /// Offers emitted so far (also the id of the next offer).
    pub fn position(&self) -> usize {
        self.next
    }

    /// Total offers this stream will emit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Offers still to come.
    pub fn remaining(&self) -> usize {
        self.limit - self.next
    }

    /// Emit up to `max` offers (and any retraction wave completing
    /// within them), or `None` once the stream is exhausted. The offer
    /// sequence is invariant under `max`.
    pub fn next_batch(&mut self, max: usize) -> Option<StreamBatch> {
        if self.next >= self.limit {
            return None;
        }
        let start = self.next;
        let count = max.max(1).min(self.limit - start);
        let mut offers = Vec::with_capacity(count);
        for _ in 0..count {
            offers.push(self.next_offer());
        }
        Some(StreamBatch { offers, retractions: self.retractions_between(start, self.next) })
    }

    /// The per-offer draws, in exactly the order the materializer makes
    /// them: category → merchant → product → price → title → feed spec
    /// → historical match → bullet flag. Scenario overrides substitute
    /// *which values are drawn from* without adding or removing draws,
    /// so a scenario stream is as deterministic as a steady one.
    fn next_offer(&mut self) -> StreamedOffer {
        let base = self.base;
        let oi = self.next;
        self.next += 1;

        let mut ci = weighted_index(&base.cat_weights, &mut self.rng);
        if let Some(fs) = self.scenario.flash_sale {
            if fs.period > 0 && oi % fs.period < fs.burst && !self.hot_categories.is_empty() {
                ci = self.hot_categories[(oi / fs.period) % self.hot_categories.len()];
            }
        }
        let info = &base.categories[ci];
        let ms = &base.merchants_of_cat[ci];
        let pool: &[usize] = match self.scenario.merchant_churn {
            Some(ch) if ch.window > 0 => {
                let n = base.merchants.len();
                let online =
                    ((n as f64) * ch.online_fraction.clamp(0.0, 1.0)).ceil().max(1.0) as usize;
                let epoch = oi / ch.window;
                self.churn_pool.clear();
                self.churn_pool.extend(ms.iter().copied().filter(|&mi| (mi + epoch) % n < online));
                // A category whose merchants are all offline still gets
                // served (offers always have a merchant); the window
                // just biases who serves it.
                if self.churn_pool.is_empty() {
                    ms
                } else {
                    &self.churn_pool
                }
            }
            _ => ms,
        };
        let mi = pool[self.rng.random_range(0..pool.len())];
        let merchant = MerchantId::from_index(mi);

        // Pick a product from the merchant's assortment, with zipf-ish
        // popularity by catalog rank.
        let eligible = &base.assortments[&(merchant, info.id)];
        let w: Vec<f64> = eligible
            .iter()
            .map(|pid| {
                let rank = pid.index() % base.config.products_per_category;
                base.product_weights.get(rank).copied().unwrap_or(1e-3)
            })
            .collect();
        let pid = eligible[weighted_index(&w, &mut self.rng)];
        let product = base.catalog.product(pid);

        let offer_id = OfferId::from_index(oi);
        let price_cents = offer_price(pid, mi, &mut self.rng);
        let title = offer_title(&product.title, &mut self.rng);

        // Feeds carry little structured data (paper Fig. 3): usually no
        // specification at all, occasionally one or two pairs.
        let vocab = &base.vocabs[&(merchant, info.id)];
        let mut feed_spec = Spec::new();
        if self.rng.random_bool(0.2) {
            if let Some(surface) = vocab.merchant_name("Brand") {
                if let Some(v) = product.spec.get("Brand") {
                    feed_spec.push(surface, v);
                }
            }
        }

        let offer = Offer {
            id: offer_id,
            merchant,
            price_cents,
            image_url: Some(format!("https://img.example.com/{oi}.jpg")),
            category: Some(info.id),
            url: format!("https://www.{}.example.com/product/{oi}", slug(&base.merchants[mi].name)),
            title,
            spec: feed_spec,
        };

        let historical = if self.rng.random_bool(base.config.historical_fraction) {
            let in_cat = &base.cat_products[ci];
            let matched = if self.rng.random_bool(base.config.match_error_rate) && in_cat.len() > 1
            {
                // Wrong product in the same category.
                loop {
                    let wrong = in_cat[self.rng.random_range(0..in_cat.len())];
                    if wrong != pid {
                        break wrong;
                    }
                }
            } else {
                pid
            };
            Some(matched)
        } else {
            None
        };
        let bullet = self.rng.random_bool(base.config.bullet_page_probability);

        StreamedOffer { offer, product: pid, historical, bullet }
    }

    /// Retractions from waves whose window boundary falls in
    /// `(start, end]`: each wave revokes an even stride of the window
    /// it closes. Pure arithmetic on offer ids — no RNG draws, so waves
    /// cannot perturb the offer sequence.
    fn retractions_between(&self, start: usize, end: usize) -> Vec<OfferId> {
        let Some(wave) = self.scenario.retraction_wave else { return Vec::new() };
        if wave.every == 0 || wave.fraction <= 0.0 {
            return Vec::new();
        }
        let step = ((1.0 / wave.fraction.min(1.0)).round() as usize).max(1);
        let mut out = Vec::new();
        let mut boundary = (start / wave.every + 1) * wave.every;
        while boundary <= end {
            let mut i = boundary - wave.every;
            while i < boundary {
                out.push(OfferId::from_index(i));
                i += step;
            }
            boundary += wave.every;
        }
        out
    }
}

/// Per-offer iteration (retraction waves are only surfaced by
/// [`OfferStream::next_batch`]; `next()` skips them).
impl Iterator for OfferStream<'_> {
    type Item = StreamedOffer;

    fn next(&mut self) -> Option<StreamedOffer> {
        if self.next >= self.limit {
            return None;
        }
        Some(self.next_offer())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;

    fn base() -> WorldBase {
        WorldBase::generate(WorldConfig::tiny())
    }

    #[test]
    fn stream_equals_materialized_world() {
        let b = base();
        let w = World::generate(WorldConfig::tiny());
        let streamed: Vec<StreamedOffer> = b.stream(w.offers.len()).collect();
        assert_eq!(streamed.len(), w.offers.len());
        for (so, o) in streamed.iter().zip(&w.offers) {
            assert_eq!(&so.offer, o);
            assert_eq!(so.product, w.truth.product_of(o.id));
            assert_eq!(so.historical, w.historical.product_of(o.id));
            assert_eq!(so.bullet, w.truth.is_bullet_page(o.id));
        }
    }

    #[test]
    fn batch_size_does_not_change_the_sequence() {
        let b = base();
        let mut small = b.stream(100);
        let mut big = b.stream(100);
        let mut from_small = Vec::new();
        while let Some(batch) = small.next_batch(7) {
            from_small.extend(batch.offers);
        }
        let from_big = big.next_batch(100).expect("non-empty").offers;
        assert_eq!(from_small, from_big);
    }

    #[test]
    fn stream_extends_past_config_num_offers() {
        let b = base();
        let n = b.config().num_offers;
        let extended: Vec<StreamedOffer> = b.stream(n + 50).collect();
        assert_eq!(extended.len(), n + 50);
        let prefix: Vec<StreamedOffer> = b.stream(n).collect();
        assert_eq!(&extended[..n], &prefix[..]);
        assert_eq!(extended[n].offer.id, OfferId::from_index(n));
    }

    #[test]
    fn page_spec_for_matches_world_page_spec() {
        let b = base();
        let w = World::generate(WorldConfig::tiny());
        for so in b.stream(20) {
            assert_eq!(b.page_spec_for(&so.offer, so.product), w.page_spec(so.offer.id));
        }
    }

    #[test]
    fn scenarios_are_deterministic_and_serveable() {
        let scenario = Scenario::parse("mixed").expect("known scenario");
        let b = base();
        let a: Vec<StreamedOffer> = b.stream_scenario(200, scenario).collect();
        let c: Vec<StreamedOffer> = b.stream_scenario(200, scenario).collect();
        assert_eq!(a, c);
        for so in &a {
            let cat = so.offer.category.expect("category set");
            assert!(b.category_info(cat).is_some(), "scenario offers reference real categories");
            assert_eq!(b.catalog().product(so.product).category, cat);
        }
    }

    #[test]
    fn flash_sale_concentrates_bursts() {
        let fs = FlashSale { period: 50, burst: 40 };
        let scenario = Scenario { flash_sale: Some(fs), ..Scenario::default() };
        let b = base();
        let offers: Vec<StreamedOffer> = b.stream_scenario(50, scenario).collect();
        let burst_cats: std::collections::HashSet<_> =
            offers[..40].iter().map(|so| so.offer.category).collect();
        assert_eq!(burst_cats.len(), 1, "every burst offer hits the one hot category");
    }

    #[test]
    fn retraction_waves_revoke_prior_offers_only() {
        let wave = RetractionWave { every: 64, fraction: 0.25 };
        let scenario = Scenario { retraction_wave: Some(wave), ..Scenario::default() };
        let b = base();
        let mut stream = b.stream_scenario(300, scenario);
        let mut emitted = 0usize;
        let mut retracted = Vec::new();
        while let Some(batch) = stream.next_batch(37) {
            for id in &batch.retractions {
                assert!(id.index() < emitted + batch.offers.len(), "retractions lag emission");
            }
            emitted += batch.offers.len();
            retracted.extend(batch.retractions);
        }
        // 300/64 = 4 complete windows, 64 * 0.25 = 16 ids each.
        assert_eq!(retracted.len(), 4 * 16);
        let unique: std::collections::HashSet<_> = retracted.iter().copied().collect();
        assert_eq!(unique.len(), retracted.len(), "waves never retract an id twice");
    }

    #[test]
    fn unknown_scenario_name_rejected() {
        assert!(Scenario::parse("warp-speed").is_none());
        assert_eq!(Scenario::parse("steady"), Some(Scenario::default()));
    }
}
