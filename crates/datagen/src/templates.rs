//! Static template data: top-level categories, leaf-category name pools,
//! brand pools, attribute templates with merchant synonym pools, and junk
//! (merchant-only) attributes.
//!
//! The four top levels and their character mirror the paper's evaluation
//! (Table 3): Cameras and Computing have rich schemas; Home Furnishings and
//! Kitchen & Housewares have sparse ones.

use pse_core::AttributeKind;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::value::ValueGen;

/// The four top-level categories, in Table 3 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopLevel {
    /// Digital cameras, lenses, camcorders…
    Cameras,
    /// Hard drives, laptops, monitors…
    Computing,
    /// Bedspreads, lamps, rugs…
    Furnishings,
    /// Mixers, dishwashers, cookware…
    Kitchen,
}

impl TopLevel {
    /// All four, in order.
    pub const ALL: [TopLevel; 4] =
        [TopLevel::Cameras, TopLevel::Computing, TopLevel::Furnishings, TopLevel::Kitchen];

    /// Display name used in the taxonomy.
    pub fn name(self) -> &'static str {
        match self {
            TopLevel::Cameras => "Cameras",
            TopLevel::Computing => "Computing",
            TopLevel::Furnishings => "Home Furnishings",
            TopLevel::Kitchen => "Kitchen & Housewares",
        }
    }

    /// Whether schemas under this top level are attribute-rich.
    pub fn is_rich(self) -> bool {
        matches!(self, TopLevel::Cameras | TopLevel::Computing)
    }

    /// Range (min, max) of non-universal attributes per leaf schema.
    pub fn schema_width(self) -> (usize, usize) {
        if self.is_rich() {
            (4, 8)
        } else {
            (2, 3)
        }
    }
}

/// Leaf-category name pool for a top level. When a world needs more leaves
/// than the pool holds, names are recycled with an index suffix.
pub fn category_names(top: TopLevel) -> &'static [&'static str] {
    match top {
        TopLevel::Cameras => &[
            "Digital Cameras",
            "SLR Lenses",
            "Camcorders",
            "Camera Flashes",
            "Tripods",
            "Camera Bags",
            "Memory Cards",
            "Binoculars",
            "Telescopes",
            "Photo Printers",
        ],
        TopLevel::Computing => &[
            "Hard Drives",
            "Laptops",
            "Monitors",
            "Desktops",
            "Printers",
            "Routers",
            "Graphics Cards",
            "Motherboards",
            "Keyboards",
            "Mice",
            "Workstations",
            "Mobile Devices",
            "USB Drives",
            "Sound Cards",
            "Network Switches",
            "Webcams",
        ],
        TopLevel::Furnishings => &[
            "Bedspreads",
            "Home Lighting",
            "Area Rugs",
            "Curtains",
            "Throw Pillows",
            "Mattresses",
            "Picture Frames",
            "Wall Clocks",
        ],
        TopLevel::Kitchen => &[
            "Stand Mixers",
            "Dishwashers",
            "Air Conditioners",
            "Blenders",
            "Coffee Makers",
            "Toasters",
            "Cookware Sets",
            "Microwave Ovens",
        ],
    }
}

/// Brand pool for a top level.
pub fn brand_pool(top: TopLevel) -> Vec<String> {
    let brands: &[&str] = match top {
        TopLevel::Cameras => &[
            "Canon",
            "Nikon",
            "Sony",
            "Olympus",
            "Panasonic",
            "Fujifilm",
            "Pentax",
            "Leica",
            "Sigma",
            "Tamron",
            "Kodak",
            "Casio",
        ],
        TopLevel::Computing => &[
            "Seagate",
            "Western Digital",
            "Hitachi",
            "Samsung",
            "Toshiba",
            "HP",
            "Dell",
            "Lenovo",
            "Asus",
            "Acer",
            "Intel",
            "Kingston",
            "Corsair",
            "Logitech",
            "NetGear",
        ],
        TopLevel::Furnishings => &[
            "Ashley",
            "Croscill",
            "Waverly",
            "Serta",
            "Simmons",
            "Laura Ashley",
            "Nautica",
            "Tommy Hilfiger",
        ],
        TopLevel::Kitchen => &[
            "KitchenAid",
            "Cuisinart",
            "Whirlpool",
            "GE",
            "Bosch",
            "Oster",
            "Hamilton Beach",
            "Breville",
            "Krups",
            "DeLonghi",
        ],
    };
    brands.iter().map(|s| s.to_string()).collect()
}

/// One catalog attribute template: canonical name, the synonym pool
/// merchants draw their private names from, value kind, and value generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrTemplate {
    /// Canonical catalog name.
    pub name: String,
    /// Names merchants may use instead of the canonical one.
    pub synonyms: Vec<String>,
    /// Value kind.
    pub kind: AttributeKind,
    /// Value generator.
    pub gen: ValueGen,
}

impl AttrTemplate {
    fn new(name: &str, synonyms: &[&str], kind: AttributeKind, gen: ValueGen) -> Self {
        Self {
            name: name.to_string(),
            synonyms: synonyms.iter().map(|s| s.to_string()).collect(),
            kind,
            gen,
        }
    }
}

fn numeric(values: &[f64], unit: &str, alts: &[&str]) -> ValueGen {
    ValueGen::Numeric {
        values: values.to_vec(),
        unit: unit.to_string(),
        alt_units: alts.iter().map(|s| s.to_string()).collect(),
    }
}

fn choices(items: &[&str]) -> ValueGen {
    ValueGen::Enum { choices: items.iter().map(|s| s.to_string()).collect() }
}

/// The universal attributes present in every leaf schema: Brand plus the two
/// key attributes the clustering component relies on (MPN, UPC).
pub fn universal_attributes(top: TopLevel) -> Vec<AttrTemplate> {
    vec![
        AttrTemplate::new(
            "Brand",
            &["Manufacturer", "Brand Name", "Make"],
            AttributeKind::Text,
            ValueGen::Brand { pool: brand_pool(top) },
        ),
        AttrTemplate::new(
            "MPN",
            &["Mfr. Part #", "Model Part Number", "Part Number", "Manufacturers Part Number"],
            AttributeKind::Identifier,
            ValueGen::Mpn,
        ),
        AttrTemplate::new(
            "UPC",
            &["UPC Code", "Universal Product Code", "EAN"],
            AttributeKind::Identifier,
            ValueGen::Upc,
        ),
    ]
}

/// Domain attribute pool for a top level. Leaf schemas draw a subset.
pub fn attribute_pool(top: TopLevel) -> Vec<AttrTemplate> {
    use AttributeKind::{Numeric as N, Text as T};
    match top {
        TopLevel::Computing => vec![
            AttrTemplate::new(
                "Capacity",
                &["Hard Disk Size", "Storage Capacity", "Disk Capacity", "Hard Drive Capacity"],
                N,
                numeric(
                    &[80.0, 160.0, 250.0, 320.0, 400.0, 500.0, 640.0, 750.0, 1000.0, 1500.0],
                    "GB",
                    &["gigabytes", "Gb"],
                ),
            ),
            AttrTemplate::new(
                "Speed",
                &["RPM", "Rotational Speed", "Spindle Speed"],
                N,
                numeric(&[4200.0, 5400.0, 7200.0, 10000.0, 15000.0], "rpm", &["RPM"]),
            ),
            AttrTemplate::new(
                "Interface",
                &["Int. Type", "Interface Type", "Connection Type", "Bus Type"],
                T,
                choices(&[
                    "Serial ATA 300",
                    "SATA 150",
                    "IDE ATA 133",
                    "SCSI Ultra 320",
                    "SAS",
                    "USB 2.0",
                    "FireWire 800",
                ]),
            ),
            AttrTemplate::new(
                "Buffer Size",
                &["Cache", "Cache Size", "Buffer"],
                N,
                numeric(&[2.0, 8.0, 16.0, 32.0, 64.0], "MB", &["megabytes"]),
            ),
            AttrTemplate::new(
                "Form Factor",
                &["Drive Size", "Disk Size"],
                T,
                choices(&["3.5 inch", "2.5 inch", "1.8 inch", "5.25 inch"]),
            ),
            AttrTemplate::new(
                "Memory",
                &["RAM", "Installed Memory", "System Memory"],
                N,
                numeric(&[1.0, 2.0, 4.0, 8.0, 16.0, 32.0], "GB", &["gigabytes"]),
            ),
            AttrTemplate::new(
                "Processor Speed",
                &["CPU Speed", "Clock Speed", "Processor Frequency"],
                N,
                numeric(&[1.6, 2.0, 2.4, 2.66, 2.8, 3.0, 3.2], "GHz", &["gigahertz"]),
            ),
            AttrTemplate::new(
                "Screen Size",
                &["Display Size", "Monitor Size", "Diagonal Size"],
                N,
                numeric(&[11.6, 13.3, 14.0, 15.6, 17.3, 19.0, 22.0, 24.0], "inch", &["in", "\""]),
            ),
            AttrTemplate::new(
                "Operating System",
                &["OS", "Platform", "OS Provided"],
                T,
                choices(&[
                    "Microsoft Windows Vista",
                    "Microsoft Windows XP",
                    "Microsoft Windows 7",
                    "Linux",
                    "Mac OS X",
                    "FreeDOS",
                ]),
            ),
            AttrTemplate::new(
                "Color",
                &["Colour", "Finish", "Case Color"],
                T,
                choices(&["Black", "Silver", "White", "Blue", "Red", "Gray"]),
            ),
            AttrTemplate::new(
                "Data Transfer Rate",
                &["Transfer Rate", "Max Transfer Rate", "Bandwidth"],
                N,
                numeric(&[100.0, 133.0, 150.0, 300.0, 600.0], "MBps", &["MB/s", "mb/s"]),
            ),
            AttrTemplate::new(
                "Warranty Period",
                &["Warranty", "Manufacturer Warranty"],
                N,
                numeric(&[1.0, 2.0, 3.0, 5.0], "years", &["yr", "year"]),
            ),
        ],
        TopLevel::Cameras => vec![
            AttrTemplate::new(
                "Resolution",
                &["Megapixels", "Effective Pixels", "Image Resolution", "Sensor Resolution"],
                N,
                numeric(
                    &[6.0, 8.0, 10.0, 12.0, 14.1, 16.2, 18.0, 21.1],
                    "MP",
                    &["megapixel", "megapixels"],
                ),
            ),
            AttrTemplate::new(
                "Optical Zoom",
                &["Zoom", "Zoom Ratio", "Optical Zoom Ratio"],
                N,
                numeric(&[3.0, 4.0, 5.0, 8.0, 10.0, 12.0, 20.0, 30.0], "x", &["X"]),
            ),
            AttrTemplate::new(
                "Screen Size",
                &["LCD Size", "Display Size", "LCD Screen"],
                N,
                numeric(&[2.5, 2.7, 3.0, 3.5], "inch", &["in", "\""]),
            ),
            AttrTemplate::new(
                "Focal Length",
                &["Lens Focal Length", "Focal Range"],
                T,
                choices(&["18-55 mm", "70-300 mm", "24-70 mm", "50 mm", "18-200 mm", "10-22 mm"]),
            ),
            AttrTemplate::new(
                "Aperture",
                &["Maximum Aperture", "Max Aperture", "Lens Aperture"],
                T,
                choices(&["f/1.8", "f/2.8", "f/3.5-5.6", "f/4", "f/4.5-5.6", "f/1.4"]),
            ),
            AttrTemplate::new(
                "Sensor Type",
                &["Image Sensor", "Sensor"],
                T,
                choices(&["CCD", "CMOS", "Live MOS", "Foveon X3"]),
            ),
            AttrTemplate::new(
                "ISO Range",
                &["ISO", "Sensitivity", "ISO Sensitivity"],
                T,
                choices(&["100-1600", "100-3200", "200-6400", "100-12800"]),
            ),
            AttrTemplate::new(
                "Color",
                &["Colour", "Body Color"],
                T,
                choices(&["Black", "Silver", "Red", "Blue", "Pink"]),
            ),
            AttrTemplate::new(
                "Image Stabilization",
                &["Stabilization", "IS Type", "Anti Shake"],
                T,
                choices(&["Optical", "Digital", "Sensor-shift", "None"]),
            ),
            AttrTemplate::new(
                "Battery Type",
                &["Battery", "Power Source"],
                T,
                choices(&["Lithium Ion", "AA", "Proprietary Pack", "NiMH"]),
            ),
        ],
        TopLevel::Furnishings => vec![
            AttrTemplate::new(
                "Material",
                &["Fabric", "Fabric Type", "Fabric Content"],
                T,
                choices(&[
                    "Cotton",
                    "Polyester",
                    "Microfiber",
                    "Silk",
                    "Wool",
                    "Linen",
                    "Cotton Blend",
                ]),
            ),
            AttrTemplate::new(
                "Color",
                &["Colour", "Shade", "Color Family"],
                T,
                choices(&[
                    "White", "Ivory", "Blue", "Red", "Sage", "Brown", "Black", "Gold", "Burgundy",
                ]),
            ),
            AttrTemplate::new(
                "Size",
                &["Bed Size", "Dimensions", "Item Size"],
                T,
                choices(&["Twin", "Full", "Queen", "King", "California King"]),
            ),
            AttrTemplate::new(
                "Style",
                &["Design", "Theme"],
                T,
                choices(&["Traditional", "Contemporary", "Floral", "Striped", "Paisley", "Solid"]),
            ),
            AttrTemplate::new(
                "Care",
                &["Care Instructions", "Cleaning"],
                T,
                choices(&["Machine Washable", "Dry Clean Only", "Spot Clean"]),
            ),
        ],
        TopLevel::Kitchen => vec![
            AttrTemplate::new(
                "Capacity",
                &["Volume", "Bowl Capacity", "Bowl Size"],
                N,
                numeric(&[1.5, 2.0, 4.0, 4.5, 5.0, 6.0, 8.0], "quarts", &["qt", "quart"]),
            ),
            AttrTemplate::new(
                "Wattage",
                &["Power", "Watts", "Motor Power"],
                N,
                numeric(&[300.0, 600.0, 700.0, 900.0, 1000.0, 1200.0, 1500.0], "watts", &["W"]),
            ),
            AttrTemplate::new(
                "Finish",
                &["Color", "Colour", "Exterior Finish"],
                T,
                choices(&[
                    "Stainless Steel",
                    "Black",
                    "White",
                    "Empire Red",
                    "Silver",
                    "Onyx Black",
                ]),
            ),
            AttrTemplate::new(
                "Material",
                &["Construction", "Body Material"],
                T,
                choices(&["Stainless Steel", "Plastic", "Die-cast Metal", "Glass", "Aluminum"]),
            ),
            AttrTemplate::new(
                "Number of Speeds",
                &["Speed Settings", "Speeds"],
                N,
                numeric(&[1.0, 2.0, 3.0, 5.0, 10.0, 12.0, 16.0], "", &[]),
            ),
        ],
    }
}

/// Confusable attribute groups: attributes whose values are drawn from the
/// *same* menu (identical marginal distributions) but independently per
/// product — physical dimensions, paired speeds. Telling `Width` apart from
/// `Depth` requires instance-level alignment (the paper's Section 3.1
/// argument for conditioning on historical matches); marginal statistics
/// cannot do it.
pub fn confusable_group(top: TopLevel) -> Vec<AttrTemplate> {
    let dims: Vec<f64> = (2..=24).map(|i| i as f64 * 2.5).collect();
    let mk = |name: &str, syns: &[&str], unit: &str| {
        AttrTemplate::new(
            name,
            syns,
            AttributeKind::Numeric,
            numeric_vec(dims.clone(), unit, &["in", "\""]),
        )
    };
    let speeds: Vec<f64> = (1..=20).map(|i| i as f64 * 15.0).collect();
    let paired = |name: &str, syns: &[&str]| {
        AttrTemplate::new(
            name,
            syns,
            AttributeKind::Numeric,
            numeric_vec(speeds.clone(), "MBps", &["MB/s", "mb/s"]),
        )
    };
    match top {
        TopLevel::Computing | TopLevel::Cameras => vec![
            mk("Width", &["Item Width", "W"], "cm"),
            mk("Depth", &["Item Depth", "D"], "cm"),
            mk("Height", &["Item Height", "H"], "cm"),
            paired("Read Speed", &["Max Read Speed", "Read Rate"]),
            paired("Write Speed", &["Max Write Speed", "Write Rate"]),
        ],
        TopLevel::Furnishings => vec![
            mk("Width", &["Item Width", "W"], "inches"),
            mk("Length", &["Item Length", "L"], "inches"),
        ],
        TopLevel::Kitchen => vec![
            mk("Width", &["Item Width", "W"], "inches"),
            mk("Height", &["Item Height", "H"], "inches"),
        ],
    }
}

fn numeric_vec(values: Vec<f64>, unit: &str, alts: &[&str]) -> ValueGen {
    ValueGen::Numeric {
        values,
        unit: unit.to_string(),
        alt_units: alts.iter().map(|s| s.to_string()).collect(),
    }
}

/// Procedurally generate an extra attribute (used when a schema needs more
/// width than the static pool provides). Deterministic in `(rng)`.
pub fn procedural_attribute<R: rand::Rng + ?Sized>(rng: &mut R, index: usize) -> AttrTemplate {
    const SUBJECTS: &[&str] = &[
        "Performance",
        "Durability",
        "Efficiency",
        "Noise",
        "Output",
        "Compatibility",
        "Response",
        "Reliability",
        "Comfort",
        "Safety",
    ];
    const FORMS: &[(&str, &str)] = &[
        ("{} Rating", "{} Score"),
        ("{} Level", "Level of {}"),
        ("Maximum {}", "Max {}"),
        ("{} Class", "{} Category"),
        ("{} Index", "{} Idx"),
    ];
    let subject = SUBJECTS[rng.random_range(0..SUBJECTS.len())];
    let (form, syn_form) = FORMS[index % FORMS.len()];
    let name = form.replace("{}", subject);
    let synonym = syn_form.replace("{}", subject);
    let gen = if rng.random_bool(0.5) {
        ValueGen::Numeric {
            values: (1..=10).map(|v| v as f64).collect(),
            unit: String::new(),
            alt_units: vec![],
        }
    } else {
        ValueGen::Enum {
            choices: ["Low", "Medium", "High", "Ultra"].iter().map(|s| s.to_string()).collect(),
        }
    };
    let kind = match gen {
        ValueGen::Numeric { .. } => AttributeKind::Numeric,
        _ => AttributeKind::Text,
    };
    AttrTemplate { name, synonyms: vec![synonym], kind, gen }
}

/// Merchant-only junk attributes (no catalog counterpart) and their value
/// menus. These produce negative candidates that reconciliation must reject.
pub fn junk_attribute_pool() -> &'static [(&'static str, &'static [&'static str])] {
    &[
        ("Shipping Weight", &["1 lb", "2 lbs", "3.5 lbs", "5 lbs", "12 lbs"]),
        ("Condition", &["New", "Refurbished", "Open Box", "Used - Like New"]),
        ("Availability", &["In Stock", "Out of Stock", "2-3 business days", "Ships in 24 hours"]),
        ("Customer Rating", &["5 stars", "4.5 stars", "4 stars", "3.5 stars"]),
        ("Return Policy", &["30-day returns", "14-day returns", "No returns", "60-day returns"]),
        ("Ships From", &["NJ warehouse", "CA warehouse", "TX warehouse", "Overseas"]),
        ("SKU", &["SKU-10021", "SKU-39914", "SKU-48811", "SKU-77613", "SKU-90217"]),
        ("Gift Wrap", &["Available", "Not available"]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn all_top_levels_have_data() {
        for top in TopLevel::ALL {
            assert!(!category_names(top).is_empty());
            assert!(!brand_pool(top).is_empty());
            assert!(!attribute_pool(top).is_empty());
            assert_eq!(universal_attributes(top).len(), 3);
        }
    }

    #[test]
    fn rich_schemas_are_wider() {
        assert!(TopLevel::Computing.is_rich());
        assert!(!TopLevel::Furnishings.is_rich());
        let (lo_r, hi_r) = TopLevel::Cameras.schema_width();
        let (lo_s, hi_s) = TopLevel::Kitchen.schema_width();
        assert!(lo_r > lo_s && hi_r > hi_s);
    }

    #[test]
    fn every_template_has_synonyms() {
        for top in TopLevel::ALL {
            for t in attribute_pool(top).iter().chain(universal_attributes(top).iter()) {
                assert!(!t.synonyms.is_empty(), "{} lacks synonyms", t.name);
                assert!(
                    t.synonyms.iter().all(|s| s != &t.name),
                    "{} lists itself as a synonym",
                    t.name
                );
            }
        }
    }

    #[test]
    fn procedural_attributes_vary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let a = procedural_attribute(&mut rng, 0);
        let b = procedural_attribute(&mut rng, 1);
        assert!(!a.name.is_empty() && !b.name.is_empty());
        assert_eq!(a.synonyms.len(), 1);
    }

    #[test]
    fn junk_pool_is_nonempty() {
        assert!(junk_attribute_pool().len() >= 5);
        for (name, values) in junk_attribute_pool() {
            assert!(!name.is_empty());
            assert!(!values.is_empty());
        }
    }
}
