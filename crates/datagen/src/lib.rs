//! Synthetic shopping-world generator.
//!
//! The paper evaluates on proprietary Bing Shopping data: 856,781 offers
//! from 1,143 merchants over 498 categories, with human labelers checking
//! synthesized products against manufacturer sites. None of that is
//! available, so this crate builds the closest synthetic equivalent — a
//! *world* with:
//!
//! * a taxonomy of four top-level categories (Cameras, Computing, Home
//!   Furnishings, Kitchen & Housewares) and configurable numbers of leaf
//!   categories, with rich schemas for Cameras/Computing and sparse ones
//!   for Furnishings/Kitchen, mirroring Table 3 of the paper;
//! * ground-truth products with realistic per-attribute value distributions;
//! * merchants with *private vocabularies* — per-(merchant, category)
//!   attribute renamings, value reformattings, attribute subsetting, and
//!   junk attributes with no catalog counterpart;
//! * offers derived from products through those vocabularies, each with a
//!   rendered HTML landing page (two-column spec tables, boilerplate,
//!   noise rows; a fraction formatted as bullet lists that the table
//!   extractor legitimately misses);
//! * historical offer-to-product matches with a configurable error rate;
//! * a [`truth::GroundTruth`] oracle that retains which product each offer
//!   came from and which catalog attribute each merchant attribute means —
//!   standing in for the paper's human labeling.
//!
//! The learning signal the paper exploits is distributional — matched
//! offers and products share attribute-value distributions modulo merchant
//! renaming/formatting — and that structure is exactly what this generator
//! reproduces, including the confounders the paper discusses (merchant
//! assortments biased to a brand subset, shared vocabulary across merchants
//! of a category, one merchant vocabulary reused across categories).

pub mod config;
pub mod merchant_vocab;
pub mod page;
pub mod queries;
pub mod stream;
pub mod templates;
pub mod truth;
pub mod value;
pub mod world;

pub use config::{ConfigError, WorldConfig};
pub use page::render_landing_page;
pub use queries::{truth_queries, TruthQuery};
pub use stream::{
    FlashSale, MerchantChurn, OfferStream, RetractionWave, Scenario, StreamBatch, StreamedOffer,
};
pub use truth::GroundTruth;
pub use world::{World, WorldBase};
