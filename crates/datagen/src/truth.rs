//! The ground-truth oracle.
//!
//! The paper's evaluation labels synthesized specifications by hand against
//! manufacturer web sites, and attribute correspondences by hand against
//! domain knowledge. Our generator *knows* the answers, so the oracle
//! substitutes for the labelers: it records which product every offer came
//! from and which catalog attribute every merchant attribute means.

use std::collections::{HashMap, HashSet};

use pse_core::{CategoryId, MerchantId, OfferId, ProductId};
use serde::{Deserialize, Serialize};

/// Ground truth retained by the generator.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    /// `offer_product[offer.index()]` is the product the offer was derived
    /// from (the *true* association, independent of the possibly-noisy
    /// historical matches fed to the pipeline).
    pub offer_product: Vec<ProductId>,
    /// `(merchant, category, normalized merchant attribute)` → canonical
    /// catalog attribute; `None` for junk attributes with no counterpart.
    pub attr_map: HashMap<(MerchantId, CategoryId, String), Option<String>>,
    /// Offers whose landing page renders specs as a bulleted list (missed
    /// by the table extractor — relevant to recall analysis).
    pub bullet_offers: HashSet<OfferId>,
}

impl GroundTruth {
    /// The true product behind an offer.
    pub fn product_of(&self, offer: OfferId) -> ProductId {
        self.offer_product[offer.index()]
    }

    /// The catalog meaning of a merchant attribute, if any.
    ///
    /// Returns `None` when the attribute is unknown for this merchant and
    /// category, or `Some(None)` when it is known to be junk.
    pub fn catalog_attribute(
        &self,
        merchant: MerchantId,
        category: CategoryId,
        merchant_attr_normalized: &str,
    ) -> Option<Option<&str>> {
        self.attr_map
            .get(&(merchant, category, merchant_attr_normalized.to_string()))
            .map(|o| o.as_deref())
    }

    /// Whether a proposed correspondence `⟨Ap, Ao, M, C⟩` is correct.
    pub fn correspondence_correct(
        &self,
        catalog_attr: &str,
        merchant_attr_normalized: &str,
        merchant: MerchantId,
        category: CategoryId,
    ) -> bool {
        matches!(
            self.catalog_attribute(merchant, category, merchant_attr_normalized),
            Some(Some(truth)) if pse_text::normalize::names_equal(truth, catalog_attr)
        )
    }

    /// Whether the offer's landing page uses the bullet-list format.
    pub fn is_bullet_page(&self, offer: OfferId) -> bool {
        self.bullet_offers.contains(&offer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        let mut t =
            GroundTruth { offer_product: vec![ProductId(7), ProductId(8)], ..Default::default() };
        t.attr_map
            .insert((MerchantId(0), CategoryId(1), "rpm".to_string()), Some("Speed".to_string()));
        t.attr_map.insert((MerchantId(0), CategoryId(1), "shipping weight".to_string()), None);
        t.bullet_offers.insert(OfferId(1));
        t
    }

    #[test]
    fn product_lookup() {
        let t = truth();
        assert_eq!(t.product_of(OfferId(0)), ProductId(7));
        assert_eq!(t.product_of(OfferId(1)), ProductId(8));
    }

    #[test]
    fn correspondence_oracle() {
        let t = truth();
        assert!(t.correspondence_correct("Speed", "rpm", MerchantId(0), CategoryId(1)));
        assert!(t.correspondence_correct("speed", "rpm", MerchantId(0), CategoryId(1)));
        assert!(!t.correspondence_correct("Capacity", "rpm", MerchantId(0), CategoryId(1)));
        assert!(!t.correspondence_correct("Speed", "rpm", MerchantId(1), CategoryId(1)));
        assert!(!t.correspondence_correct(
            "Speed",
            "shipping weight",
            MerchantId(0),
            CategoryId(1)
        ));
    }

    #[test]
    fn junk_vs_unknown() {
        let t = truth();
        assert_eq!(
            t.catalog_attribute(MerchantId(0), CategoryId(1), "shipping weight"),
            Some(None)
        );
        assert_eq!(t.catalog_attribute(MerchantId(0), CategoryId(1), "zzz"), None);
    }

    #[test]
    fn bullet_pages() {
        let t = truth();
        assert!(t.is_bullet_page(OfferId(1)));
        assert!(!t.is_bullet_page(OfferId(0)));
    }
}
