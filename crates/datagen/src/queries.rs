//! Ground-truth search queries (ISSUE 10): free-text query strings with
//! the oracle's answer attached, for scoring the structured query
//! engine's precision and recall.
//!
//! Each [`TruthQuery`] is built from one catalog product: up to three of
//! its non-identifier attribute values become the query text, and the
//! answer is every catalog product — in *any* category — whose spec
//! satisfies all of those `(attribute, value)` constraints under the
//! pipeline's own value-equivalence. Sibling categories share attribute
//! templates, so a free-text query like `"Dell"` is genuinely
//! cross-category: an engine answering it with a Dell product from a
//! sibling of the seed's category is right, and the oracle must say so.
//! Selection and phrasing are pure functions of the catalog — no RNG —
//! so the same world always yields the same queries:
//!
//! * every third query prefixes a value with its attribute name,
//!   exercising the engine's attribute-phrase hints;
//! * every fifth query renders its first value the way a merchant
//!   carrying the product writes it ([`MerchantVocab::format_value`]),
//!   exercising vocabulary/fuzzy resolution instead of exact lookup.

use pse_core::{AttributeKind, CategoryId, Product, ProductId};
use pse_text::normalize::values_equivalent;
use pse_text::tokens;
use serde::{Deserialize, Serialize};

use crate::merchant_vocab::MerchantVocab;
use crate::world::World;

/// Longest value phrase the query engine resolves exactly; queries keep
/// their constraint values at or under it so "unanswerable by
/// construction" queries cannot drag precision down.
const MAX_QUERY_VALUE_TOKENS: usize = 3;

/// One free-text query with its ground-truth answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruthQuery {
    /// The query text a user would type.
    pub text: String,
    /// The category of the seed product the constraints came from.
    pub category: CategoryId,
    /// The canonical `(catalog attribute, value)` constraints the text
    /// encodes (values canonical even when the text is merchant-phrased).
    pub constraints: Vec<(String, String)>,
    /// Every catalog product — any category — satisfying all
    /// constraints (always contains the seed product).
    pub products: Vec<ProductId>,
}

/// Build up to `count` ground-truth queries by striding deterministically
/// over the catalog.
pub fn truth_queries(world: &World, count: usize) -> Vec<TruthQuery> {
    if count == 0 {
        return Vec::new();
    }
    let products: Vec<&Product> = world.catalog.products().collect();
    let stride = (products.len() / count).max(1);
    let mut queries = Vec::new();
    for (i, product) in products.iter().step_by(stride).enumerate() {
        if queries.len() == count {
            break;
        }
        if let Some(q) = query_for(world, product, i) {
            queries.push(q);
        }
    }
    queries
}

/// The i-th query's shape, from one seed product; `None` when the
/// product has no queryable attribute.
fn query_for(world: &World, product: &Product, i: usize) -> Option<TruthQuery> {
    let info = world.category_info(product.category)?;
    let kind_of = |attr: &str| info.templates.iter().find(|t| t.name == attr).map(|t| t.kind);
    // Queryable: non-identifier, non-empty, and short enough to resolve
    // as one exact value phrase. Text attributes (brand, color, material
    // …) lead and numeric measurements only refine: a user opens with
    // the distinctive words and narrows with dimensions, and a bare
    // "10 inches" answers to every category with a width.
    let queryable_of = |want_text: bool| -> Vec<(&str, &str)> {
        product
            .spec
            .iter()
            .filter(|av| {
                !av.value.is_empty()
                    && (1..=MAX_QUERY_VALUE_TOKENS).contains(&tokens(&av.value).len())
                    && kind_of(&av.name).is_some_and(|k| {
                        k != AttributeKind::Identifier && (k == AttributeKind::Text) == want_text
                    })
            })
            .map(|av| (av.name.as_str(), av.value.as_str()))
            .collect()
    };
    let text = queryable_of(true);
    let numeric = queryable_of(false);
    if text.is_empty() && numeric.is_empty() {
        return None;
    }
    let wanted = 1 + i % 3;
    let mut chosen: Vec<(&str, &str)> = Vec::new();
    if !text.is_empty() {
        let start = i % text.len();
        chosen.extend((0..text.len().min(wanted)).map(|j| text[(start + j) % text.len()]));
    }
    if chosen.len() < wanted && !numeric.is_empty() {
        let start = i % numeric.len();
        let more = wanted - chosen.len();
        chosen.extend((0..numeric.len().min(more)).map(|j| numeric[(start + j) % numeric.len()]));
    }

    let mut parts = Vec::new();
    for (j, &(attr, value)) in chosen.iter().enumerate() {
        let surface = if j == 0 && i % 5 == 4 {
            merchant_phrasing(world, product, attr).unwrap_or_else(|| value.to_string())
        } else {
            value.to_string()
        };
        // Numeric values are always attribute-prefixed — a bare "30 cm"
        // is ambiguous across every dimension attribute, and real users
        // disambiguate measurements ("depth 30 cm"). Text values are
        // distinctive enough to stand alone, with a rotating third
        // prefixed anyway to exercise the hint path.
        if kind_of(attr) == Some(AttributeKind::Numeric) || (i + j) % 3 == 1 {
            parts.push(format!("{attr} {surface}"));
        } else {
            parts.push(surface);
        }
    }
    let constraints: Vec<(String, String)> =
        chosen.iter().map(|&(a, v)| (a.to_string(), v.to_string())).collect();
    let answer: Vec<ProductId> = world
        .catalog
        .products()
        .filter(|p| {
            constraints
                .iter()
                .all(|(attr, value)| p.spec.get(attr).is_some_and(|v| values_equivalent(v, value)))
        })
        .map(|p| p.id)
        .collect();
    debug_assert!(answer.contains(&product.id), "the seed product answers its own query");
    Some(TruthQuery {
        text: parts.join(" "),
        category: product.category,
        constraints,
        products: answer,
    })
}

/// How the first merchant that exposes `attr` in this category would
/// write the product's value — the deterministic stand-in for "a user
/// typing what a storefront showed them".
fn merchant_phrasing(world: &World, product: &Product, attr: &str) -> Option<String> {
    let value = product.spec.get(attr)?;
    let info = world.category_info(product.category)?;
    let gen = &info.templates.iter().find(|t| t.name == attr)?.gen;
    let vocab: &MerchantVocab = world
        .merchants
        .iter()
        .find_map(|m| world.vocab(m.id, product.category).filter(|v| v.exposes(attr)))?;
    Some(vocab.format_value(attr, value, gen))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn queries_are_deterministic_and_answerable() {
        let w = world();
        let a = truth_queries(&w, 24);
        let b = truth_queries(&w, 24);
        assert_eq!(a, b, "same world, same queries");
        assert!(!a.is_empty(), "a tiny world still yields queries");
        for q in &a {
            assert!(!q.text.is_empty());
            assert!(!q.constraints.is_empty() && q.constraints.len() <= 3);
            assert!(!q.products.is_empty(), "every query has at least its seed answer");
            for (attr, value) in &q.constraints {
                assert!(!attr.is_empty() && !value.is_empty());
                assert!(tokens(value).len() <= MAX_QUERY_VALUE_TOKENS);
            }
        }
    }

    #[test]
    fn answers_are_exactly_the_satisfying_products() {
        let w = world();
        for q in truth_queries(&w, 12) {
            let expected: Vec<ProductId> = w
                .catalog
                .products()
                .filter(|p| {
                    q.constraints.iter().all(|(attr, value)| {
                        p.spec.get(attr).is_some_and(|v| values_equivalent(v, value))
                    })
                })
                .map(|p| p.id)
                .collect();
            assert_eq!(q.products, expected, "answer for {:?}", q.text);
        }
    }

    #[test]
    fn phrasing_mix_covers_attribute_hints_and_merchant_surfaces() {
        let w = world();
        let queries = truth_queries(&w, 30);
        // Constraint values are always canonical; at least one query's
        // text must diverge from pure canonical values (merchant
        // phrasing or attribute-name prefixes).
        let decorated = queries
            .iter()
            .filter(|q| {
                let plain: String =
                    q.constraints.iter().map(|(_, v)| v.as_str()).collect::<Vec<_>>().join(" ");
                q.text != plain
            })
            .count();
        assert!(decorated > 0, "the mix must decorate some queries");
    }
}
