//! World generation: taxonomy → catalog → merchants → offers, plus the
//! deterministic per-offer landing pages and the ground-truth oracle.

use std::collections::HashMap;

use pse_core::{
    AttributeDef, Catalog, CategoryId, CategorySchema, HistoricalMatches, Merchant, MerchantId,
    Offer, OfferId, ProductId, Spec, Taxonomy,
};
use pse_text::normalize::normalize_attribute_name;
use rand::{rngs::StdRng, Rng, RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::config::WorldConfig;
use crate::merchant_vocab::MerchantVocab;
use crate::page::{render_landing_page, PageStyle};
use crate::stream::OfferStream;
use crate::templates::{
    attribute_pool, category_names, procedural_attribute, universal_attributes, AttrTemplate,
    TopLevel,
};
use crate::truth::GroundTruth;
use crate::value::ValueGen;

/// Per-leaf-category generation data kept alongside the catalog.
#[derive(Debug, Clone)]
pub struct CategoryInfo {
    /// The category id in the taxonomy.
    pub id: CategoryId,
    /// Its top-level group.
    pub top: TopLevel,
    /// Attribute templates, aligned with the category schema order.
    pub templates: Vec<AttrTemplate>,
    /// Per-attribute category value weights (empty for identifiers).
    pub weights: Vec<Vec<f64>>,
}

/// Summary statistics of a generated world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldStats {
    /// Leaf categories.
    pub categories: usize,
    /// Catalog products.
    pub products: usize,
    /// Merchants.
    pub merchants: usize,
    /// Offers.
    pub offers: usize,
    /// Offers with a historical match.
    pub historical_matches: usize,
    /// Mean offers per distinct (merchant, category) pair.
    pub mean_offers_per_merchant_category: f64,
}

/// A fully generated synthetic shopping world.
#[derive(Debug, Clone)]
pub struct World {
    /// The generation configuration.
    pub config: WorldConfig,
    /// The catalog (taxonomy + products).
    pub catalog: Catalog,
    /// All merchants.
    pub merchants: Vec<Merchant>,
    /// All offers (feed view: sparse specs; full specs live on the pages).
    pub offers: Vec<Offer>,
    /// Historical offer-to-product matches fed to the pipeline (may contain
    /// errors per `config.match_error_rate`).
    pub historical: HistoricalMatches,
    /// The ground-truth oracle (true associations and attribute meanings).
    pub truth: GroundTruth,
    categories: Vec<CategoryInfo>,
    category_index: HashMap<CategoryId, usize>,
    vocabs: HashMap<(MerchantId, CategoryId), MerchantVocab>,
    sloppiness: Vec<f64>,
}

/// Everything [`World::generate`] builds *before* the first offer: the
/// taxonomy, catalog, merchants, vocabularies, assortments, and the
/// sampling tables the offer loop draws from — plus the RNG state
/// captured at the exact point the offer loop would begin.
///
/// Memory is `O(categories × products + merchants)` and independent of
/// `num_offers`, which is what makes million-offer [`OfferStream`]s
/// cheap: the base is built once and each stream walks the per-offer
/// RNG forward in constant space. Streaming `config.num_offers` offers
/// from the base and materializing [`World::generate`] produce
/// byte-identical offers by construction — `generate` *is* a drained
/// stream.
#[derive(Debug, Clone)]
pub struct WorldBase {
    pub(crate) config: WorldConfig,
    pub(crate) catalog: Catalog,
    pub(crate) merchants: Vec<Merchant>,
    pub(crate) categories: Vec<CategoryInfo>,
    pub(crate) category_index: HashMap<CategoryId, usize>,
    pub(crate) vocabs: HashMap<(MerchantId, CategoryId), MerchantVocab>,
    pub(crate) sloppiness: Vec<f64>,
    pub(crate) assortments: HashMap<(MerchantId, CategoryId), Vec<ProductId>>,
    pub(crate) cat_weights: Vec<f64>,
    pub(crate) merchants_of_cat: Vec<Vec<usize>>,
    pub(crate) product_weights: Vec<f64>,
    pub(crate) cat_products: Vec<Vec<ProductId>>,
    rng: StdRng,
}

impl WorldBase {
    /// Build the world scaffold from `config`.
    ///
    /// # Panics
    /// Panics when `config.validate()` fails.
    pub fn generate(config: WorldConfig) -> Self {
        let _obs = pse_obs::span("datagen.world_base");
        config.validate().expect("invalid world configuration");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // 1. Taxonomy + category templates.
        let mut taxonomy = Taxonomy::new();
        let mut categories = Vec::new();
        for (ti, top) in TopLevel::ALL.into_iter().enumerate() {
            let top_id = taxonomy.add_top_level(top.name());
            let pool = attribute_pool(top);
            let names = category_names(top);
            for li in 0..config.leaf_categories_per_top[ti] {
                let name = if li < names.len() {
                    names[li].to_string()
                } else {
                    format!("{} {}", names[li % names.len()], li / names.len() + 1)
                };
                let (info, schema) = generate_category(&mut rng, top, &pool);
                let id = taxonomy.add_leaf(top_id, name, schema);
                categories.push(CategoryInfo { id, ..info });
            }
        }
        let category_index: HashMap<CategoryId, usize> =
            categories.iter().enumerate().map(|(i, c)| (c.id, i)).collect();

        // 2. Products. A fraction of each category is "cold": catalog-only
        // products no merchant offers, drawn from *shifted* value
        // distributions (discontinued models, exotic configurations). They
        // recreate the paper's Section 3.1 confounder — "there are some
        // products in the catalog with a speed of 10,000 rpm, and none in
        // the merchant offers" — which is what makes unconditioned value
        // distributions misleading.
        let active_count = ((config.products_per_category as f64) * 0.6).ceil().max(1.0) as usize;
        let mut catalog = Catalog::new(taxonomy);
        for info in &categories {
            let leaf_name = catalog.taxonomy().category(info.id).name.clone();
            let cold_weights: Vec<Vec<f64>> =
                info.templates.iter().map(|t| t.gen.category_weights(&mut rng)).collect();
            let mut cold_info = info.clone();
            cold_info.weights = cold_weights;
            for i in 0..config.products_per_category {
                let src = if i < active_count { info } else { &cold_info };
                let (title, spec) = generate_product(&mut rng, src, &leaf_name);
                catalog.add_product(info.id, title, spec);
            }
        }

        // 3. Merchants, their category coverage, brand bias, vocabularies.
        let mut merchants = Vec::new();
        let mut merchant_cats: Vec<Vec<usize>> = Vec::new();
        let mut vocabs = HashMap::new();
        let mut sloppiness = Vec::with_capacity(config.num_merchants);
        for mi in 0..config.num_merchants {
            let id = MerchantId::from_index(mi);
            merchants.push(Merchant { id, name: merchant_name(mi) });
            // Heterogeneous feed quality: tidy (0.2) to sloppy (1.8).
            sloppiness.push(0.2 + rng.random::<f64>() * 1.6);
            let mut covered = Vec::new();
            for (ci, _) in categories.iter().enumerate() {
                let guaranteed = ci == mi % categories.len();
                if guaranteed || rng.random_bool(config.merchant_category_coverage) {
                    covered.push(ci);
                }
            }
            for &ci in &covered {
                let info = &categories[ci];
                let vocab = MerchantVocab::generate_with_sloppiness(
                    &mut rng,
                    &info.templates,
                    config.name_identity_probability,
                    config.attribute_coverage,
                    config.junk_attributes_per_merchant,
                    sloppiness[mi],
                );
                vocabs.insert((id, info.id), vocab);
            }
            merchant_cats.push(covered);
        }

        // Per-merchant brand bias: the subset of brands the merchant stocks.
        let allowed_brands: Vec<Vec<String>> = (0..config.num_merchants)
            .map(|_| {
                let mut allowed = Vec::new();
                for top in TopLevel::ALL {
                    for b in crate::templates::brand_pool(top) {
                        if rng.random_bool(config.merchant_brand_coverage) {
                            allowed.push(b);
                        }
                    }
                }
                allowed
            })
            .collect();

        // Per-(merchant, category) assortments: brand bias plus a value-
        // segment bias on one salient attribute (e.g. a merchant that only
        // stocks high-capacity drives). Two merchants of one category thus
        // sell recognizably different slices of the catalog — the reason
        // the paper conditions value distributions on historical matches
        // (Figure 7's confounder).
        let mut assortments: HashMap<(MerchantId, CategoryId), Vec<ProductId>> = HashMap::new();
        let mut vocab_keys: Vec<(MerchantId, CategoryId)> = vocabs.keys().copied().collect();
        vocab_keys.sort();
        for (merchant, cat_id) in &vocab_keys {
            let info = &categories[category_index[cat_id]];
            let products: Vec<&pse_core::Product> = catalog.products_in(*cat_id).collect();
            let brands = &allowed_brands[merchant.index()];
            // Segment: an allowed-value subset on the first non-universal
            // attribute with a finite menu.
            let segment: Option<(String, Vec<String>)> = info
                .templates
                .iter()
                .skip(3)
                .find(|t| matches!(t.gen, ValueGen::Numeric { .. } | ValueGen::Enum { .. }))
                .map(|t| {
                    let menu = canonical_menu(&t.gen);
                    let keep = ((menu.len() as f64) * 0.45).ceil() as usize;
                    let mut idx: Vec<usize> = (0..menu.len()).collect();
                    // Partial Fisher–Yates for a random `keep`-subset.
                    for i in 0..keep.min(menu.len()) {
                        let j = rng.random_range(i..menu.len());
                        idx.swap(i, j);
                    }
                    let allowed: Vec<String> =
                        idx[..keep.min(menu.len())].iter().map(|&i| menu[i].clone()).collect();
                    (t.name.clone(), allowed)
                });
            let brand_ok = |p: &pse_core::Product| {
                p.spec.get("Brand").map(|b| brands.iter().any(|a| a == b)).unwrap_or(true)
            };
            let segment_ok = |p: &pse_core::Product| match &segment {
                Some((attr, allowed)) => {
                    p.spec.get(attr).map(|v| allowed.iter().any(|a| a == v)).unwrap_or(true)
                }
                None => true,
            };
            let warm = &products[..active_count.min(products.len())];
            let mut eligible: Vec<ProductId> =
                warm.iter().filter(|p| brand_ok(p) && segment_ok(p)).map(|p| p.id).collect();
            if eligible.is_empty() {
                eligible = warm.iter().filter(|p| brand_ok(p)).map(|p| p.id).collect();
            }
            if eligible.is_empty() {
                eligible = warm.iter().map(|p| p.id).collect();
            }
            assortments.insert((*merchant, *cat_id), eligible);
        }

        // 4. Offers.
        // Category popularity: skewed random weights.
        let cat_weights: Vec<f64> = (0..categories.len())
            .map(|_| {
                let u: f64 = rng.random();
                u * u + 0.05
            })
            .collect();
        // Merchants covering each category.
        let mut merchants_of_cat: Vec<Vec<usize>> = vec![Vec::new(); categories.len()];
        for (mi, cats) in merchant_cats.iter().enumerate() {
            for &ci in cats {
                merchants_of_cat[ci].push(mi);
            }
        }
        // Product popularity within a category (zipf-ish by index).
        let product_weights: Vec<f64> = (0..config.products_per_category)
            .map(|r| 1.0 / ((r + 1) as f64).powf(config.popularity_skew))
            .collect();

        let cat_products: Vec<Vec<ProductId>> = categories
            .iter()
            .map(|info| catalog.products_in(info.id).map(|p| p.id).collect())
            .collect();

        Self {
            config,
            catalog,
            merchants,
            categories,
            category_index,
            vocabs,
            sloppiness,
            assortments,
            cat_weights,
            merchants_of_cat,
            product_weights,
            cat_products,
            rng,
        }
    }

    /// The generation configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The catalog (taxonomy + products).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All merchants.
    pub fn merchants(&self) -> &[Merchant] {
        &self.merchants
    }

    /// Info for one category id (leaf categories only).
    pub fn category_info(&self, id: CategoryId) -> Option<&CategoryInfo> {
        self.category_index.get(&id).map(|i| &self.categories[*i])
    }

    /// Stream `total` offers with the default (steady) scenario. The
    /// first `min(total, config.num_offers)` offers are byte-identical
    /// to [`World::generate`] on the same config; `total` may exceed
    /// `config.num_offers` — the stream just keeps walking the RNG.
    pub fn stream(&self, total: usize) -> OfferStream<'_> {
        self.stream_scenario(total, crate::stream::Scenario::default())
    }

    /// Stream `total` offers under a load-shape [`Scenario`]
    /// (flash-sale bursts, merchant churn, retraction waves).
    ///
    /// [`Scenario`]: crate::stream::Scenario
    pub fn stream_scenario(
        &self,
        total: usize,
        scenario: crate::stream::Scenario,
    ) -> OfferStream<'_> {
        OfferStream::new(self, total, scenario)
    }

    /// The RNG state at the start of the offer loop (cloned per stream).
    pub(crate) fn offer_loop_rng(&self) -> StdRng {
        self.rng.clone()
    }

    /// The merchant-formatted specification on the landing page of a
    /// streamed offer whose true product is `product`. Matches
    /// [`World::page_spec`] for the same offer — deterministic per
    /// offer id, independent of stream position or batch size.
    pub fn page_spec_for(&self, offer: &Offer, product: ProductId) -> Spec {
        let cat = offer.category.expect("generated offers always carry a category");
        let info = &self.categories[self.category_index[&cat]];
        let vocab = &self.vocabs[&(offer.merchant, cat)];
        derive_page_spec(
            &self.config,
            info,
            vocab,
            self.sloppiness[offer.merchant.index()],
            self.catalog.product(product),
            offer.id,
        )
    }
}

impl World {
    /// Generate a world from `config`: build the [`WorldBase`] scaffold,
    /// then drain an [`OfferStream`] of `config.num_offers` offers into
    /// the materialized vectors. Streaming and materializing are
    /// byte-identical by construction — this *is* the stream.
    ///
    /// # Panics
    /// Panics when `config.validate()` fails.
    pub fn generate(config: WorldConfig) -> Self {
        let _obs = pse_obs::span("datagen.generate");
        let base = WorldBase::generate(config);
        let num_offers = base.config.num_offers;

        let mut offers = Vec::with_capacity(num_offers);
        let mut historical = HistoricalMatches::new();
        let mut truth = GroundTruth::default();
        let mut stream = base.stream(num_offers);
        while let Some(batch) = stream.next_batch(1024) {
            for so in batch.offers {
                truth.offer_product.push(so.product);
                if let Some(matched) = so.historical {
                    historical.insert(so.offer.id, matched);
                }
                if so.bullet {
                    truth.bullet_offers.insert(so.offer.id);
                }
                offers.push(so.offer);
            }
        }
        drop(stream);
        let WorldBase {
            config,
            catalog,
            merchants,
            categories,
            category_index,
            vocabs,
            sloppiness,
            ..
        } = base;

        // Ground-truth attribute map from the vocabularies.
        for ((merchant, cat_id), vocab) in &vocabs {
            let info = &categories[category_index[cat_id]];
            for t in &info.templates {
                if let Some(surface) = vocab.merchant_name(&t.name) {
                    truth.attr_map.insert(
                        (*merchant, *cat_id, normalize_attribute_name(surface)),
                        Some(t.name.clone()),
                    );
                }
            }
            for (junk_name, _) in vocab.junk_attributes() {
                truth
                    .attr_map
                    .insert((*merchant, *cat_id, normalize_attribute_name(junk_name)), None);
            }
        }

        pse_obs::add("datagen.offers", offers.len() as u64);
        pse_obs::add("datagen.products", catalog.len() as u64);
        pse_obs::add("datagen.merchants", merchants.len() as u64);
        pse_obs::add("datagen.historical_matches", historical.len() as u64);
        Self {
            config,
            catalog,
            merchants,
            offers,
            historical,
            truth,
            categories,
            category_index,
            vocabs,
            sloppiness,
        }
    }

    /// The leaf-category generation data.
    pub fn categories(&self) -> &[CategoryInfo] {
        &self.categories
    }

    /// Info for one category id (leaf categories only).
    pub fn category_info(&self, id: CategoryId) -> Option<&CategoryInfo> {
        self.category_index.get(&id).map(|i| &self.categories[*i])
    }

    /// The merchant dialect for `(merchant, category)`, if the merchant
    /// covers the category.
    pub fn vocab(&self, merchant: MerchantId, category: CategoryId) -> Option<&MerchantVocab> {
        self.vocabs.get(&(merchant, category))
    }

    /// The merchant-formatted specification that appears on the offer's
    /// landing page. Deterministic per offer.
    pub fn page_spec(&self, offer: OfferId) -> Spec {
        let o = &self.offers[offer.index()];
        let cat = o.category.expect("generated offers always carry a category");
        let info = &self.categories[self.category_index[&cat]];
        let vocab = &self.vocabs[&(o.merchant, cat)];
        let product = self.catalog.product(self.truth.product_of(offer));
        derive_page_spec(
            &self.config,
            info,
            vocab,
            self.sloppiness[o.merchant.index()],
            product,
            offer,
        )
    }

    /// Derive the page specifications of many offers at once, fanning the
    /// per-offer work (vocabulary application, value formatting) across
    /// worker threads. Output `i` is `page_spec(offers[i])` at any thread
    /// count — each offer derives from its own seeded RNG, so parallelism
    /// cannot change the result.
    pub fn page_specs(&self, offers: &[OfferId]) -> Vec<Spec> {
        let _obs = pse_obs::span("datagen.page_specs");
        pse_par::par_map_chunked(offers, 32, |&o| self.page_spec(o))
    }

    /// Render many landing pages at once (see [`World::landing_page`]);
    /// order-preserving and deterministic at any thread count.
    pub fn landing_pages(&self, offers: &[OfferId]) -> Vec<String> {
        let _obs = pse_obs::span("datagen.render_pages");
        pse_par::par_map_chunked(offers, 16, |&o| self.landing_page(o))
    }

    /// Render the offer's landing page HTML. Deterministic per offer.
    pub fn landing_page(&self, offer: OfferId) -> String {
        let o = &self.offers[offer.index()];
        let spec = self.page_spec(offer);
        let mut rng = self.offer_rng(offer, 0x9A6E);
        let style = PageStyle {
            bullet_specs: self.truth.is_bullet_page(offer),
            noise_table: rng.random_bool(self.config.noise_table_probability),
            banner_row: rng.random_bool(0.5),
        };
        let merchant_name = &self.merchants[o.merchant.index()].name;
        pse_obs::incr("datagen.pages_rendered");
        render_landing_page(&o.title, merchant_name, o.price_cents, &spec, style, &mut rng)
    }

    /// Summary statistics.
    pub fn stats(&self) -> WorldStats {
        let mut mc: HashMap<(MerchantId, Option<CategoryId>), usize> = HashMap::new();
        for o in &self.offers {
            *mc.entry((o.merchant, o.category)).or_insert(0) += 1;
        }
        let mean = if mc.is_empty() { 0.0 } else { self.offers.len() as f64 / mc.len() as f64 };
        WorldStats {
            categories: self.categories.len(),
            products: self.catalog.len(),
            merchants: self.merchants.len(),
            offers: self.offers.len(),
            historical_matches: self.historical.len(),
            mean_offers_per_merchant_category: mean,
        }
    }

    fn offer_rng(&self, offer: OfferId, salt: u64) -> StdRng {
        offer_rng(self.config.seed, offer, salt)
    }
}

/// The page-spec derivation shared by [`World::page_spec`] (materialized
/// worlds) and [`WorldBase::page_spec_for`] (streamed offers): apply the
/// merchant vocabulary to the true product's spec, with per-merchant
/// sloppiness-scaled value corruption and appended junk attributes.
/// Seeded per offer id, so it is identical wherever the offer came from.
fn derive_page_spec(
    config: &WorldConfig,
    info: &CategoryInfo,
    vocab: &MerchantVocab,
    sloppiness: f64,
    product: &pse_core::Product,
    offer: OfferId,
) -> Spec {
    let mut rng = offer_rng(config.seed, offer, 0xA11CE);
    let mut spec = Spec::new();
    for (t, weights) in info.templates.iter().zip(&info.weights) {
        if !vocab.exposes(&t.name) {
            continue;
        }
        let Some(canonical) = product.spec.get(&t.name) else { continue };
        let corruption = (config.value_corruption_rate * sloppiness).clamp(0.0, 0.5);
        let canonical = if rng.random_bool(corruption) {
            vocab.corrupt_value(&t.gen, weights, &mut rng)
        } else {
            canonical.to_string()
        };
        let surface = vocab.merchant_name(&t.name).expect("exposed implies named");
        spec.push(surface, vocab.format_value(&t.name, &canonical, &t.gen));
    }
    for (junk_name, menu) in vocab.junk_attributes() {
        let v = &menu[rng.random_range(0..menu.len())];
        spec.push(junk_name.clone(), v.clone());
    }
    spec
}

fn offer_rng(seed: u64, offer: OfferId, salt: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(offer.0).wrapping_add(salt),
    )
}

fn generate_category<R: Rng + ?Sized>(
    rng: &mut R,
    top: TopLevel,
    pool: &[AttrTemplate],
) -> (CategoryInfo, CategorySchema) {
    let mut templates = universal_attributes(top);
    let (lo, hi) = top.schema_width();
    let width = rng.random_range(lo..=hi);
    // Sample without replacement from the pool; procedural beyond it.
    let mut pool_idx: Vec<usize> = (0..pool.len()).collect();
    for k in 0..width {
        if pool_idx.is_empty() {
            templates.push(procedural_attribute(rng, k));
        } else {
            let j = rng.random_range(0..pool_idx.len());
            templates.push(pool[pool_idx.swap_remove(j)].clone());
        }
    }
    // Most categories also carry a confusable dimension group — attributes
    // with identical value menus that only instance alignment can tell
    // apart (see `templates::confusable_group`).
    if rng.random_bool(0.9) {
        templates.extend(crate::templates::confusable_group(top));
    }
    let weights: Vec<Vec<f64>> = templates.iter().map(|t| t.gen.category_weights(rng)).collect();
    let schema = CategorySchema::from_attributes(templates.iter().map(|t| {
        let is_key = matches!(t.gen, ValueGen::Mpn | ValueGen::Upc);
        AttributeDef { name: t.name.clone(), kind: t.kind, is_key }
    }));
    (CategoryInfo { id: CategoryId(0), top, templates, weights }, schema)
}

fn generate_product<R: Rng + ?Sized>(
    rng: &mut R,
    info: &CategoryInfo,
    leaf_name: &str,
) -> (String, Spec) {
    let mut spec = Spec::new();
    for (t, w) in info.templates.iter().zip(&info.weights) {
        spec.push(t.name.clone(), t.gen.sample(w, rng));
    }
    let brand = spec.get("Brand").unwrap_or("Generic").to_string();
    let model = spec.get("MPN").unwrap_or("X100").to_string();
    // One salient non-identifier attribute value enriches the title.
    let salient = info
        .templates
        .iter()
        .find(|t| !matches!(t.gen, ValueGen::Mpn | ValueGen::Upc | ValueGen::Brand { .. }))
        .and_then(|t| spec.get(&t.name))
        .unwrap_or("");
    let singular = leaf_name.strip_suffix('s').unwrap_or(leaf_name);
    let title = format!("{brand} {model} {singular} {salient}").trim().to_string();
    (title, spec)
}

/// The canonical value strings a generator can produce (finite menus only).
fn canonical_menu(gen: &ValueGen) -> Vec<String> {
    match gen {
        ValueGen::Numeric { values, unit, .. } => values
            .iter()
            .map(|v| {
                let n = crate::value::format_number(*v);
                if unit.is_empty() {
                    n
                } else {
                    format!("{n} {unit}")
                }
            })
            .collect(),
        ValueGen::Enum { choices } => choices.clone(),
        ValueGen::Brand { pool } => pool.clone(),
        ValueGen::Mpn | ValueGen::Upc => Vec::new(),
    }
}

pub(crate) fn offer_price<R: Rng + ?Sized>(
    product: ProductId,
    merchant: usize,
    rng: &mut R,
) -> u64 {
    // Stable base price per product, with a per-offer merchant wiggle.
    let base = 1_000 + (product.0.wrapping_mul(2_654_435_761) % 90_000);
    let factor = 0.9 + (merchant % 10) as f64 / 50.0 + rng.random::<f64>() * 0.06;
    (base as f64 * factor) as u64
}

pub(crate) fn offer_title<R: Rng + ?Sized>(product_title: &str, rng: &mut R) -> String {
    match rng.random_range(0..5u8) {
        0 => format!("{product_title} - NEW"),
        1 => format!("{product_title} with Free Shipping"),
        _ => product_title.to_string(),
    }
}

fn merchant_name(i: usize) -> String {
    const NAMES: &[&str] = &[
        "TechForLess",
        "Microwarehouse",
        "BuyMore",
        "ShopSmart",
        "GadgetHub",
        "ValueBazaar",
        "PrimeDeals",
        "MegaMart",
        "DirectSupply",
        "CircuitCity",
        "HomeStyles",
        "KitchenKing",
    ];
    if i < NAMES.len() {
        NAMES[i].to_string()
    } else {
        format!("{}{}", NAMES[i % NAMES.len()], i / NAMES.len() + 1)
    }
}

pub(crate) fn slug(name: &str) -> String {
    name.chars().filter(|c| c.is_ascii_alphanumeric()).collect::<String>().to_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::tiny())
    }

    #[test]
    fn world_has_expected_shape() {
        let w = world();
        let s = w.stats();
        assert_eq!(s.categories, 5);
        assert_eq!(s.products, 5 * 12);
        assert_eq!(s.merchants, 5);
        assert_eq!(s.offers, 300);
        assert!(s.historical_matches > 0);
        assert!(w.catalog.validate().is_empty(), "products conform to schemas");
    }

    #[test]
    fn offers_reference_valid_entities() {
        let w = world();
        for o in &w.offers {
            assert!(o.merchant.index() < w.merchants.len());
            let cat = o.category.unwrap();
            assert!(w.category_info(cat).is_some());
            let p = w.truth.product_of(o.id);
            assert_eq!(w.catalog.product(p).category, cat, "offer product in offer category");
            assert!(w.vocab(o.merchant, cat).is_some(), "merchant covers category");
        }
    }

    #[test]
    fn page_spec_is_deterministic_and_truthful() {
        let w = world();
        let offer = w.offers[0].id;
        let a = w.page_spec(offer);
        let b = w.page_spec(offer);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        // Every page attribute is either a renamed catalog attribute or junk,
        // per the ground-truth map.
        let o = &w.offers[0];
        let cat = o.category.unwrap();
        for pair in a.iter() {
            let norm = pse_text::normalize::normalize_attribute_name(&pair.name);
            assert!(
                w.truth.catalog_attribute(o.merchant, cat, &norm).is_some(),
                "unmapped page attribute {}",
                pair.name
            );
        }
    }

    #[test]
    fn landing_pages_are_deterministic_html() {
        let w = world();
        let offer = w.offers[1].id;
        let a = w.landing_page(offer);
        assert_eq!(a, w.landing_page(offer));
        assert!(a.contains("<table"));
        assert!(a.starts_with("<!DOCTYPE html>"));
    }

    #[test]
    fn historical_matches_point_to_true_products_when_error_free() {
        let w = world(); // match_error_rate = 0 in tiny config
        for (offer, product) in w.historical.iter() {
            assert_eq!(product, w.truth.product_of(offer));
        }
    }

    #[test]
    fn match_errors_appear_when_configured() {
        let cfg = WorldConfig { match_error_rate: 0.5, ..WorldConfig::tiny() };
        let w = World::generate(cfg);
        let wrong = w.historical.iter().filter(|(o, p)| *p != w.truth.product_of(*o)).count();
        assert!(wrong > 0, "expected some corrupted matches");
    }

    #[test]
    fn bullet_offers_fraction_is_plausible() {
        let w = world();
        let frac = w.truth.bullet_offers.len() as f64 / w.offers.len() as f64;
        assert!(frac > 0.02 && frac < 0.35, "frac={frac}");
    }

    #[test]
    fn same_seed_same_world() {
        let a = World::generate(WorldConfig::tiny());
        let b = World::generate(WorldConfig::tiny());
        assert_eq!(a.offers.len(), b.offers.len());
        assert_eq!(a.offers[7], b.offers[7]);
        assert_eq!(a.catalog.product(ProductId(3)).spec, b.catalog.product(ProductId(3)).spec);
    }

    #[test]
    fn different_seed_different_world() {
        let a = World::generate(WorldConfig::tiny());
        let b = World::generate(WorldConfig { seed: 999, ..WorldConfig::tiny() });
        let differs = (0..20).any(|i| a.offers[i] != b.offers[i]);
        assert!(differs);
    }

    #[test]
    fn name_identity_rate_tracks_config() {
        let w = world();
        let mut identity = 0usize;
        let mut total = 0usize;
        for ((_, cat), vocab) in w.vocabs.iter() {
            let info = w.category_info(*cat).unwrap();
            for t in &info.templates {
                if let Some(surface) = vocab.merchant_name(&t.name) {
                    total += 1;
                    if pse_text::normalize::names_equal(surface, &t.name) {
                        identity += 1;
                    }
                }
            }
        }
        let rate = identity as f64 / total as f64;
        assert!(rate > 0.2 && rate < 0.55, "identity rate {rate}");
    }
}
