//! Per-(merchant, category) private vocabularies.
//!
//! The heterogeneity the paper must overcome (Figure 2) comes from each
//! merchant describing products in its own dialect: different attribute
//! names (`Capacity` vs `Hard Disk Size`), different value formats
//! (`500 GB` vs `500`), a subset of the catalog attributes, plus
//! merchant-only attributes (shipping, condition) that mean nothing to the
//! catalog. A [`MerchantVocab`] captures one such dialect; it is generated
//! once per (merchant, category) and then applied deterministically to
//! every offer.

use std::collections::{HashMap, HashSet};

use pse_text::normalize::normalize_attribute_name;
use rand::RngExt;
use serde::{Deserialize, Serialize};

use crate::templates::{junk_attribute_pool, AttrTemplate};
use crate::value::ValueGen;

/// How a merchant renders numeric units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnitMode {
    /// Keep the canonical `"500 GB"`.
    Keep,
    /// Drop the unit: `"500"`.
    Strip,
    /// Use an alternative spelling: `"500 gigabytes"`.
    Alt(usize),
    /// Join tightly: `"500GB"`.
    Tight,
}

/// How a merchant cases textual values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CaseMode {
    /// Leave as-is.
    AsIs,
    /// Lowercase.
    Lower,
    /// Uppercase.
    Upper,
}

/// How a merchant rewrites multi-token textual values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TextStyle {
    /// Leave tokens as they are.
    AsIs,
    /// Abbreviate the first token to its initial: `"Western Digital"` →
    /// `"W Digital"` (a value a human labeler would reject against the
    /// manufacturer's `"Western Digital"`, like real merchant sloppiness).
    Abbrev,
    /// Remove separators: `"Serial ATA 300"` → `"SerialATA300"`.
    Tight,
}

/// Qualifier tokens merchants append to values (`"500 GB"` →
/// `"500 GB Premium"`), a common source of near-duplicate value noise.
pub const DECOR_POOL: [&str; 6] = ["Premium", "Series", "Class", "Certified", "Plus", "Edition"];

/// Per-attribute value formatting of one merchant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValueFormat {
    /// Unit treatment for numeric values.
    pub unit: UnitMode,
    /// Case treatment for textual values.
    pub case: CaseMode,
    /// Token-level rewriting for textual values.
    pub text: TextStyle,
    /// Index into [`DECOR_POOL`] of a qualifier suffix, when any.
    pub decor: Option<u8>,
}

/// The dialect of one merchant within one category.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MerchantVocab {
    /// Normalized catalog attribute → merchant surface name.
    rename: HashMap<String, String>,
    /// Normalized catalog attributes the merchant exposes at all.
    exposed: HashSet<String>,
    /// Per-attribute (normalized catalog name) value formatting.
    formats: HashMap<String, ValueFormat>,
    /// Merchant-only attributes: `(surface name, value menu)`.
    junk: Vec<(String, Vec<String>)>,
}

impl MerchantVocab {
    /// Generate a dialect for the given category schema templates.
    ///
    /// * With probability `name_identity_probability` an attribute keeps its
    ///   catalog name (these power automated training-set creation).
    /// * Each attribute is exposed with probability `attribute_coverage`
    ///   (key attributes are always exposed — merchants list part numbers).
    /// * `junk_count` merchant-only attributes are added.
    ///
    /// A merchant uses exactly one name per catalog attribute, and no two
    /// catalog attributes share a merchant name (the paper's assumptions).
    pub fn generate<R: rand::Rng + ?Sized>(
        rng: &mut R,
        templates: &[AttrTemplate],
        name_identity_probability: f64,
        attribute_coverage: f64,
        junk_count: usize,
    ) -> Self {
        Self::generate_with_sloppiness(
            rng,
            templates,
            name_identity_probability,
            attribute_coverage,
            junk_count,
            1.0,
        )
    }

    /// Like [`Self::generate`], scaled by a per-merchant `sloppiness`
    /// factor: tidy merchants (≈0.2) keep canonical formats almost
    /// everywhere; sloppy ones (≈1.8) strip units, abbreviate, and decorate
    /// aggressively. Real feeds vary this much, and heterogeneous noise is
    /// one reason fixed similarity measures miscalibrate across merchants.
    pub fn generate_with_sloppiness<R: rand::Rng + ?Sized>(
        rng: &mut R,
        templates: &[AttrTemplate],
        name_identity_probability: f64,
        attribute_coverage: f64,
        junk_count: usize,
        sloppiness: f64,
    ) -> Self {
        let mut rename = HashMap::new();
        let mut exposed = HashSet::new();
        let mut formats = HashMap::new();
        let mut used_names: HashSet<String> = HashSet::new();

        for t in templates {
            let key = normalize_attribute_name(&t.name);
            let is_key_attr = matches!(t.gen, ValueGen::Mpn | ValueGen::Upc);
            if !is_key_attr && !rng.random_bool(attribute_coverage) {
                continue;
            }
            exposed.insert(key.clone());

            let surface = if rng.random_bool(name_identity_probability) || t.synonyms.is_empty() {
                t.name.clone()
            } else {
                t.synonyms[rng.random_range(0..t.synonyms.len())].clone()
            };
            // Enforce injectivity of the rename map.
            let surface = if used_names.insert(normalize_attribute_name(&surface)) {
                surface
            } else if used_names.insert(key.clone()) {
                t.name.clone()
            } else {
                // Pathological template set; qualify the name.
                let fallback = format!("{} Spec", t.name);
                used_names.insert(normalize_attribute_name(&fallback));
                fallback
            };
            rename.insert(key.clone(), surface);

            let p = |base: f64| (base * sloppiness).clamp(0.0, 0.95);
            let unit = if rng.random_bool(p(0.30)) {
                UnitMode::Strip
            } else if rng.random_bool(p(0.25)) {
                UnitMode::Tight
            } else if rng.random_bool(p(0.25)) {
                let alts = match &t.gen {
                    ValueGen::Numeric { alt_units, .. } => alt_units.len(),
                    _ => 0,
                };
                if alts > 0 {
                    UnitMode::Alt(rng.random_range(0..alts))
                } else {
                    UnitMode::Keep
                }
            } else {
                UnitMode::Keep
            };
            let case = if rng.random_bool(p(0.17)) {
                CaseMode::Lower
            } else if rng.random_bool(p(0.17)) {
                CaseMode::Upper
            } else {
                CaseMode::AsIs
            };
            let text = if rng.random_bool(p(0.15)) {
                TextStyle::Abbrev
            } else if rng.random_bool(p(0.25)) {
                TextStyle::Tight
            } else {
                TextStyle::AsIs
            };
            let decor = (!is_key_attr && rng.random_bool(p(0.2)))
                .then(|| rng.random_range(0..DECOR_POOL.len() as u8));
            formats.insert(key, ValueFormat { unit, case, text, decor });
        }

        let pool = junk_attribute_pool();
        let mut junk = Vec::new();
        let mut picked = HashSet::new();
        let mut guard = 0;
        while junk.len() < junk_count.min(pool.len()) && guard < 100 {
            guard += 1;
            let i = rng.random_range(0..pool.len());
            if !picked.insert(i) {
                continue;
            }
            let (name, values) = pool[i];
            if used_names.contains(&normalize_attribute_name(name)) {
                continue;
            }
            junk.push((name.to_string(), values.iter().map(|s| s.to_string()).collect()));
        }

        Self { rename, exposed, formats, junk }
    }

    /// Whether the merchant exposes the given catalog attribute.
    pub fn exposes(&self, catalog_attr: &str) -> bool {
        self.exposed.contains(&normalize_attribute_name(catalog_attr))
    }

    /// The merchant's surface name for a catalog attribute (when exposed).
    pub fn merchant_name(&self, catalog_attr: &str) -> Option<&str> {
        self.rename.get(&normalize_attribute_name(catalog_attr)).map(String::as_str)
    }

    /// Iterate over `(normalized catalog attr, merchant surface name)`.
    pub fn renames(&self) -> impl Iterator<Item = (&str, &str)> {
        self.rename.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// The merchant-only (junk) attributes: `(surface name, value menu)`.
    pub fn junk_attributes(&self) -> &[(String, Vec<String>)] {
        &self.junk
    }

    /// Render a canonical value the way this merchant writes it.
    pub fn format_value(
        &self,
        catalog_attr: &str,
        canonical_value: &str,
        gen: &ValueGen,
    ) -> String {
        let fmt = self.formats.get(&normalize_attribute_name(catalog_attr)).copied().unwrap_or(
            ValueFormat {
                unit: UnitMode::Keep,
                case: CaseMode::AsIs,
                text: TextStyle::AsIs,
                decor: None,
            },
        );
        // Token-level rewriting applies to textual (non-unit-bearing) values.
        let restyled: String = match (&fmt.text, gen) {
            (TextStyle::AsIs, _)
            | (_, ValueGen::Numeric { .. } | ValueGen::Mpn | ValueGen::Upc) => {
                canonical_value.to_string()
            }
            (TextStyle::Abbrev, _) => abbreviate_first_token(canonical_value),
            (TextStyle::Tight, _) => {
                canonical_value.chars().filter(|c| !c.is_whitespace() && *c != '-').collect()
            }
        };
        let canonical_value = restyled.as_str();
        let with_unit = match (&fmt.unit, gen) {
            (UnitMode::Keep, _) => canonical_value.to_string(),
            (_, ValueGen::Numeric { unit, alt_units, .. }) if !unit.is_empty() => {
                // Split "500 GB" into magnitude and unit.
                let magnitude = canonical_value
                    .strip_suffix(unit.as_str())
                    .map(str::trim_end)
                    .unwrap_or(canonical_value);
                match fmt.unit {
                    UnitMode::Strip => magnitude.to_string(),
                    UnitMode::Tight => format!("{magnitude}{unit}"),
                    UnitMode::Alt(i) => {
                        let alt = alt_units.get(i).map(String::as_str).unwrap_or(unit);
                        format!("{magnitude} {alt}")
                    }
                    UnitMode::Keep => unreachable!("handled above"),
                }
            }
            _ => canonical_value.to_string(),
        };
        let cased = match fmt.case {
            CaseMode::AsIs => with_unit,
            CaseMode::Lower => with_unit.to_lowercase(),
            CaseMode::Upper => with_unit.to_uppercase(),
        };
        match fmt.decor.and_then(|i| DECOR_POOL.get(i as usize)) {
            Some(q) if !matches!(gen, ValueGen::Mpn | ValueGen::Upc) => format!("{cased} {q}"),
            _ => cased,
        }
    }

    /// Sample a corrupted value: another draw from the same menu (models a
    /// merchant listing the wrong spec).
    pub fn corrupt_value<R: rand::Rng + ?Sized>(
        &self,
        gen: &ValueGen,
        weights: &[f64],
        rng: &mut R,
    ) -> String {
        gen.sample(weights, rng)
    }
}

/// Abbreviate the first whitespace-separated token of a multi-token value
/// to its initial: `"Western Digital"` → `"W Digital"`. Single-token and
/// digit-leading values pass through unchanged.
fn abbreviate_first_token(value: &str) -> String {
    let mut parts = value.splitn(2, ' ');
    match (parts.next(), parts.next()) {
        (Some(first), Some(rest))
            if first.chars().count() > 1
                && first.chars().next().is_some_and(char::is_alphabetic) =>
        {
            let initial = first.chars().next().unwrap();
            format!("{initial} {rest}")
        }
        _ => value.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::{attribute_pool, universal_attributes, TopLevel};
    use rand::SeedableRng;

    fn templates() -> Vec<AttrTemplate> {
        let mut t = universal_attributes(TopLevel::Computing);
        t.extend(attribute_pool(TopLevel::Computing));
        t
    }

    fn vocab(seed: u64) -> (MerchantVocab, Vec<AttrTemplate>) {
        let t = templates();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (MerchantVocab::generate(&mut rng, &t, 0.35, 0.85, 2), t)
    }

    #[test]
    fn rename_is_injective_and_single_valued() {
        for seed in 0..20 {
            let (v, _) = vocab(seed);
            let names: Vec<_> = v.renames().map(|(_, s)| normalize_attribute_name(s)).collect();
            let set: HashSet<_> = names.iter().cloned().collect();
            assert_eq!(names.len(), set.len(), "seed {seed}: duplicate merchant name");
        }
    }

    #[test]
    fn key_attributes_always_exposed() {
        for seed in 0..20 {
            let (v, _) = vocab(seed);
            assert!(v.exposes("MPN"), "seed {seed}");
            assert!(v.exposes("UPC"), "seed {seed}");
        }
    }

    #[test]
    fn surface_names_come_from_template_or_canonical() {
        let (v, t) = vocab(3);
        for tmpl in &t {
            if let Some(surface) = v.merchant_name(&tmpl.name) {
                let ok = surface == tmpl.name || tmpl.synonyms.iter().any(|s| s == surface);
                assert!(ok, "unexpected surface name {surface} for {}", tmpl.name);
            }
        }
    }

    #[test]
    fn junk_attributes_present() {
        let (v, _) = vocab(5);
        assert_eq!(v.junk_attributes().len(), 2);
    }

    #[test]
    fn value_formatting_modes() {
        let gen = ValueGen::Numeric {
            values: vec![500.0],
            unit: "GB".into(),
            alt_units: vec!["gigabytes".into()],
        };
        let mut v = MerchantVocab {
            rename: HashMap::new(),
            exposed: HashSet::new(),
            formats: HashMap::new(),
            junk: vec![],
        };
        for (mode, expected) in [
            (UnitMode::Keep, "500 GB"),
            (UnitMode::Strip, "500"),
            (UnitMode::Tight, "500GB"),
            (UnitMode::Alt(0), "500 gigabytes"),
        ] {
            v.formats.insert(
                "capacity".to_string(),
                ValueFormat {
                    unit: mode,
                    case: CaseMode::AsIs,
                    text: TextStyle::AsIs,
                    decor: None,
                },
            );
            assert_eq!(v.format_value("Capacity", "500 GB", &gen), expected);
        }
        // Case modes apply to text values.
        v.formats.insert(
            "interface".to_string(),
            ValueFormat {
                unit: UnitMode::Keep,
                case: CaseMode::Lower,
                text: TextStyle::AsIs,
                decor: None,
            },
        );
        let text_gen = ValueGen::Enum { choices: vec![] };
        assert_eq!(v.format_value("Interface", "Serial ATA 300", &text_gen), "serial ata 300");
    }

    #[test]
    fn format_value_without_entry_is_identity() {
        let v = MerchantVocab {
            rename: HashMap::new(),
            exposed: HashSet::new(),
            formats: HashMap::new(),
            junk: vec![],
        };
        let gen = ValueGen::Enum { choices: vec![] };
        assert_eq!(v.format_value("X", "anything", &gen), "anything");
    }

    #[test]
    fn text_styles_rewrite_values() {
        let mut v = MerchantVocab {
            rename: HashMap::new(),
            exposed: HashSet::new(),
            formats: HashMap::new(),
            junk: vec![],
        };
        let text_gen = ValueGen::Enum { choices: vec![] };
        v.formats.insert(
            "interface".to_string(),
            ValueFormat {
                unit: UnitMode::Keep,
                case: CaseMode::AsIs,
                text: TextStyle::Tight,
                decor: None,
            },
        );
        assert_eq!(v.format_value("Interface", "Serial ATA 300", &text_gen), "SerialATA300");
        v.formats.insert(
            "brand".to_string(),
            ValueFormat {
                unit: UnitMode::Keep,
                case: CaseMode::AsIs,
                text: TextStyle::Abbrev,
                decor: None,
            },
        );
        assert_eq!(v.format_value("Brand", "Western Digital", &text_gen), "W Digital");
        assert_eq!(v.format_value("Brand", "Sony", &text_gen), "Sony");
        // Identifiers are never restyled.
        v.formats.insert(
            "mpn".to_string(),
            ValueFormat {
                unit: UnitMode::Keep,
                case: CaseMode::AsIs,
                text: TextStyle::Tight,
                decor: None,
            },
        );
        assert_eq!(v.format_value("MPN", "ABC 123", &ValueGen::Mpn), "ABC 123");
    }

    #[test]
    fn abbreviation_edge_cases() {
        assert_eq!(abbreviate_first_token("Western Digital"), "W Digital");
        assert_eq!(abbreviate_first_token("Sony"), "Sony");
        assert_eq!(abbreviate_first_token("3 Piece Set"), "3 Piece Set");
        assert_eq!(abbreviate_first_token(""), "");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let (a, _) = vocab(9);
        let (b, _) = vocab(9);
        let ra: Vec<_> = {
            let mut x: Vec<_> = a.renames().collect();
            x.sort();
            x.into_iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
        };
        let rb: Vec<_> = {
            let mut x: Vec<_> = b.renames().collect();
            x.sort();
            x.into_iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
        };
        assert_eq!(ra, rb);
    }
}
