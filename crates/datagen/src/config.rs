//! Scale and noise knobs for world generation.

use serde::{Deserialize, Serialize};

/// Configuration of a synthetic world.
///
/// The defaults produce a small world suitable for unit tests; the
/// experiment drivers scale the counts up toward the paper's setting
/// (856,781 offers / 1,143 merchants / 498 categories).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master seed; everything else derives deterministically from it.
    pub seed: u64,
    /// Leaf categories under each of the four top-level categories.
    pub leaf_categories_per_top: [usize; 4],
    /// Products generated per leaf category.
    pub products_per_category: usize,
    /// Number of merchants.
    pub num_merchants: usize,
    /// Total number of offers.
    pub num_offers: usize,
    /// Categories each merchant covers, as a fraction of all leaves.
    pub merchant_category_coverage: f64,
    /// Fraction of offers that carry a historical offer-to-product match.
    pub historical_fraction: f64,
    /// Fraction of historical matches pointing at the *wrong* product
    /// (models imperfect matchers feeding the history).
    pub match_error_rate: f64,
    /// Probability that a merchant uses the catalog's exact attribute name
    /// (drives the name-identity training-set construction).
    pub name_identity_probability: f64,
    /// Fraction of catalog attributes a merchant exposes per category.
    pub attribute_coverage: f64,
    /// Junk (non-catalog) attributes each merchant adds per category.
    pub junk_attributes_per_merchant: usize,
    /// Probability that an offer's landing page renders its specification
    /// as a bulleted list instead of a table (missed by the extractor).
    pub bullet_page_probability: f64,
    /// Probability that a landing page includes a noisy two-column table
    /// (reviews, shipping info) that pollutes extraction.
    pub noise_table_probability: f64,
    /// Probability that a single attribute value is corrupted in an offer
    /// (typos / wrong values in merchant feeds).
    pub value_corruption_rate: f64,
    /// Zipf-like skew of product popularity (0 = uniform; higher = more
    /// offers concentrated on few products).
    pub popularity_skew: f64,
    /// Fraction of the brand pool each merchant actually stocks (assortment
    /// bias; the "SonyStyle only sells Sony" confounder).
    pub merchant_brand_coverage: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            leaf_categories_per_top: [3, 4, 2, 2],
            products_per_category: 40,
            num_merchants: 12,
            num_offers: 1_500,
            merchant_category_coverage: 0.5,
            historical_fraction: 0.45,
            match_error_rate: 0.0,
            name_identity_probability: 0.35,
            attribute_coverage: 0.85,
            junk_attributes_per_merchant: 3,
            bullet_page_probability: 0.30,
            noise_table_probability: 0.35,
            value_corruption_rate: 0.03,
            popularity_skew: 1.0,
            merchant_brand_coverage: 0.25,
        }
    }
}

impl WorldConfig {
    /// A tiny world for fast unit tests.
    pub fn tiny() -> Self {
        Self {
            leaf_categories_per_top: [1, 2, 1, 1],
            products_per_category: 12,
            num_merchants: 5,
            num_offers: 300,
            ..Self::default()
        }
    }

    /// A paper-scale world: hundreds of categories, ~1k merchants. Use from
    /// release-mode experiment drivers only.
    pub fn paper_scale(num_offers: usize) -> Self {
        Self {
            leaf_categories_per_top: [96, 184, 60, 60], // ≈ 400 leaves, Computing-heavy
            products_per_category: 60,
            num_merchants: 1_000,
            num_offers,
            ..Self::default()
        }
    }

    /// Total number of leaf categories.
    pub fn total_leaves(&self) -> usize {
        self.leaf_categories_per_top.iter().sum()
    }

    /// Basic sanity checks; reports the first problem as a typed error.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.total_leaves() == 0 {
            return Err(ConfigError::NoLeafCategories);
        }
        if self.products_per_category == 0 {
            return Err(ConfigError::ZeroProductsPerCategory);
        }
        if self.num_merchants == 0 {
            return Err(ConfigError::ZeroMerchants);
        }
        for (name, v) in [
            ("merchant_category_coverage", self.merchant_category_coverage),
            ("historical_fraction", self.historical_fraction),
            ("match_error_rate", self.match_error_rate),
            ("name_identity_probability", self.name_identity_probability),
            ("attribute_coverage", self.attribute_coverage),
            ("bullet_page_probability", self.bullet_page_probability),
            ("noise_table_probability", self.noise_table_probability),
            ("value_corruption_rate", self.value_corruption_rate),
            ("merchant_brand_coverage", self.merchant_brand_coverage),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ConfigError::ProbabilityOutOfRange { name, value: v });
            }
        }
        Ok(())
    }
}

/// Why a [`WorldConfig`] failed [`WorldConfig::validate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// Every top-level category has zero leaves.
    NoLeafCategories,
    /// `products_per_category` is zero.
    ZeroProductsPerCategory,
    /// `num_merchants` is zero.
    ZeroMerchants,
    /// A probability knob is outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which knob.
        name: &'static str,
        /// Its value.
        value: f64,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoLeafCategories => write!(f, "world must have at least one leaf category"),
            Self::ZeroProductsPerCategory => write!(f, "products_per_category must be positive"),
            Self::ZeroMerchants => write!(f, "num_merchants must be positive"),
            Self::ProbabilityOutOfRange { name, value } => {
                write!(f, "{name} must be in [0, 1], got {value}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for String {
    fn from(e: ConfigError) -> String {
        e.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(WorldConfig::default().validate().is_ok());
        assert!(WorldConfig::tiny().validate().is_ok());
        assert!(WorldConfig::paper_scale(10_000).validate().is_ok());
    }

    #[test]
    fn bad_probability_rejected() {
        let cfg = WorldConfig { historical_fraction: 1.5, ..WorldConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn leaf_count_sums() {
        let cfg = WorldConfig { leaf_categories_per_top: [1, 2, 3, 4], ..WorldConfig::default() };
        assert_eq!(cfg.total_leaves(), 10);
    }

    #[test]
    fn zero_categories_rejected() {
        let cfg = WorldConfig { leaf_categories_per_top: [0; 4], ..WorldConfig::default() };
        assert!(cfg.validate().is_err());
    }
}
