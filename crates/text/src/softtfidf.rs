//! SoftTFIDF hybrid similarity (Cohen, Ravikumar & Fienberg, 2003).
//!
//! DUMAS (Bilke & Naumann, ICDE 2005) compares field values with SoftTFIDF:
//! a TF-IDF cosine where tokens need not match exactly — two tokens are
//! considered "close" when their Jaro–Winkler similarity exceeds a threshold
//! θ (0.9 in the original work), and the contribution of a close pair is
//! scaled by that similarity.

use std::collections::{BTreeMap, HashMap};

use crate::bow::BagOfWords;
use crate::intern::{Interner, Sym};
use crate::sparse::{SparseCounts, SparseVec};
use crate::strsim::{jaro_winkler, jaro_winkler_with, JaroScratch};
use crate::tfidf::{InternedCorpus, TfIdfCorpus};
use crate::tokenize::tokens;

/// SoftTFIDF similarity with a shared IDF corpus.
#[derive(Debug, Clone)]
pub struct SoftTfIdf {
    corpus: TfIdfCorpus,
    /// Inner-similarity threshold θ; token pairs below it are ignored.
    theta: f64,
}

impl SoftTfIdf {
    /// Standard configuration: θ = 0.9 as in the original SoftTFIDF paper.
    pub fn new(corpus: TfIdfCorpus) -> Self {
        Self::with_theta(corpus, 0.9)
    }

    /// Custom inner-similarity threshold. `theta` is clamped to `[0, 1]`.
    pub fn with_theta(corpus: TfIdfCorpus, theta: f64) -> Self {
        Self { corpus, theta: theta.clamp(0.0, 1.0) }
    }

    /// Access the underlying IDF corpus.
    pub fn corpus(&self) -> &TfIdfCorpus {
        &self.corpus
    }

    /// SoftTFIDF similarity of two raw strings, in `[0, 1]`.
    ///
    /// `CLOSE(θ, S, T)` is the set of tokens in `S` that have some token in
    /// `T` with inner similarity ≥ θ; each contributes
    /// `w(t, S) · w(closest, T) · sim(t, closest)`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = tokens(a);
        let tb = tokens(b);
        if ta.is_empty() || tb.is_empty() {
            return if ta.is_empty() && tb.is_empty() { 1.0 } else { 0.0 };
        }
        let va = self.normalized_weights(&ta);
        let vb = self.normalized_weights(&tb);
        let mut sum = 0.0;
        for (t, wa) in &va {
            // Exact matches short-circuit the O(|T|) scan.
            if let Some(wb) = vb.get(t) {
                sum += wa * wb;
                continue;
            }
            let mut best = 0.0f64;
            let mut best_w = 0.0f64;
            for (u, wb) in &vb {
                let s = jaro_winkler(t, u);
                if s >= self.theta && s > best {
                    best = s;
                    best_w = *wb;
                }
            }
            if best > 0.0 {
                sum += wa * best_w * best;
            }
        }
        sum.clamp(0.0, 1.0)
    }

    fn normalized_weights(&self, toks: &[String]) -> BTreeMap<String, f64> {
        let mut bag = BagOfWords::new();
        for t in toks {
            bag.add_token(t.clone());
        }
        self.corpus.weight_vector(&bag)
    }
}

/// A pre-weighted value under an [`InternedSoftTfIdf`]: the L2-normalized
/// TF-IDF vector of the value's tokens. Empty iff the value tokenizes to
/// nothing (TF-IDF weights are strictly positive, so a non-empty token list
/// always yields a non-empty vector).
#[derive(Debug, Clone, Default)]
pub struct SoftDoc {
    weights: SparseVec,
    /// Character count of each token, parallel to `weights`' entries — feeds
    /// the length-based θ-prefilter in [`InternedSoftTfIdf::similarity`].
    lens: Vec<u32>,
}

impl SoftDoc {
    /// Whether the underlying value had no tokens.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// A multiply–xorshift hasher for the memo's packed `u64` keys. The memo is
/// only ever probed by key (its iteration order is never observed), so a
/// fast non-SipHash hasher cannot affect any output — it only removes the
/// hashing cost from the innermost token-pair loop.
#[derive(Debug, Default)]
struct PairHasher(u64);

impl std::hash::Hasher for PairHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let mut h = (self.0 ^ n).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 32;
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[derive(Debug, Default, Clone)]
struct PairHasherBuilder;

impl std::hash::BuildHasher for PairHasherBuilder {
    type Hasher = PairHasher;

    fn build_hasher(&self) -> PairHasher {
        PairHasher::default()
    }
}

/// Memo of Jaro–Winkler scores per `(Sym, Sym)` pair.
///
/// Scoped to one matrix build (e.g. one DUMAS (merchant, category) group):
/// within that scope the token vocabulary is fixed, so each distinct token
/// pair is scored once no matter how many cells compare values containing
/// it. Dropping the memo flushes `softtfidf.jw_memo_hit` /
/// `softtfidf.jw_memo_miss` counters to pse-obs.
#[derive(Debug, Default)]
pub struct JwMemo {
    map: HashMap<u64, f64, PairHasherBuilder>,
    scratch: JaroScratch,
    hits: u64,
    misses: u64,
}

impl JwMemo {
    /// An empty memo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Jaro–Winkler similarity of two interned tokens, memoized.
    pub fn jw(&mut self, interner: &Interner, a: Sym, b: Sym) -> f64 {
        let key = ((a.0 as u64) << 32) | b.0 as u64;
        if let Some(&s) = self.map.get(&key) {
            self.hits += 1;
            return s;
        }
        self.misses += 1;
        let s = jaro_winkler_with(&mut self.scratch, interner.resolve(a), interner.resolve(b));
        self.map.insert(key, s);
        s
    }
}

impl Drop for JwMemo {
    fn drop(&mut self) {
        pse_obs::add("softtfidf.jw_memo_hit", self.hits);
        pse_obs::add("softtfidf.jw_memo_miss", self.misses);
    }
}

/// Interned SoftTFIDF over a frozen vocabulary and corpus.
///
/// [`InternedSoftTfIdf::similarity`] is bit-identical to
/// [`SoftTfIdf::similarity`] on equivalent inputs: both iterate the first
/// value's tokens in sorted order, short-circuit exact matches, and
/// otherwise scan *all* of the second value's tokens in sorted order for the
/// best θ-close one.
///
/// Near-match blocking note: unlike exact-token cosine (see the inverted
/// index in `pse-synthesis`'s `TitleMatcher`), SoftTFIDF cannot be blocked
/// on shared exact tokens — a pair may score > 0 through θ-close tokens
/// only. Instead of a per-cell rescan, the θ-close search is amortized by
/// [`JwMemo`]: each distinct token pair of the group's vocabulary is scored
/// once per matrix build (equivalent to scanning the group's token list once
/// per distinct query token, rather than once per product cell).
#[derive(Debug)]
pub struct InternedSoftTfIdf {
    interner: Interner,
    corpus: InternedCorpus,
    theta: f64,
}

impl InternedSoftTfIdf {
    /// Build from a frozen vocabulary and its corpus statistics. `theta` is
    /// clamped to `[0, 1]` like [`SoftTfIdf::with_theta`].
    pub fn new(interner: Interner, corpus: InternedCorpus, theta: f64) -> Self {
        Self { interner, corpus, theta: theta.clamp(0.0, 1.0) }
    }

    /// The symbol table.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Pre-weight one value given as provisional ids from the builder that
    /// produced this vocabulary.
    pub fn doc(&self, provisional: &[u32]) -> SoftDoc {
        let counts = SparseCounts::from_doc(&self.interner.doc(provisional));
        let weights = self.corpus.weight_counts(&counts);
        let lens = weights
            .entries()
            .iter()
            .map(|&(s, _)| self.interner.resolve(s).chars().count() as u32)
            .collect();
        SoftDoc { weights, lens }
    }

    /// SoftTFIDF similarity of two pre-weighted values, in `[0, 1]`.
    ///
    /// Token pairs that provably cannot reach θ are skipped before any
    /// Jaro–Winkler work. With `mn = min(|t|, |u|)`, `mx = max(|t|, |u|)`:
    /// at most `mn` characters match and transpositions only lower the
    /// score, so `jaro ≤ (mn/mx + 2) / 3`. The Winkler boost is
    /// `0.1·ℓ·(1 − jaro)` for the true common-prefix length `ℓ ≤ 4`, and is
    /// monotone in jaro for `ℓ ≤ 4`, so
    /// `jw ≤ jbound + 0.1·ℓ·(1 − jbound)` with `jbound = (mn/mx + 2) / 3`.
    /// A skipped pair therefore scores strictly below θ and could never have
    /// entered the `best` update; the result is bit-identical to the
    /// unfiltered scan. Both comparisons keep a `1e-6` slack so float
    /// rounding can only make the filter *less* aggressive, never unsound.
    pub fn similarity(&self, a: &SoftDoc, b: &SoftDoc, memo: &mut JwMemo) -> f64 {
        if a.is_empty() || b.is_empty() {
            return if a.is_empty() && b.is_empty() { 1.0 } else { 0.0 };
        }
        // Cheap pre-test without resolving strings: assume the maximal
        // prefix boost (ℓ = 4, i.e. jw ≤ 0.8 + 0.2·mn/mx) and skip iff
        // mn/mx < (θ − 0.8)·5. For θ ≤ 0.8 the cut is ≤ 0 and never fires.
        let cut = (self.theta - 0.8) * 5.0;
        let theta_gate = self.theta - 1e-6;
        let mut sum = 0.0;
        for (ai, &(t, wa)) in a.weights.entries().iter().enumerate() {
            // Exact matches short-circuit the O(|T|) scan.
            if let Some(wb) = b.weights.get(t) {
                sum += wa * wb;
                continue;
            }
            let la = a.lens[ai];
            let ta = self.interner.resolve(t);
            let mut best = 0.0f64;
            let mut best_w = 0.0f64;
            for (bi, &(u, wb)) in b.weights.entries().iter().enumerate() {
                let lb = b.lens[bi];
                let (mn, mx) = if la <= lb { (la, lb) } else { (lb, la) };
                if (mn as f64) < cut * (mx as f64) - 1e-6 {
                    continue;
                }
                // Tighter test with the true prefix length.
                let tu = self.interner.resolve(u);
                let prefix = ta.chars().zip(tu.chars()).take(4).take_while(|(x, y)| x == y).count();
                let jbound = (mn as f64 / mx as f64 + 2.0) / 3.0;
                if jbound + 0.1 * prefix as f64 * (1.0 - jbound) < theta_gate {
                    continue;
                }
                let s = memo.jw(&self.interner, t, u);
                if s >= self.theta && s > best {
                    best = s;
                    best_w = wb;
                }
            }
            if best > 0.0 {
                sum += wa * best_w * best;
            }
        }
        sum.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_of(docs: &[&str]) -> TfIdfCorpus {
        let mut c = TfIdfCorpus::new();
        for d in docs {
            c.add_document(&BagOfWords::from_values([*d]));
        }
        c
    }

    #[test]
    fn identical_strings_are_fully_similar() {
        let s = SoftTfIdf::new(corpus_of(&["seagate barracuda", "hitachi deskstar"]));
        assert!((s.similarity("Seagate Barracuda", "seagate barracuda") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_token_matches_count() {
        let s = SoftTfIdf::new(corpus_of(&["seagate barracuda", "barracda drive"]));
        // "barracda" is a typo of "barracuda": JW ≈ 0.98 ≥ 0.9.
        let soft = s.similarity("seagate barracuda", "seagate barracda");
        assert!(soft > 0.9, "soft={soft}");
    }

    #[test]
    fn disjoint_strings_score_zero() {
        let s = SoftTfIdf::new(corpus_of(&["alpha beta", "gamma delta"]));
        assert_eq!(s.similarity("alpha beta", "gamma delta"), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let s = SoftTfIdf::new(corpus_of(&["x"]));
        assert_eq!(s.similarity("", ""), 1.0);
        assert_eq!(s.similarity("", "x"), 0.0);
    }

    #[test]
    fn theta_gates_fuzzy_matches() {
        let strict = SoftTfIdf::with_theta(corpus_of(&["barracuda"]), 1.0);
        let lax = SoftTfIdf::with_theta(corpus_of(&["barracuda"]), 0.8);
        let a = "barracuda";
        let b = "barracda";
        assert_eq!(strict.similarity(a, b), 0.0);
        assert!(lax.similarity(a, b) > 0.8);
    }
}
