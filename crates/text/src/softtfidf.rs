//! SoftTFIDF hybrid similarity (Cohen, Ravikumar & Fienberg, 2003).
//!
//! DUMAS (Bilke & Naumann, ICDE 2005) compares field values with SoftTFIDF:
//! a TF-IDF cosine where tokens need not match exactly — two tokens are
//! considered "close" when their Jaro–Winkler similarity exceeds a threshold
//! θ (0.9 in the original work), and the contribution of a close pair is
//! scaled by that similarity.

use std::collections::BTreeMap;

use crate::bow::BagOfWords;
use crate::strsim::jaro_winkler;
use crate::tfidf::TfIdfCorpus;
use crate::tokenize::tokens;

/// SoftTFIDF similarity with a shared IDF corpus.
#[derive(Debug, Clone)]
pub struct SoftTfIdf {
    corpus: TfIdfCorpus,
    /// Inner-similarity threshold θ; token pairs below it are ignored.
    theta: f64,
}

impl SoftTfIdf {
    /// Standard configuration: θ = 0.9 as in the original SoftTFIDF paper.
    pub fn new(corpus: TfIdfCorpus) -> Self {
        Self::with_theta(corpus, 0.9)
    }

    /// Custom inner-similarity threshold. `theta` is clamped to `[0, 1]`.
    pub fn with_theta(corpus: TfIdfCorpus, theta: f64) -> Self {
        Self { corpus, theta: theta.clamp(0.0, 1.0) }
    }

    /// Access the underlying IDF corpus.
    pub fn corpus(&self) -> &TfIdfCorpus {
        &self.corpus
    }

    /// SoftTFIDF similarity of two raw strings, in `[0, 1]`.
    ///
    /// `CLOSE(θ, S, T)` is the set of tokens in `S` that have some token in
    /// `T` with inner similarity ≥ θ; each contributes
    /// `w(t, S) · w(closest, T) · sim(t, closest)`.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let ta = tokens(a);
        let tb = tokens(b);
        if ta.is_empty() || tb.is_empty() {
            return if ta.is_empty() && tb.is_empty() { 1.0 } else { 0.0 };
        }
        let va = self.normalized_weights(&ta);
        let vb = self.normalized_weights(&tb);
        let mut sum = 0.0;
        for (t, wa) in &va {
            // Exact matches short-circuit the O(|T|) scan.
            if let Some(wb) = vb.get(t) {
                sum += wa * wb;
                continue;
            }
            let mut best = 0.0f64;
            let mut best_w = 0.0f64;
            for (u, wb) in &vb {
                let s = jaro_winkler(t, u);
                if s >= self.theta && s > best {
                    best = s;
                    best_w = *wb;
                }
            }
            if best > 0.0 {
                sum += wa * best_w * best;
            }
        }
        sum.clamp(0.0, 1.0)
    }

    fn normalized_weights(&self, toks: &[String]) -> BTreeMap<String, f64> {
        let mut bag = BagOfWords::new();
        for t in toks {
            bag.add_token(t.clone());
        }
        self.corpus.weight_vector(&bag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_of(docs: &[&str]) -> TfIdfCorpus {
        let mut c = TfIdfCorpus::new();
        for d in docs {
            c.add_document(&BagOfWords::from_values([*d]));
        }
        c
    }

    #[test]
    fn identical_strings_are_fully_similar() {
        let s = SoftTfIdf::new(corpus_of(&["seagate barracuda", "hitachi deskstar"]));
        assert!((s.similarity("Seagate Barracuda", "seagate barracuda") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_token_matches_count() {
        let s = SoftTfIdf::new(corpus_of(&["seagate barracuda", "barracda drive"]));
        // "barracda" is a typo of "barracuda": JW ≈ 0.98 ≥ 0.9.
        let soft = s.similarity("seagate barracuda", "seagate barracda");
        assert!(soft > 0.9, "soft={soft}");
    }

    #[test]
    fn disjoint_strings_score_zero() {
        let s = SoftTfIdf::new(corpus_of(&["alpha beta", "gamma delta"]));
        assert_eq!(s.similarity("alpha beta", "gamma delta"), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let s = SoftTfIdf::new(corpus_of(&["x"]));
        assert_eq!(s.similarity("", ""), 1.0);
        assert_eq!(s.similarity("", "x"), 0.0);
    }

    #[test]
    fn theta_gates_fuzzy_matches() {
        let strict = SoftTfIdf::with_theta(corpus_of(&["barracuda"]), 1.0);
        let lax = SoftTfIdf::with_theta(corpus_of(&["barracuda"]), 0.8);
        let a = "barracuda";
        let b = "barracda";
        assert_eq!(strict.similarity(a, b), 0.0);
        assert!(lax.similarity(a, b) > 0.8);
    }
}
