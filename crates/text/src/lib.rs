//! Text primitives used throughout the product-synthesis pipeline.
//!
//! The schema-reconciliation approach of Nguyen et al. (VLDB 2011) reduces
//! attribute matching to comparing *value distributions*: every attribute is
//! summarized as a bag of word-level tokens, bags are turned into probability
//! distributions, and distributions are compared with Jensen–Shannon
//! divergence and the Jaccard coefficient (Section 3.1 of the paper).
//!
//! This crate provides those primitives, plus the classical string-similarity
//! measures required by the baseline matchers of Section 5 / Appendix C
//! (edit distance and trigram similarity for COMA++-style name matching,
//! Jaro–Winkler and SoftTFIDF for DUMAS).
//!
//! Everything here is implemented from scratch on `std` only.

pub mod bow;
pub mod divergence;
pub mod intern;
pub mod normalize;
pub mod softtfidf;
pub mod sparse;
pub mod strsim;
pub mod tfidf;
pub mod tokenize;

pub use bow::BagOfWords;
pub use divergence::{
    cosine_bags, jaccard_bags, jaccard_sets, jensen_shannon, kullback_leibler, l1_distance,
};
pub use intern::{Interner, InternerBuilder, Sym, TokenDoc};
pub use normalize::{normalize_attribute_name, normalize_value};
pub use softtfidf::{InternedSoftTfIdf, JwMemo, SoftDoc, SoftTfIdf};
pub use sparse::{
    cosine_counts, cosine_sparse, dot_sparse, jaccard_counts, jensen_shannon_counts, l1_counts,
    SparseCounts, SparseVec,
};
pub use tfidf::{InternedCorpus, InternedCorpusBuilder};
pub use tokenize::tokens;
