//! Deterministic string interning for the fast text kernels.
//!
//! Every scorer in the pipeline repeatedly compares the same small token
//! vocabulary (a category's product values, a merchant's offer values).
//! Interning maps each distinct token to a [`Sym`] once, so similarity
//! kernels operate on integer ids instead of `String` keys.
//!
//! Determinism contract: after [`InternerBuilder::finalize`], symbols are
//! assigned in **lexicographic string order** — `Sym(a) < Sym(b)` iff
//! `resolve(a) < resolve(b)`. Two consequences:
//!
//! * the final symbol table depends only on the *set* of interned strings,
//!   never on insertion order (parallel builds can't perturb it);
//! * iterating a symbol-sorted structure visits tokens in exactly the order
//!   a `BTreeMap<String, _>` would, so floating-point sums over
//!   [`crate::sparse::SparseVec`] merge-joins reproduce the historical
//!   `BTreeMap` summation order bit-for-bit.

use std::collections::HashMap;

/// An interned token. Ordering matches the lexicographic ordering of the
/// underlying strings (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(pub u32);

/// Accumulates the token vocabulary. Tokens get *provisional* ids in first-
/// seen order; [`InternerBuilder::finalize`] re-numbers them into sorted
/// order and returns the read-only [`Interner`].
#[derive(Debug, Default)]
pub struct InternerBuilder {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl InternerBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern one token, returning its provisional id (stable within this
    /// builder; remapped to a [`Sym`] by the finalized [`Interner`]).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.map.get(token) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.map.insert(token.to_string(), id);
        self.strings.push(token.to_string());
        id
    }

    /// Tokenize a raw value (same rules as [`crate::tokenize::tokens`]) and
    /// intern every token, returning provisional ids in token order.
    pub fn tokenize(&mut self, value: &str) -> Vec<u32> {
        let mut out = Vec::new();
        crate::tokenize::for_each_token(value, |t| out.push(self.intern(t)));
        out
    }

    /// Number of distinct tokens interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no token has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Sort the vocabulary and freeze it. Records the vocabulary size on the
    /// `text.intern.symbols` counter (pse-obs; no-op when disabled).
    pub fn finalize(self) -> Interner {
        let InternerBuilder { strings, .. } = self;
        let mut order: Vec<u32> = (0..strings.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| strings[a as usize].cmp(&strings[b as usize]));
        let mut remap = vec![0u32; strings.len()];
        for (rank, &prov) in order.iter().enumerate() {
            remap[prov as usize] = rank as u32;
        }
        let mut sorted = vec![String::new(); strings.len()];
        for (prov, s) in strings.into_iter().enumerate() {
            sorted[remap[prov] as usize] = s;
        }
        pse_obs::add("text.intern.symbols", sorted.len() as u64);
        Interner { strings: sorted, remap }
    }
}

/// A frozen, sorted symbol table. See the module docs for the ordering
/// guarantee.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Lexicographically sorted: `strings[s.0]` is the text of `Sym(s.0)`.
    strings: Vec<String>,
    /// Provisional id (from the builder) → final symbol index.
    remap: Vec<u32>,
}

impl Interner {
    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the vocabulary is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The text of a symbol.
    pub fn resolve(&self, s: Sym) -> &str {
        &self.strings[s.0 as usize]
    }

    /// Find the symbol of an exact token, if interned.
    pub fn lookup(&self, token: &str) -> Option<Sym> {
        self.strings.binary_search_by(|s| s.as_str().cmp(token)).ok().map(|i| Sym(i as u32))
    }

    /// Final symbol of a provisional id handed out by the builder.
    pub fn sym(&self, provisional: u32) -> Sym {
        Sym(self.remap[provisional as usize])
    }

    /// Remap a provisional token sequence into a [`TokenDoc`].
    pub fn doc(&self, provisional: &[u32]) -> TokenDoc {
        TokenDoc { syms: provisional.iter().map(|&p| self.sym(p)).collect() }
    }

    /// Symbols in lexicographic (= numeric) order.
    pub fn symbols(&self) -> impl Iterator<Item = Sym> + '_ {
        (0..self.strings.len() as u32).map(Sym)
    }
}

/// An interned token sequence (tokens in original order, duplicates kept).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenDoc {
    syms: Vec<Sym>,
}

impl TokenDoc {
    /// A document from already-final symbols.
    pub fn from_syms(syms: Vec<Sym>) -> Self {
        Self { syms }
    }

    /// Number of tokens (with multiplicity).
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// Whether the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// The symbols in token order.
    pub fn syms(&self) -> &[Sym] {
        &self.syms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_are_sorted_lexicographically() {
        let mut b = InternerBuilder::new();
        for t in ["zeta", "alpha", "mu", "alpha"] {
            b.intern(t);
        }
        let i = b.finalize();
        assert_eq!(i.len(), 3);
        assert_eq!(i.resolve(Sym(0)), "alpha");
        assert_eq!(i.resolve(Sym(1)), "mu");
        assert_eq!(i.resolve(Sym(2)), "zeta");
    }

    #[test]
    fn final_ids_are_insertion_order_independent() {
        let mut a = InternerBuilder::new();
        let mut b = InternerBuilder::new();
        for t in ["x", "a", "m"] {
            a.intern(t);
        }
        for t in ["m", "x", "a", "x"] {
            b.intern(t);
        }
        let (ia, ib) = (a.finalize(), b.finalize());
        for t in ["x", "a", "m"] {
            assert_eq!(ia.lookup(t), ib.lookup(t), "token {t}");
        }
    }

    #[test]
    fn provisional_ids_remap_to_final_symbols() {
        let mut b = InternerBuilder::new();
        let raw = b.tokenize("Beta alpha BETA");
        let i = b.finalize();
        let doc = i.doc(&raw);
        assert_eq!(doc.len(), 3);
        let texts: Vec<&str> = doc.syms().iter().map(|&s| i.resolve(s)).collect();
        assert_eq!(texts, ["beta", "alpha", "beta"]);
    }

    #[test]
    fn lookup_misses_unseen_tokens() {
        let mut b = InternerBuilder::new();
        b.intern("present");
        let i = b.finalize();
        assert_eq!(i.lookup("present"), Some(Sym(0)));
        assert_eq!(i.lookup("absent"), None);
        assert!(Interner::default().lookup("x").is_none());
    }

    #[test]
    fn sym_order_matches_string_order() {
        let mut b = InternerBuilder::new();
        for t in ["100", "gb", "ata", "z9"] {
            b.intern(t);
        }
        let i = b.finalize();
        let mut syms: Vec<Sym> = i.symbols().collect();
        syms.sort();
        let texts: Vec<&str> = syms.iter().map(|&s| i.resolve(s)).collect();
        let mut expect = texts.clone();
        expect.sort();
        assert_eq!(texts, expect);
    }
}
