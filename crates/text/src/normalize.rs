//! Normalization of attribute names and values.
//!
//! Attribute names arrive in many surface forms (`"Mfr. Part #"`,
//! `"MPN:"`, `"  Capacity "`); values likewise (`"500 GB"` vs `"500GB"`).
//! The pipeline compares names and values through these canonical forms.

use crate::tokenize::tokens;

/// Canonical form of an attribute name: lowercase tokens joined by a single
/// space, with trailing separators (`:` etc.) removed by tokenization.
///
/// ```
/// use pse_text::normalize::normalize_attribute_name;
/// assert_eq!(normalize_attribute_name("  Hard Disk Size: "), "hard disk size");
/// assert_eq!(normalize_attribute_name("MPN"), "mpn");
/// ```
pub fn normalize_attribute_name(name: &str) -> String {
    tokens(name).join(" ")
}

/// Canonical form of an attribute value: lowercase tokens joined by a single
/// space. Letter/digit splitting makes `"500GB"` and `"500 gb"` equal.
///
/// ```
/// use pse_text::normalize::normalize_value;
/// assert_eq!(normalize_value("500GB"), normalize_value("500 Gb"));
/// ```
pub fn normalize_value(value: &str) -> String {
    tokens(value).join(" ")
}

/// Whether two attribute names are the same after normalization.
pub fn names_equal(a: &str, b: &str) -> bool {
    normalize_attribute_name(a) == normalize_attribute_name(b)
}

/// Whether two values are equal after normalization.
pub fn values_equal(a: &str, b: &str) -> bool {
    normalize_value(a) == normalize_value(b)
}

/// Loose value equivalence used when labeling synthesized specifications
/// against ground truth: equal normal forms, one token sequence containing
/// the other (so `"windows vista"` is accepted against
/// `"microsoft windows vista"`), or equal separator-free concatenations
/// (so `"SerialATA300"` matches `"Serial ATA 300"`) — mirroring how the
/// paper's human labelers treated manufacturer specifications.
pub fn values_equivalent(a: &str, b: &str) -> bool {
    let ta = tokens(a);
    let tb = tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return ta == tb;
    }
    ta == tb
        || ta.concat() == tb.concat()
        || contains_subsequence(&ta, &tb)
        || contains_subsequence(&tb, &ta)
        || digit_sequences_equal(&ta, &tb)
}

/// For values carrying numbers, a labeler checks the magnitudes: `"500
/// gigabytes"` and `"500 GB"` describe the same capacity even though no
/// token-level relation holds. True when both token sequences contain at
/// least one digit token and their digit subsequences are identical.
fn digit_sequences_equal(ta: &[String], tb: &[String]) -> bool {
    let da: Vec<&String> = ta.iter().filter(|t| t.bytes().all(|b| b.is_ascii_digit())).collect();
    let db: Vec<&String> = tb.iter().filter(|t| t.bytes().all(|b| b.is_ascii_digit())).collect();
    !da.is_empty() && da == db
}

/// True when `needle` appears in `haystack` as a contiguous subsequence.
fn contains_subsequence(haystack: &[String], needle: &[String]) -> bool {
    if needle.is_empty() || needle.len() > haystack.len() {
        return false;
    }
    haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_names_normalize() {
        assert_eq!(normalize_attribute_name("Mfr. Part #"), "mfr part");
        assert!(names_equal("Hard-Disk  Size", "hard disk size"));
        assert!(!names_equal("Speed", "RPM"));
    }

    #[test]
    fn values_normalize() {
        assert!(values_equal("7200 RPM", "7200rpm"));
        assert!(values_equal("Serial ATA-300", "serial ata 300"));
        assert!(!values_equal("500", "5000"));
    }

    #[test]
    fn equivalence_accepts_containment() {
        assert!(values_equivalent("Windows Vista", "Microsoft Windows Vista"));
        assert!(values_equivalent("Microsoft Windows Vista", "Windows Vista"));
        assert!(!values_equivalent("Microsoft Vista", "Windows Vista"));
    }

    #[test]
    fn equivalence_accepts_equal_magnitudes() {
        assert!(values_equivalent("500 gigabytes", "500 GB"));
        assert!(values_equivalent("7200", "7200 rpm"));
        assert!(!values_equivalent("250 GB", "500 GB"));
        assert!(!values_equivalent("18-55 mm", "70-300 mm"));
        // No digits on either side: the magnitude rule never fires.
        assert!(!values_equivalent("W Digital", "Western Digital"));
    }

    #[test]
    fn equivalence_on_empties() {
        assert!(values_equivalent("", "  "));
        assert!(!values_equivalent("", "x"));
        assert!(!values_equivalent("x", "--"));
    }

    #[test]
    fn subsequence_edges() {
        let h: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        let n: Vec<String> = ["b", "c"].iter().map(|s| s.to_string()).collect();
        assert!(contains_subsequence(&h, &n));
        assert!(!contains_subsequence(&n, &h));
        assert!(!contains_subsequence(&h, &[]));
    }
}
