//! Sparse symbol-indexed vectors and the merge-join similarity kernels.
//!
//! These are the interned counterparts of [`crate::bow::BagOfWords`] +
//! [`crate::divergence`] / [`crate::tfidf::cosine_of`]. Because [`Sym`]
//! numeric order equals lexicographic token order (see [`crate::intern`]),
//! iterating the sorted entry vectors visits tokens in exactly the order a
//! `BTreeMap<String, _>` iteration would — every floating-point sum below
//! accumulates its terms in the same sequence as the string-based reference
//! implementation and therefore produces bit-identical scores. The string
//! path stays available precisely so tests can pin that equivalence.

use crate::divergence::MAX_JS;
use crate::intern::{Sym, TokenDoc};

/// A sparse multiset of symbols: entries sorted by [`Sym`] ascending, plus
/// the total count. The interned counterpart of a `BagOfWords`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseCounts {
    entries: Vec<(Sym, u64)>,
    total: u64,
}

impl SparseCounts {
    /// An empty multiset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count the tokens of one document.
    pub fn from_doc(doc: &TokenDoc) -> Self {
        let mut syms: Vec<Sym> = doc.syms().to_vec();
        syms.sort_unstable();
        let mut entries: Vec<(Sym, u64)> = Vec::new();
        for s in syms {
            match entries.last_mut() {
                Some((last, c)) if *last == s => *c += 1,
                _ => entries.push((s, 1)),
            }
        }
        Self { total: doc.len() as u64, entries }
    }

    /// Build from unordered `(Sym, count)` pairs (e.g. drained from a
    /// `HashMap` accumulator). Entries are sorted here, so the result is
    /// independent of the input order. Zero counts are dropped.
    pub fn from_unsorted(mut pairs: Vec<(Sym, u64)>) -> Self {
        pairs.retain(|&(_, c)| c > 0);
        pairs.sort_unstable_by_key(|&(s, _)| s);
        let total = pairs.iter().map(|&(_, c)| c).sum();
        Self { entries: pairs, total }
    }

    /// Add every token of `doc` to the multiset.
    pub fn add_doc(&mut self, doc: &TokenDoc) {
        if doc.is_empty() {
            return;
        }
        let other = Self::from_doc(doc);
        self.merge(&other);
    }

    /// Merge another multiset into this one.
    pub fn merge(&mut self, other: &SparseCounts) {
        let mut merged = Vec::with_capacity(self.entries.len() + other.entries.len());
        let (a, b) = (&self.entries, &other.entries);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    merged.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((a[i].0, a[i].1 + b[j].1));
                    i += 1;
                    j += 1;
                }
            }
        }
        merged.extend_from_slice(&a[i..]);
        merged.extend_from_slice(&b[j..]);
        self.entries = merged;
        self.total += other.total;
    }

    /// Occurrences of a symbol.
    pub fn count(&self, s: Sym) -> u64 {
        match self.entries.binary_search_by_key(&s, |&(t, _)| t) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Total occurrences (with multiplicity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct symbols.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Whether the multiset is empty.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Empirical probability of a symbol; zero for an empty multiset.
    pub fn probability(&self, s: Sym) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(s) as f64 / self.total as f64
        }
    }

    /// `(Sym, count)` entries, sorted by symbol ascending.
    pub fn entries(&self) -> &[(Sym, u64)] {
        &self.entries
    }
}

/// A sparse `f64` vector: entries sorted by [`Sym`] ascending.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseVec {
    entries: Vec<(Sym, f64)>,
}

impl SparseVec {
    /// A vector from entries already sorted by symbol ascending (debug-
    /// asserted).
    pub fn from_sorted(entries: Vec<(Sym, f64)>) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0), "entries must be sorted");
        Self { entries }
    }

    /// The weight of a symbol, if present.
    pub fn get(&self, s: Sym) -> Option<f64> {
        match self.entries.binary_search_by_key(&s, |&(t, _)| t) {
            Ok(i) => Some(self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the vector has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(Sym, weight)` entries, sorted by symbol ascending.
    pub fn entries(&self) -> &[(Sym, f64)] {
        &self.entries
    }
}

/// Dot product over the shared symbols of two sorted vectors, accumulated in
/// ascending symbol order — the same term sequence as
/// [`crate::tfidf::cosine_of`]'s sorted-probe loop.
///
/// The accumulator starts at `-0.0`, the identity `Iterator::sum::<f64>()`
/// folds from: vectors with no shared symbols must yield the same `-0.0`
/// bit pattern `cosine_of` has always produced for disjoint inputs.
pub fn dot_sparse(a: &SparseVec, b: &SparseVec) -> f64 {
    let (mut i, mut j) = (0, 0);
    let mut dot = -0.0f64;
    while i < a.entries.len() && j < b.entries.len() {
        match a.entries[i].0.cmp(&b.entries[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += a.entries[i].1 * b.entries[j].1;
                i += 1;
                j += 1;
            }
        }
    }
    dot
}

/// Cosine similarity of two already-normalized sparse vectors, in `[0, 1]`.
/// Bit-identical to [`crate::tfidf::cosine_of`] on equivalent inputs.
pub fn cosine_sparse(a: &SparseVec, b: &SparseVec) -> f64 {
    dot_sparse(a, b).clamp(0.0, 1.0)
}

/// Jensen–Shannon divergence between two count multisets, in `[0, ln 2]`.
/// Bit-identical to [`crate::divergence::jensen_shannon`]: the same two
/// passes (all of `a`'s support, then all of `b`'s), each in ascending token
/// order, with the same per-term expressions.
pub fn jensen_shannon_counts(a: &SparseCounts, b: &SparseCounts) -> f64 {
    if a.is_empty() || b.is_empty() {
        return MAX_JS;
    }
    let mut js = 0.0;
    let mut j = 0usize;
    for &(s, ca) in &a.entries {
        while j < b.entries.len() && b.entries[j].0 < s {
            j += 1;
        }
        let cb = if j < b.entries.len() && b.entries[j].0 == s { b.entries[j].1 } else { 0 };
        let pa = ca as f64 / a.total as f64;
        let pm = 0.5 * (pa + cb as f64 / b.total as f64);
        js += 0.5 * pa * (pa / pm).ln();
    }
    let mut i = 0usize;
    for &(s, cb) in &b.entries {
        while i < a.entries.len() && a.entries[i].0 < s {
            i += 1;
        }
        let ca = if i < a.entries.len() && a.entries[i].0 == s { a.entries[i].1 } else { 0 };
        let pb = cb as f64 / b.total as f64;
        let pm = 0.5 * (ca as f64 / a.total as f64 + pb);
        js += 0.5 * pb * (pb / pm).ln();
    }
    js.clamp(0.0, MAX_JS)
}

/// Jaccard coefficient over distinct symbol sets, matching
/// [`crate::divergence::jaccard_bags`] (integer intersection/union, so only
/// the final division is floating point).
pub fn jaccard_counts(a: &SparseCounts, b: &SparseCounts) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (mut i, mut j) = (0, 0);
    let mut intersection = 0usize;
    while i < a.entries.len() && j < b.entries.len() {
        match a.entries[i].0.cmp(&b.entries[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                intersection += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.distinct() + b.distinct() - intersection;
    intersection as f64 / union as f64
}

/// L1 distance between empirical distributions, in `[0, 2]`. Bit-identical
/// to [`crate::divergence::l1_distance`]: a pass over `a`'s support, then
/// `b`'s tokens missing from `a`, both ascending.
pub fn l1_counts(a: &SparseCounts, b: &SparseCounts) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 2.0;
    }
    let mut sum = 0.0;
    let mut j = 0usize;
    for &(s, ca) in &a.entries {
        while j < b.entries.len() && b.entries[j].0 < s {
            j += 1;
        }
        let cb = if j < b.entries.len() && b.entries[j].0 == s { b.entries[j].1 } else { 0 };
        sum += (ca as f64 / a.total as f64 - cb as f64 / b.total as f64).abs();
    }
    let mut i = 0usize;
    for &(s, cb) in &b.entries {
        while i < a.entries.len() && a.entries[i].0 < s {
            i += 1;
        }
        let present = i < a.entries.len() && a.entries[i].0 == s;
        if !present {
            sum += cb as f64 / b.total as f64;
        }
    }
    sum.clamp(0.0, 2.0)
}

/// Cosine similarity between empirical probability vectors, in `[0, 1]`.
/// Bit-identical to [`crate::divergence::cosine_bags`]: the dot walks the
/// smaller support ascending (absent tokens contribute an exact `0.0`, which
/// the merge-join simply skips — `x + 0.0 == x` for the non-negative sums
/// here), and each norm sums that bag's own support ascending.
pub fn cosine_counts(a: &SparseCounts, b: &SparseCounts) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (small, large) = if a.distinct() <= b.distinct() { (a, b) } else { (b, a) };
    let mut dot = 0.0;
    let mut j = 0usize;
    for &(s, cs) in &small.entries {
        while j < large.entries.len() && large.entries[j].0 < s {
            j += 1;
        }
        if j < large.entries.len() && large.entries[j].0 == s {
            dot +=
                cs as f64 / small.total as f64 * (large.entries[j].1 as f64 / large.total as f64);
        }
    }
    let norm = |x: &SparseCounts| {
        x.entries.iter().map(|&(_, c)| (c as f64 / x.total as f64).powi(2)).sum::<f64>().sqrt()
    };
    (dot / (norm(a) * norm(b))).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bow::BagOfWords;
    use crate::divergence::{cosine_bags, jaccard_bags, jensen_shannon, l1_distance};
    use crate::intern::InternerBuilder;

    /// Build interned counts + reference bags for value lists.
    fn both(values: &[&str]) -> (SparseCounts, BagOfWords) {
        let mut b = InternerBuilder::new();
        let raws: Vec<Vec<u32>> = values.iter().map(|v| b.tokenize(v)).collect();
        let interner = b.finalize();
        let mut counts = SparseCounts::new();
        for raw in &raws {
            counts.add_doc(&interner.doc(raw));
        }
        (counts, BagOfWords::from_values(values.iter().copied()))
    }

    /// A shared-vocabulary pair (both sides interned into one table).
    fn pair(a: &[&str], b: &[&str]) -> (SparseCounts, SparseCounts, BagOfWords, BagOfWords) {
        let mut ib = InternerBuilder::new();
        let ra: Vec<Vec<u32>> = a.iter().map(|v| ib.tokenize(v)).collect();
        let rb: Vec<Vec<u32>> = b.iter().map(|v| ib.tokenize(v)).collect();
        let interner = ib.finalize();
        let mut ca = SparseCounts::new();
        for r in &ra {
            ca.add_doc(&interner.doc(r));
        }
        let mut cb = SparseCounts::new();
        for r in &rb {
            cb.add_doc(&interner.doc(r));
        }
        (
            ca,
            cb,
            BagOfWords::from_values(a.iter().copied()),
            BagOfWords::from_values(b.iter().copied()),
        )
    }

    const CASES: &[(&[&str], &[&str])] = &[
        (&["ata 100", "ide 133", "ide 133", "ata 133"], &["ata 100 mb s", "ide 133 mb s"]),
        (&["5400", "7200", "5400"], &["5400", "7200", "5400"]),
        (&["alpha beta"], &["gamma delta"]),
        (&["größe 42µ écran"], &["écran 42", "größe"]),
        (&["x"], &[]),
        (&[], &[]),
    ];

    #[test]
    fn counts_match_bags() {
        let (counts, bag) = both(&["ATA 100", "IDE 133", "IDE 133", "ATA 133"]);
        assert_eq!(counts.total(), bag.total());
        assert_eq!(counts.distinct(), bag.distinct());
    }

    #[test]
    fn js_bits_match_reference() {
        for &(a, b) in CASES {
            let (ca, cb, ba, bb) = pair(a, b);
            assert_eq!(
                jensen_shannon_counts(&ca, &cb).to_bits(),
                jensen_shannon(&ba, &bb).to_bits(),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn jaccard_bits_match_reference() {
        for &(a, b) in CASES {
            let (ca, cb, ba, bb) = pair(a, b);
            assert_eq!(
                jaccard_counts(&ca, &cb).to_bits(),
                jaccard_bags(&ba, &bb).to_bits(),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn l1_bits_match_reference() {
        for &(a, b) in CASES {
            let (ca, cb, ba, bb) = pair(a, b);
            assert_eq!(
                l1_counts(&ca, &cb).to_bits(),
                l1_distance(&ba, &bb).to_bits(),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn cosine_bits_match_reference() {
        for &(a, b) in CASES {
            let (ca, cb, ba, bb) = pair(a, b);
            assert_eq!(
                cosine_counts(&ca, &cb).to_bits(),
                cosine_bags(&ba, &bb).to_bits(),
                "a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn from_unsorted_sorts_and_drops_zeros() {
        let c = SparseCounts::from_unsorted(vec![(Sym(5), 2), (Sym(1), 0), (Sym(2), 3)]);
        assert_eq!(c.entries(), &[(Sym(2), 3), (Sym(5), 2)]);
        assert_eq!(c.total(), 5);
        assert_eq!(c.count(Sym(5)), 2);
        assert_eq!(c.count(Sym(1)), 0);
    }

    #[test]
    fn sparse_vec_lookup() {
        let v = SparseVec::from_sorted(vec![(Sym(1), 0.5), (Sym(4), 0.25)]);
        assert_eq!(v.get(Sym(1)), Some(0.5));
        assert_eq!(v.get(Sym(2)), None);
        assert_eq!(dot_sparse(&v, &v), 0.5 * 0.5 + 0.25 * 0.25);
    }
}
