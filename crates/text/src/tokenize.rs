//! Word-level tokenization of attribute values and titles.
//!
//! The paper collects "bags of words" over attribute values (Section 3.1,
//! Figure 5c): a value such as `"ATA 100 mb/s"` contributes the tokens
//! `ata`, `100`, `mb`, `s`. We tokenize on any non-alphanumeric boundary,
//! lowercase everything, and additionally split at letter/digit boundaries so
//! that merchant-formatted values like `"500GB"` and catalog values like
//! `"500 GB"` produce comparable token streams.

/// Tokenize `input` into lowercase alphanumeric tokens.
///
/// Splitting happens at every non-alphanumeric character and at every
/// transition between letters and digits. Empty tokens are never produced.
///
/// ```
/// use pse_text::tokenize::tokens;
/// assert_eq!(tokens("ATA 100 mb/s"), ["ata", "100", "mb", "s"]);
/// assert_eq!(tokens("500GB"), ["500", "gb"]);
/// assert_eq!(tokens("  "), Vec::<String>::new());
/// ```
pub fn tokens(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut cur_is_digit = false;
    for ch in input.chars() {
        if ch.is_alphanumeric() {
            let is_digit = ch.is_ascii_digit();
            if !cur.is_empty() && is_digit != cur_is_digit {
                out.push(std::mem::take(&mut cur));
            }
            cur_is_digit = is_digit;
            for lc in ch.to_lowercase() {
                cur.push(lc);
            }
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Tokenize without splitting at letter/digit boundaries.
///
/// Useful when the caller wants tokens that stay closer to the surface form
/// (e.g. model numbers such as `hdt725050vla360` must remain one token when
/// clustering offers by key attribute).
///
/// ```
/// use pse_text::tokenize::surface_tokens;
/// assert_eq!(surface_tokens("MPN: HDT725050VLA360"), ["mpn", "hdt725050vla360"]);
/// ```
pub fn surface_tokens(input: &str) -> Vec<String> {
    input
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Iterator-style token count, avoiding the intermediate `Vec`.
pub fn token_count(input: &str) -> usize {
    tokens(input).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(tokens("Serial ATA-300"), ["serial", "ata", "300"]);
        assert_eq!(tokens("3.5\" x 1/3H"), ["3", "5", "x", "1", "3", "h"]);
    }

    #[test]
    fn splits_letter_digit_boundaries() {
        assert_eq!(tokens("7200rpm"), ["7200", "rpm"]);
        assert_eq!(tokens("HDT725050VLA360"), ["hdt", "725050", "vla", "360"]);
    }

    #[test]
    fn surface_tokens_keep_mixed_tokens_whole() {
        assert_eq!(surface_tokens("HDT725050VLA360"), ["hdt725050vla360"]);
        assert_eq!(surface_tokens("a--b"), ["a", "b"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokens("").is_empty());
        assert!(tokens("--- / ---").is_empty());
        assert!(surface_tokens("!!!").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokens("Größe"), ["größe"]);
        assert_eq!(tokens("ÉCRAN"), ["écran"]);
    }

    #[test]
    fn token_count_matches_tokens_len() {
        for s in ["", "a b c", "500GB SATA", "Windows Vista"] {
            assert_eq!(token_count(s), tokens(s).len());
        }
    }
}
