//! Word-level tokenization of attribute values and titles.
//!
//! The paper collects "bags of words" over attribute values (Section 3.1,
//! Figure 5c): a value such as `"ATA 100 mb/s"` contributes the tokens
//! `ata`, `100`, `mb`, `s`. We tokenize on any non-alphanumeric boundary,
//! lowercase everything, and additionally split at letter/digit boundaries so
//! that merchant-formatted values like `"500GB"` and catalog values like
//! `"500 GB"` produce comparable token streams.

/// Visit every token of `input` without allocating a `Vec<String>`.
///
/// Tokens are produced in input order, each borrowed from one scratch
/// `String` that is reused between tokens — callers that only need to look
/// at each token (interners, counters, hash lookups) avoid the per-token
/// allocation of [`tokens`].
///
/// ASCII input takes a byte-level fast path (`is_ascii_alphanumeric` /
/// `to_ascii_lowercase`); any non-ASCII byte falls back to the full Unicode
/// path (`char::is_alphanumeric`, the `char::to_lowercase` iterator). Both
/// paths produce identical tokens for ASCII text, since the ASCII subsets of
/// the Unicode predicates coincide with their `ascii` counterparts.
pub fn for_each_token<F: FnMut(&str)>(input: &str, mut f: F) {
    let mut cur = String::new();
    let mut cur_is_digit = false;
    if input.is_ascii() {
        for &b in input.as_bytes() {
            if b.is_ascii_alphanumeric() {
                let is_digit = b.is_ascii_digit();
                if !cur.is_empty() && is_digit != cur_is_digit {
                    f(&cur);
                    cur.clear();
                }
                cur_is_digit = is_digit;
                cur.push(b.to_ascii_lowercase() as char);
            } else if !cur.is_empty() {
                f(&cur);
                cur.clear();
            }
        }
    } else {
        for ch in input.chars() {
            if ch.is_alphanumeric() {
                let is_digit = ch.is_ascii_digit();
                if !cur.is_empty() && is_digit != cur_is_digit {
                    f(&cur);
                    cur.clear();
                }
                cur_is_digit = is_digit;
                for lc in ch.to_lowercase() {
                    cur.push(lc);
                }
            } else if !cur.is_empty() {
                f(&cur);
                cur.clear();
            }
        }
    }
    if !cur.is_empty() {
        f(&cur);
    }
}

/// Tokenize `input` into lowercase alphanumeric tokens.
///
/// Splitting happens at every non-alphanumeric character and at every
/// transition between letters and digits. Empty tokens are never produced.
///
/// ```
/// use pse_text::tokenize::tokens;
/// assert_eq!(tokens("ATA 100 mb/s"), ["ata", "100", "mb", "s"]);
/// assert_eq!(tokens("500GB"), ["500", "gb"]);
/// assert_eq!(tokens("  "), Vec::<String>::new());
/// ```
pub fn tokens(input: &str) -> Vec<String> {
    let mut out = Vec::new();
    for_each_token(input, |t| out.push(t.to_string()));
    out
}

/// Tokenize without splitting at letter/digit boundaries.
///
/// Useful when the caller wants tokens that stay closer to the surface form
/// (e.g. model numbers such as `hdt725050vla360` must remain one token when
/// clustering offers by key attribute).
///
/// ```
/// use pse_text::tokenize::surface_tokens;
/// assert_eq!(surface_tokens("MPN: HDT725050VLA360"), ["mpn", "hdt725050vla360"]);
/// ```
pub fn surface_tokens(input: &str) -> Vec<String> {
    input
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Token count without materializing the tokens.
pub fn token_count(input: &str) -> usize {
    let mut n = 0;
    for_each_token(input, |_| n += 1);
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-fast-path implementation, kept as the reference the ASCII
    /// byte loop must agree with on every input.
    fn tokens_reference(input: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut cur_is_digit = false;
        for ch in input.chars() {
            if ch.is_alphanumeric() {
                let is_digit = ch.is_ascii_digit();
                if !cur.is_empty() && is_digit != cur_is_digit {
                    out.push(std::mem::take(&mut cur));
                }
                cur_is_digit = is_digit;
                for lc in ch.to_lowercase() {
                    cur.push(lc);
                }
            } else if !cur.is_empty() {
                out.push(std::mem::take(&mut cur));
            }
        }
        if !cur.is_empty() {
            out.push(cur);
        }
        out
    }

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(tokens("Serial ATA-300"), ["serial", "ata", "300"]);
        assert_eq!(tokens("3.5\" x 1/3H"), ["3", "5", "x", "1", "3", "h"]);
    }

    #[test]
    fn splits_letter_digit_boundaries() {
        assert_eq!(tokens("7200rpm"), ["7200", "rpm"]);
        assert_eq!(tokens("HDT725050VLA360"), ["hdt", "725050", "vla", "360"]);
    }

    #[test]
    fn surface_tokens_keep_mixed_tokens_whole() {
        assert_eq!(surface_tokens("HDT725050VLA360"), ["hdt725050vla360"]);
        assert_eq!(surface_tokens("a--b"), ["a", "b"]);
    }

    #[test]
    fn empty_and_symbol_only_inputs() {
        assert!(tokens("").is_empty());
        assert!(tokens("--- / ---").is_empty());
        assert!(surface_tokens("!!!").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokens("Größe"), ["größe"]);
        assert_eq!(tokens("ÉCRAN"), ["écran"]);
    }

    #[test]
    fn unicode_digits_do_not_split_like_ascii_digits() {
        // U+0661 ARABIC-INDIC ONE is alphanumeric but not an ASCII digit:
        // both paths must agree it glues to letters.
        assert_eq!(tokens("ab٣cd"), tokens_reference("ab٣cd"));
        // German sharp s uppercases/lowercases asymmetrically.
        assert_eq!(tokens("GROẞE Straße 22"), tokens_reference("GROẞE Straße 22"));
    }

    #[test]
    fn ascii_fast_path_matches_reference() {
        for s in [
            "",
            "Serial ATA-300",
            "3.5\" x 1/3H",
            "HDT725050VLA360",
            "500GB SATA 7200rpm",
            "--- / ---",
            "a1b2c3",
            "MiXeD CaSe 42X",
        ] {
            assert!(s.is_ascii());
            assert_eq!(tokens(s), tokens_reference(s), "input {s:?}");
        }
    }

    #[test]
    fn mixed_ascii_unicode_boundaries() {
        // Non-ASCII input exercises the Unicode path; the split points around
        // the multi-byte chars must not shift.
        assert_eq!(tokens("écran500GB"), tokens_reference("écran500GB"));
        assert_eq!(tokens("größe-42µm"), tokens_reference("größe-42µm"));
        assert_eq!(tokens("日本語 500GB"), tokens_reference("日本語 500GB"));
    }

    #[test]
    fn for_each_token_matches_tokens() {
        for s in ["", "a b c", "500GB SATA", "Größe 42µ", "x9y"] {
            let mut seen = Vec::new();
            for_each_token(s, |t| seen.push(t.to_string()));
            assert_eq!(seen, tokens(s));
        }
    }

    #[test]
    fn token_count_matches_tokens_len() {
        for s in ["", "a b c", "500GB SATA", "Windows Vista", "Größe 42"] {
            assert_eq!(token_count(s), tokens(s).len());
        }
    }
}
