//! Distributional-similarity measures: Kullback–Leibler divergence,
//! Jensen–Shannon divergence, and the Jaccard coefficient.
//!
//! These are the two measures that Lee (COLING '99) found best for synonym
//! detection and that the paper adopts as classifier features (Table 1):
//!
//! * `JS(p_A ‖ p_B) = ½ KL(p_A ‖ p_M) + ½ KL(p_B ‖ p_M)` with
//!   `p_M = ½ p_A + ½ p_B`;
//! * `J(A, B) = |A ∩ B| / |A ∪ B|` over the distinct-token sets.
//!
//! All logarithms are natural, so the JS divergence of two distributions with
//! disjoint support is `ln 2`, the maximum ([`MAX_JS`]).

use crate::bow::BagOfWords;

/// Maximum possible Jensen–Shannon divergence (natural log): `ln 2`.
pub const MAX_JS: f64 = std::f64::consts::LN_2;

/// Kullback–Leibler divergence `KL(p ‖ q)` between two empirical
/// distributions given as bags of words.
///
/// Terms with `p(t) = 0` contribute nothing. The caller must guarantee
/// `q(t) > 0` wherever `p(t) > 0` (true by construction when `q` is the
/// average distribution of `p` and another bag); otherwise the result is
/// `f64::INFINITY`.
///
/// Caller audit (see the `finite_features` regression test in
/// `pse-synthesis`): no pipeline feature path calls this function —
/// [`jensen_shannon`] computes its mixture terms inline and clamps to
/// `[0, MAX_JS]`, so classifier features stay finite even for bags with
/// disjoint or empty support. Any new caller must uphold the `q(t) > 0`
/// contract itself or handle the `INFINITY` sentinel.
pub fn kullback_leibler(p: &BagOfWords, q: &BagOfWords) -> f64 {
    let mut sum = 0.0;
    for (t, _) in p.iter() {
        let pt = p.probability(t);
        let qt = q.probability(t);
        if pt > 0.0 {
            if qt <= 0.0 {
                return f64::INFINITY;
            }
            sum += pt * (pt / qt).ln();
        }
    }
    sum
}

/// Jensen–Shannon divergence between the empirical distributions of two bags.
///
/// Returns a value in `[0, ln 2]`. By convention, the divergence involving an
/// empty bag is the maximum `ln 2` (an attribute with no observed values
/// carries no evidence of similarity); two empty bags also yield `ln 2`.
///
/// ```
/// use pse_text::{BagOfWords, jensen_shannon};
/// let speed = BagOfWords::from_values(["5400", "7200", "5400", "7200"]);
/// let rpm = BagOfWords::from_values(["5400", "7200", "5400", "7200"]);
/// assert!(jensen_shannon(&speed, &rpm) < 1e-12); // identical distributions
/// ```
pub fn jensen_shannon(a: &BagOfWords, b: &BagOfWords) -> f64 {
    if a.is_empty() || b.is_empty() {
        return MAX_JS;
    }
    // p_M(t) = (p_A(t) + p_B(t)) / 2, computed on the fly over the union of
    // supports. Only tokens in A's (resp. B's) support contribute to the KL
    // terms, so iterating each bag once suffices.
    let mut js = 0.0;
    for (t, _) in a.iter() {
        let pa = a.probability(t);
        let pm = 0.5 * (pa + b.probability(t));
        js += 0.5 * pa * (pa / pm).ln();
    }
    for (t, _) in b.iter() {
        let pb = b.probability(t);
        let pm = 0.5 * (a.probability(t) + pb);
        js += 0.5 * pb * (pb / pm).ln();
    }
    // Numerical noise can push the sum a hair outside the closed interval.
    js.clamp(0.0, MAX_JS)
}

/// Jaccard coefficient over the *distinct token sets* of two bags:
/// `|A ∩ B| / |A ∪ B|`. Two empty bags yield 0 (no shared evidence).
///
/// ```
/// use pse_text::{BagOfWords, jaccard_bags};
/// let a = BagOfWords::from_values(["ata 100 ide 133"]);
/// let b = BagOfWords::from_values(["ata 100"]);
/// assert!((jaccard_bags(&a, &b) - 0.5).abs() < 1e-12);
/// ```
pub fn jaccard_bags(a: &BagOfWords, b: &BagOfWords) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let (small, large) = if a.distinct() <= b.distinct() { (a, b) } else { (b, a) };
    let intersection = small.token_set().filter(|t| large.count(t) > 0).count();
    let union = a.distinct() + b.distinct() - intersection;
    intersection as f64 / union as f64
}

/// L1 (Manhattan) distance between the empirical distributions of two
/// bags, in `[0, 2]` — one of the alternative measures Lee (COLING '99)
/// compared before settling on JS divergence and Jaccard. By convention an
/// empty bag is maximally distant (2.0).
pub fn l1_distance(a: &BagOfWords, b: &BagOfWords) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 2.0;
    }
    let mut sum = 0.0;
    for (t, _) in a.iter() {
        sum += (a.probability(t) - b.probability(t)).abs();
    }
    for (t, _) in b.iter() {
        if a.count(t) == 0 {
            sum += b.probability(t);
        }
    }
    sum.clamp(0.0, 2.0)
}

/// Cosine similarity between the empirical probability vectors of two
/// bags, in `[0, 1]`. Another of Lee's candidate measures; empty bags have
/// zero similarity.
pub fn cosine_bags(a: &BagOfWords, b: &BagOfWords) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0;
    let (small, large) = if a.distinct() <= b.distinct() { (a, b) } else { (b, a) };
    for (t, _) in small.iter() {
        dot += small.probability(t) * large.probability(t);
    }
    let norm = |x: &BagOfWords| x.iter().map(|(t, _)| x.probability(t).powi(2)).sum::<f64>().sqrt();
    (dot / (norm(a) * norm(b))).clamp(0.0, 1.0)
}

/// Jaccard coefficient over two explicit sets of items.
pub fn jaccard_sets<T: Eq + std::hash::Hash>(
    a: &std::collections::HashSet<T>,
    b: &std::collections::HashSet<T>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let intersection = a.intersection(b).count();
    let union = a.len() + b.len() - intersection;
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(vals: &[&str]) -> BagOfWords {
        BagOfWords::from_values(vals.iter().copied())
    }

    #[test]
    fn js_identical_is_zero() {
        let a = bag(&["5400", "7200", "5400", "7200"]);
        assert!(jensen_shannon(&a, &a) < 1e-12);
    }

    #[test]
    fn js_disjoint_is_ln2() {
        let a = bag(&["alpha beta"]);
        let b = bag(&["gamma delta"]);
        assert!((jensen_shannon(&a, &b) - MAX_JS).abs() < 1e-12);
    }

    #[test]
    fn js_is_symmetric() {
        let a = bag(&["ata 100", "ide 133", "ide 133", "ata 133"]);
        let b = bag(&["ata 100 mb s", "ide 133 mb s", "ide 133 mb s", "ata 133 mb s"]);
        let d1 = jensen_shannon(&a, &b);
        let d2 = jensen_shannon(&b, &a);
        assert!((d1 - d2).abs() < 1e-12);
        assert!(d1 > 0.0 && d1 < MAX_JS);
    }

    #[test]
    fn paper_figure5_ordering() {
        // Figure 5(c)/(d): Interface should be closer to "Int. Type" than to
        // RPM, and Speed/RPM should be identical.
        let interface = bag(&["ATA, 100", "IDE, 133", "IDE, 133", "ATA, 133"]);
        let int_type =
            bag(&["ATA, 100, mb/s", "IDE, 133, mb/s", "IDE, 133, mb/s", "ATA, 133, mb/s"]);
        let speed = bag(&["5400", "7200", "5400", "7200"]);
        let rpm = bag(&["5400", "7200", "5400", "7200"]);

        assert!(jensen_shannon(&speed, &rpm) < 1e-12);
        let close = jensen_shannon(&interface, &int_type);
        let far = jensen_shannon(&interface, &rpm);
        assert!(close < far, "close={close} far={far}");
        assert!((far - MAX_JS).abs() < 1e-9); // disjoint supports
    }

    #[test]
    fn js_empty_bag_is_max() {
        let a = bag(&["x"]);
        let e = BagOfWords::new();
        assert_eq!(jensen_shannon(&a, &e), MAX_JS);
        assert_eq!(jensen_shannon(&e, &e), MAX_JS);
    }

    #[test]
    fn kl_zero_for_identical() {
        let a = bag(&["x y z x"]);
        assert!(kullback_leibler(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn kl_infinite_when_support_not_covered() {
        let p = bag(&["x"]);
        let q = bag(&["y"]);
        assert!(kullback_leibler(&p, &q).is_infinite());
    }

    #[test]
    fn jaccard_basics() {
        let a = bag(&["ata 100 ide"]);
        let b = bag(&["ata ide scsi"]);
        // intersection {ata, ide}=2, union {ata,100,ide,scsi}=4
        assert!((jaccard_bags(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard_bags(&a, &BagOfWords::new()), 0.0);
        assert!((jaccard_bags(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn l1_distance_bounds_and_identity() {
        let a = bag(&["ata 100", "ide 133"]);
        let b = bag(&["scsi 320"]);
        assert!(l1_distance(&a, &a).abs() < 1e-12);
        assert!((l1_distance(&a, &b) - 2.0).abs() < 1e-12, "disjoint = max");
        assert_eq!(l1_distance(&a, &BagOfWords::new()), 2.0);
        let c = bag(&["ata 100", "ide 999"]);
        let d = l1_distance(&a, &c);
        assert!(d > 0.0 && d < 2.0);
        assert!((d - l1_distance(&c, &a)).abs() < 1e-12, "symmetry");
    }

    #[test]
    fn cosine_bags_bounds_and_identity() {
        let a = bag(&["ata 100", "ide 133"]);
        let b = bag(&["scsi 320"]);
        assert!((cosine_bags(&a, &a) - 1.0).abs() < 1e-9);
        assert_eq!(cosine_bags(&a, &b), 0.0);
        assert_eq!(cosine_bags(&a, &BagOfWords::new()), 0.0);
        let c = bag(&["ata 100", "ide 999"]);
        let s = cosine_bags(&a, &c);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn jaccard_sets_basics() {
        use std::collections::HashSet;
        let a: HashSet<&str> = ["a", "b"].into_iter().collect();
        let b: HashSet<&str> = ["b", "c"].into_iter().collect();
        assert!((jaccard_sets(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        let e: HashSet<&str> = HashSet::new();
        assert_eq!(jaccard_sets(&e, &e), 0.0);
    }
}
