//! Classical string-similarity measures.
//!
//! These back the baseline matchers of Section 5: COMA++'s name matchers use
//! normalized edit distance and trigram similarity; DUMAS's SoftTFIDF uses
//! Jaro–Winkler as its inner character-level measure.

/// Levenshtein edit distance between two strings (unit costs), computed over
/// Unicode scalar values with a single rolling row — O(|a|·|b|) time,
/// O(min(|a|,|b|)) space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    if short.is_empty() {
        return long.len();
    }
    let mut row: Vec<usize> = (0..=short.len()).collect();
    for (i, &lc) in long.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            let next = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = next;
        }
    }
    row[short.len()]
}

/// Normalized edit-distance similarity in `[0, 1]`:
/// `1 - lev(a, b) / max(|a|, |b|)`. Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Reusable buffers for [`jaro`] / [`jaro_winkler`] in hot loops. A fresh
/// computation needs four heap allocations; callers scoring many pairs (e.g.
/// the SoftTFIDF memo) hold one scratch and amortize them away.
#[derive(Debug, Default)]
pub struct JaroScratch {
    a: Vec<char>,
    b: Vec<char>,
    b_matched: Vec<bool>,
    a_match_idx: Vec<usize>,
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    jaro_with(&mut JaroScratch::default(), a, b)
}

/// [`jaro`] with caller-provided scratch buffers.
pub fn jaro_with(s: &mut JaroScratch, a: &str, b: &str) -> f64 {
    s.a.clear();
    s.a.extend(a.chars());
    s.b.clear();
    s.b.extend(b.chars());
    let (a, b) = (&s.a, &s.b);
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    s.b_matched.clear();
    s.b_matched.resize(b.len(), false);
    let b_matched = &mut s.b_matched;
    let mut matches = 0usize;
    s.a_match_idx.clear();
    let a_match_idx = &mut s.a_match_idx;
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_match_idx.push(j);
                matches += 1;
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    // Count transpositions between the matched sequences: a_match_idx holds
    // the matched b-positions in a-order; walking b_matched's set positions
    // yields the same positions in ascending (b-) order. Half-transpositions
    // are indices where the two orders differ.
    let mut transpositions = 0usize;
    let mut in_b_order = b_matched.iter().enumerate().filter(|&(_, &m)| m).map(|(j, _)| j);
    for &j in a_match_idx.iter() {
        if in_b_order.next() != Some(j) {
            transpositions += 1;
        }
    }
    let t = transpositions as f64 / 2.0;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard scaling factor 0.1 and prefix
/// length capped at 4.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(&mut JaroScratch::default(), a, b)
}

/// [`jaro_winkler`] with caller-provided scratch buffers.
pub fn jaro_winkler_with(s: &mut JaroScratch, a: &str, b: &str) -> f64 {
    let j = jaro_with(s, a, b);
    let prefix = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// The multiset of character `n`-grams of `s` (over a lowercased, padded
/// form). Padding with `n - 1` boundary markers gives edge grams weight,
/// matching common schema-matcher implementations.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n > 0, "n-gram size must be positive");
    if s.is_empty() {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::repeat_n('\u{1}', n - 1)
        .chain(s.to_lowercase().chars())
        .chain(std::iter::repeat_n('\u{1}', n - 1))
        .collect();
    if padded.len() < n {
        return Vec::new();
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// Dice coefficient over character trigram multisets — COMA++'s "Trigram"
/// name matcher. Returns a value in `[0, 1]`.
pub fn trigram_dice(a: &str, b: &str) -> f64 {
    let ga = char_ngrams(a, 3);
    let gb = char_ngrams(b, 3);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut counts = std::collections::HashMap::new();
    for g in &ga {
        *counts.entry(g.as_str()).or_insert(0i64) += 1;
    }
    let mut shared = 0i64;
    for g in &gb {
        if let Some(c) = counts.get_mut(g.as_str()) {
            if *c > 0 {
                *c -= 1;
                shared += 1;
            }
        }
    }
    2.0 * shared as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("a", "b"), 0.0);
        let s = levenshtein_similarity("capacity", "capacities");
        assert!((s - 0.7).abs() < 1e-12, "lev(capacity, capacities)=3, max len 10");
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.944_444).abs() < 1e-5);
        assert!((jaro("dixon", "dicksonx") - 0.766_667).abs() < 1e-5);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler("martha", "marhta") - 0.961_111).abs() < 1e-5);
        assert!((jaro_winkler("dixon", "dicksonx") - 0.813_333).abs() < 1e-5);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn jaro_winkler_is_at_least_jaro() {
        for (a, b) in [("speed", "spend"), ("rpm", "rotation"), ("x", "y")] {
            assert!(jaro_winkler(a, b) >= jaro(a, b) - 1e-12);
        }
    }

    #[test]
    fn trigram_dice_basics() {
        assert_eq!(trigram_dice("", ""), 1.0);
        assert_eq!(trigram_dice("abc", ""), 0.0);
        assert!((trigram_dice("night", "night") - 1.0).abs() < 1e-12);
        let s = trigram_dice("memory technology", "graphic technology");
        assert!(s > 0.3 && s < 0.9, "s={s}");
    }

    #[test]
    fn ngrams_padding() {
        let g = char_ngrams("ab", 3);
        // padded: # # a b # # -> 4 trigrams
        assert_eq!(g.len(), 4);
        assert!(char_ngrams("", 3).is_empty());
    }
}
