//! Bags of words over attribute values.
//!
//! Section 3.1 of the paper: *"We use a bag of words to collect the values of
//! each attribute in catalog products as well as for merchant offer
//! specifications."* A bag records how often each token occurs; dividing by
//! the total yields the empirical distribution `p_A(t)` that feeds the
//! Jensen–Shannon divergence feature.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::tokenize::tokens;

/// A multiset of tokens with cheap insertion and total-count tracking.
///
/// Backed by a `BTreeMap` so iteration is in sorted token order: the
/// floating-point sums computed over bags (JS divergence, TF-IDF cosines)
/// accumulate in a fixed order, which makes every score bit-reproducible
/// across runs and thread counts. A `HashMap` would randomize summation
/// order per bag instance and leak last-bit differences into scores.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BagOfWords {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl BagOfWords {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a bag from an iterator of raw (untokenized) values.
    pub fn from_values<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut bag = Self::new();
        for v in values {
            bag.add_value(v.as_ref());
        }
        bag
    }

    /// Tokenize `value` and add every token to the bag.
    pub fn add_value(&mut self, value: &str) {
        for t in tokens(value) {
            self.add_token(t);
        }
    }

    /// Add a single (already-normalized) token.
    pub fn add_token(&mut self, token: String) {
        *self.counts.entry(token).or_insert(0) += 1;
        self.total += 1;
    }

    /// Merge another bag into this one.
    pub fn merge(&mut self, other: &BagOfWords) {
        for (t, c) in &other.counts {
            *self.counts.entry(t.clone()).or_insert(0) += c;
        }
        self.total += other.total;
    }

    /// Number of occurrences of `token`.
    pub fn count(&self, token: &str) -> u64 {
        self.counts.get(token).copied().unwrap_or(0)
    }

    /// Total number of token occurrences (with multiplicity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct tokens.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether the bag holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Empirical probability of `token`: count / total. Zero for an empty bag.
    pub fn probability(&self, token: &str) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(token) as f64 / self.total as f64
        }
    }

    /// Iterate over `(token, count)` pairs in sorted token order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(t, c)| (t.as_str(), *c))
    }

    /// The set of distinct tokens, for Jaccard-style comparisons.
    pub fn token_set(&self) -> impl Iterator<Item = &str> {
        self.counts.keys().map(|s| s.as_str())
    }
}

impl<S: AsRef<str>> FromIterator<S> for BagOfWords {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        Self::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_totals() {
        let bag = BagOfWords::from_values(["ATA 100", "IDE 133", "IDE 133", "ATA 133"]);
        assert_eq!(bag.count("ata"), 2);
        assert_eq!(bag.count("ide"), 2);
        assert_eq!(bag.count("133"), 3);
        assert_eq!(bag.count("100"), 1);
        assert_eq!(bag.total(), 8);
        assert_eq!(bag.distinct(), 4);
    }

    #[test]
    fn probability_sums_to_one() {
        let bag = BagOfWords::from_values(["5400", "7200", "5400", "7200"]);
        let sum: f64 = bag.iter().map(|(t, _)| bag.probability(t)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bag_probability_is_zero() {
        let bag = BagOfWords::new();
        assert!(bag.is_empty());
        assert_eq!(bag.probability("x"), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = BagOfWords::from_values(["x y"]);
        let b = BagOfWords::from_values(["y z"]);
        a.merge(&b);
        assert_eq!(a.count("x"), 1);
        assert_eq!(a.count("y"), 2);
        assert_eq!(a.count("z"), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn from_iterator_collects() {
        let bag: BagOfWords = ["a", "b", "a"].into_iter().collect();
        assert_eq!(bag.count("a"), 2);
    }
}
