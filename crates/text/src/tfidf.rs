//! TF-IDF weighting and cosine similarity over token bags.
//!
//! Used by the COMA++-style instance matcher (documents = attribute value
//! corpora) and as the corpus-statistics backbone of [`crate::softtfidf`].

use std::collections::{BTreeMap, HashMap};

use crate::bow::BagOfWords;
use crate::intern::{Interner, Sym};
use crate::sparse::{SparseCounts, SparseVec};

/// Corpus-level document-frequency statistics for IDF computation.
///
/// A "document" is whatever unit the caller chooses — for attribute matching
/// it is the full value corpus of one attribute.
#[derive(Debug, Clone, Default)]
pub struct TfIdfCorpus {
    doc_freq: HashMap<String, u32>,
    num_docs: u32,
}

impl TfIdfCorpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one document given as a bag of tokens. Each distinct token
    /// increments its document frequency once.
    pub fn add_document(&mut self, bag: &BagOfWords) {
        self.num_docs += 1;
        for t in bag.token_set() {
            *self.doc_freq.entry(t.to_string()).or_insert(0) += 1;
        }
    }

    /// Number of registered documents.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Smoothed inverse document frequency:
    /// `ln((1 + N) / (1 + df)) + 1`, always positive.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.doc_freq.get(token).copied().unwrap_or(0);
        (((1 + self.num_docs) as f64) / ((1 + df) as f64)).ln() + 1.0
    }

    /// TF-IDF vector of a bag, as a token → weight map (tf is the raw count,
    /// i.e. classic `tf·idf`), L2-normalized. Empty bags yield empty vectors.
    ///
    /// The map is a `BTreeMap` so the norm and dot-product sums below always
    /// accumulate in sorted token order — similarity scores are
    /// bit-reproducible across runs and thread counts.
    pub fn weight_vector(&self, bag: &BagOfWords) -> BTreeMap<String, f64> {
        let mut v: BTreeMap<String, f64> =
            bag.iter().map(|(t, c)| (t.to_string(), c as f64 * self.idf(t))).collect();
        let norm = v.values().map(|w| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for w in v.values_mut() {
                *w /= norm;
            }
        }
        v
    }

    /// Cosine similarity between the TF-IDF vectors of two bags, in `[0, 1]`.
    pub fn cosine(&self, a: &BagOfWords, b: &BagOfWords) -> f64 {
        let va = self.weight_vector(a);
        let vb = self.weight_vector(b);
        cosine_of(&va, &vb)
    }
}

/// Cosine similarity of two sparse, already-normalized vectors.
pub fn cosine_of(a: &BTreeMap<String, f64>, b: &BTreeMap<String, f64>) -> f64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let dot: f64 = small.iter().filter_map(|(t, wa)| large.get(t).map(|wb| wa * wb)).sum();
    dot.clamp(0.0, 1.0)
}

/// Document-frequency accumulator for an [`InternedCorpus`].
///
/// Works on *provisional* ids from an [`crate::intern::InternerBuilder`], so
/// documents can be registered while the vocabulary is still growing;
/// [`InternedCorpusBuilder::finalize`] remaps the statistics onto the frozen
/// symbol table.
#[derive(Debug, Default)]
pub struct InternedCorpusBuilder {
    doc_freq: Vec<u32>,
    num_docs: u32,
    scratch: Vec<u32>,
}

impl InternedCorpusBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one document given as provisional token ids (duplicates
    /// allowed; each distinct token counts once, like
    /// [`TfIdfCorpus::add_document`] over a bag's token set).
    pub fn add_document(&mut self, provisional: impl IntoIterator<Item = u32>) {
        self.num_docs += 1;
        self.scratch.clear();
        self.scratch.extend(provisional);
        self.scratch.sort_unstable();
        self.scratch.dedup();
        for &id in &self.scratch {
            if self.doc_freq.len() <= id as usize {
                self.doc_freq.resize(id as usize + 1, 0);
            }
            self.doc_freq[id as usize] += 1;
        }
    }

    /// Remap the accumulated statistics onto the finalized symbol table.
    pub fn finalize(self, interner: &Interner) -> InternedCorpus {
        let mut doc_freq = vec![0u32; interner.len()];
        for (prov, &df) in self.doc_freq.iter().enumerate() {
            doc_freq[interner.sym(prov as u32).0 as usize] = df;
        }
        InternedCorpus::from_doc_freq(doc_freq, self.num_docs)
    }
}

/// Interned counterpart of [`TfIdfCorpus`]: document frequencies indexed by
/// [`Sym`]. Weight vectors computed here are bit-identical to
/// [`TfIdfCorpus::weight_vector`] over the same documents, because sorted
/// symbol order equals sorted token order (see [`crate::intern`]).
#[derive(Debug, Clone, Default)]
pub struct InternedCorpus {
    doc_freq: Vec<u32>,
    num_docs: u32,
    /// IDF indexed by document frequency. `df` never exceeds `num_docs`, so
    /// this table (`num_docs + 1` entries) replaces a `ln` call per token
    /// with a lookup — the table entry is computed by the exact expression
    /// [`InternedCorpus::idf_of_df`] uses, so weights are unchanged.
    idf_by_df: Vec<f64>,
}

impl InternedCorpus {
    /// Build directly from document frequencies indexed by final [`Sym`]
    /// (callers that tally `df` over already-finalized bags, e.g. one corpus
    /// per scoring group over a shared category vocabulary).
    pub fn from_doc_freq(doc_freq: Vec<u32>, num_docs: u32) -> Self {
        let idf_by_df = (0..=num_docs)
            .map(|df| (((1 + num_docs) as f64) / ((1 + df) as f64)).ln() + 1.0)
            .collect();
        Self { doc_freq, num_docs, idf_by_df }
    }

    /// Number of registered documents.
    pub fn num_docs(&self) -> u32 {
        self.num_docs
    }

    /// Document frequency of a symbol.
    pub fn doc_freq(&self, s: Sym) -> u32 {
        self.doc_freq.get(s.0 as usize).copied().unwrap_or(0)
    }

    /// Smoothed IDF of a symbol — the same formula as [`TfIdfCorpus::idf`].
    pub fn idf(&self, s: Sym) -> f64 {
        self.idf_of_df(self.doc_freq(s))
    }

    /// IDF for an explicit document frequency (used for out-of-vocabulary
    /// query tokens, where `df = 0`).
    pub fn idf_of_df(&self, df: u32) -> f64 {
        match self.idf_by_df.get(df as usize) {
            Some(&idf) => idf,
            None => (((1 + self.num_docs) as f64) / ((1 + df) as f64)).ln() + 1.0,
        }
    }

    /// L2-normalized TF-IDF vector of a count multiset. The norm accumulates
    /// over entries in ascending symbol (= token) order, matching
    /// [`TfIdfCorpus::weight_vector`]'s sorted-map iteration bit-for-bit.
    pub fn weight_counts(&self, counts: &SparseCounts) -> SparseVec {
        let mut entries: Vec<(Sym, f64)> =
            counts.entries().iter().map(|&(s, c)| (s, c as f64 * self.idf(s))).collect();
        let norm = entries.iter().map(|&(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut entries {
                *w /= norm;
            }
        }
        SparseVec::from_sorted(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bag(s: &str) -> BagOfWords {
        BagOfWords::from_values([s])
    }

    #[test]
    fn idf_decreases_with_frequency() {
        let mut corpus = TfIdfCorpus::new();
        corpus.add_document(&bag("common rare1"));
        corpus.add_document(&bag("common rare2"));
        corpus.add_document(&bag("common rare3"));
        assert!(corpus.idf("common") < corpus.idf("rare1"));
        assert!(corpus.idf("unseen") >= corpus.idf("rare1"));
    }

    #[test]
    fn cosine_identity_and_disjoint() {
        let mut corpus = TfIdfCorpus::new();
        let a = bag("seagate barracuda 5400");
        let b = bag("western digital raptor");
        corpus.add_document(&a);
        corpus.add_document(&b);
        assert!((corpus.cosine(&a, &a) - 1.0).abs() < 1e-9);
        assert_eq!(corpus.cosine(&a, &b), 0.0);
    }

    #[test]
    fn cosine_partial_overlap_between_zero_and_one() {
        let mut corpus = TfIdfCorpus::new();
        let a = bag("ata 100 ide 133");
        let b = bag("ata 100 mb s");
        corpus.add_document(&a);
        corpus.add_document(&b);
        let c = corpus.cosine(&a, &b);
        assert!(c > 0.0 && c < 1.0, "c={c}");
    }

    #[test]
    fn empty_bags_have_zero_cosine() {
        let corpus = TfIdfCorpus::new();
        assert_eq!(corpus.cosine(&BagOfWords::new(), &bag("x")), 0.0);
    }
}
