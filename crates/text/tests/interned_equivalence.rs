//! Old-vs-new equivalence for the interned text fast path.
//!
//! Every interned kernel (sparse divergences, TF-IDF weighting and cosine,
//! SoftTFIDF) must reproduce its string-path reference **bit-for-bit** on
//! arbitrary inputs — including non-ASCII values and values that tokenize
//! to nothing. The scoring pipeline's outputs are compared as exact `f64`
//! bit patterns, never with tolerances: the fast path is an optimization,
//! not an approximation.

use proptest::prelude::*;
use pse_text::divergence::{cosine_bags, jaccard_bags, jensen_shannon, l1_distance};
use pse_text::sparse::{
    cosine_counts, cosine_sparse, jaccard_counts, jensen_shannon_counts, l1_counts, SparseCounts,
};
use pse_text::tfidf::{cosine_of, InternedCorpusBuilder, TfIdfCorpus};
use pse_text::tokenize::tokens;
use pse_text::{BagOfWords, InternedSoftTfIdf, Interner, InternerBuilder, JwMemo, SoftTfIdf};

/// Attribute-value-ish strings: alphanumerics, separators, some non-ASCII
/// (including uppercase forms that lowercase to multi-char sequences), and
/// symbol-only values that tokenize to nothing.
fn value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9éÉßµü /\\-\\.]{0,14}"
}

fn values() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(value(), 0..6)
}

/// Intern both value lists under one vocabulary; return the interned counts
/// and the reference bags.
fn counts_pair(
    a: &[String],
    b: &[String],
) -> (Interner, SparseCounts, SparseCounts, BagOfWords, BagOfWords) {
    let mut builder = InternerBuilder::new();
    let ra: Vec<Vec<u32>> = a.iter().map(|v| builder.tokenize(v)).collect();
    let rb: Vec<Vec<u32>> = b.iter().map(|v| builder.tokenize(v)).collect();
    let interner = builder.finalize();
    let mut ca = SparseCounts::new();
    for r in &ra {
        ca.add_doc(&interner.doc(r));
    }
    let mut cb = SparseCounts::new();
    for r in &rb {
        cb.add_doc(&interner.doc(r));
    }
    let ba = BagOfWords::from_values(a.iter().map(String::as_str));
    let bb = BagOfWords::from_values(b.iter().map(String::as_str));
    (interner, ca, cb, ba, bb)
}

proptest! {
    /// The divergence kernels over interned counts are bit-identical to the
    /// string-bag references.
    #[test]
    fn divergences_bit_match_string_path(a in values(), b in values()) {
        let (_, ca, cb, ba, bb) = counts_pair(&a, &b);
        prop_assert_eq!(
            jensen_shannon_counts(&ca, &cb).to_bits(),
            jensen_shannon(&ba, &bb).to_bits()
        );
        prop_assert_eq!(jaccard_counts(&ca, &cb).to_bits(), jaccard_bags(&ba, &bb).to_bits());
        prop_assert_eq!(l1_counts(&ca, &cb).to_bits(), l1_distance(&ba, &bb).to_bits());
        prop_assert_eq!(cosine_counts(&ca, &cb).to_bits(), cosine_bags(&ba, &bb).to_bits());
    }

    /// Interned TF-IDF weighting + sparse cosine are bit-identical to the
    /// `BTreeMap<String, f64>` path, with the same corpus statistics.
    #[test]
    fn tfidf_cosine_bit_matches_string_path(
        docs in prop::collection::vec(values(), 0..4),
        a in values(),
        b in values(),
    ) {
        // String side.
        let mut corpus = TfIdfCorpus::new();
        for d in &docs {
            corpus.add_document(&BagOfWords::from_values(d.iter().map(String::as_str)));
        }
        let ba = BagOfWords::from_values(a.iter().map(String::as_str));
        let bb = BagOfWords::from_values(b.iter().map(String::as_str));
        // Interned side, same documents.
        let mut builder = InternerBuilder::new();
        let mut cb = InternedCorpusBuilder::new();
        for d in &docs {
            let mut doc_ids = Vec::new();
            for v in d {
                doc_ids.extend(builder.tokenize(v));
            }
            cb.add_document(doc_ids);
        }
        let ra: Vec<Vec<u32>> = a.iter().map(|v| builder.tokenize(v)).collect();
        let rb: Vec<Vec<u32>> = b.iter().map(|v| builder.tokenize(v)).collect();
        let interner = builder.finalize();
        let icorpus = cb.finalize(&interner);
        let mut counts_a = SparseCounts::new();
        for r in &ra {
            counts_a.add_doc(&interner.doc(r));
        }
        let mut counts_b = SparseCounts::new();
        for r in &rb {
            counts_b.add_doc(&interner.doc(r));
        }
        let va = icorpus.weight_counts(&counts_a);
        let vb = icorpus.weight_counts(&counts_b);
        // The weight vectors are entry-wise bit-identical...
        let sva = corpus.weight_vector(&ba);
        prop_assert_eq!(va.len(), sva.len());
        for (&(s, w), (t, sw)) in va.entries().iter().zip(sva.iter()) {
            prop_assert_eq!(interner.resolve(s), t.as_str());
            prop_assert_eq!(w.to_bits(), sw.to_bits());
        }
        // ...and so is the cosine.
        let l = cosine_sparse(&va, &vb);
        let r = cosine_of(&sva, &corpus.weight_vector(&bb));
        if l.to_bits() != r.to_bits() {
            eprintln!("DOCS={:?} A={:?} B={:?} l={} r={}", docs, a, b, l, r);
        }
        prop_assert_eq!(l.to_bits(), r.to_bits());
    }

    /// Interned SoftTFIDF (pre-weighted docs + Jaro–Winkler memo) is
    /// bit-identical to the per-call string implementation.
    #[test]
    fn softtfidf_bit_matches_string_path(
        docs in prop::collection::vec(value(), 0..5),
        a in value(),
        b in value(),
        theta_idx in 0usize..4,
    ) {
        let theta = [0.0f64, 0.8, 0.9, 1.0][theta_idx];
        let mut corpus = TfIdfCorpus::new();
        for d in &docs {
            corpus.add_document(&BagOfWords::from_values([d.as_str()]));
        }
        let soft = SoftTfIdf::with_theta(corpus, theta);

        let mut builder = InternerBuilder::new();
        let mut cb = InternedCorpusBuilder::new();
        for d in &docs {
            cb.add_document(builder.tokenize(d));
        }
        let ra = builder.tokenize(&a);
        let rb = builder.tokenize(&b);
        let interner = builder.finalize();
        let icorpus = cb.finalize(&interner);
        let isoft = InternedSoftTfIdf::new(interner, icorpus, theta);
        let da = isoft.doc(&ra);
        let db = isoft.doc(&rb);
        let mut memo = JwMemo::new();
        // Twice: the second call answers from the memo and must not drift.
        let first = isoft.similarity(&da, &db, &mut memo);
        let second = isoft.similarity(&da, &db, &mut memo);
        prop_assert_eq!(first.to_bits(), soft.similarity(&a, &b).to_bits());
        prop_assert_eq!(first.to_bits(), second.to_bits());
    }

    /// Interning then resolving is the identity on token streams, and the
    /// finalized symbol order is the lexicographic token order regardless of
    /// insertion order.
    #[test]
    fn interner_is_order_independent(a in values(), b in values()) {
        let mut fwd = InternerBuilder::new();
        let fwd_raw: Vec<Vec<u32>> = a.iter().chain(&b).map(|v| fwd.tokenize(v)).collect();
        let fwd_interner = fwd.finalize();
        let mut rev = InternerBuilder::new();
        let rev_raw: Vec<Vec<u32>> = b.iter().chain(&a).map(|v| rev.tokenize(v)).collect();
        let rev_interner = rev.finalize();
        // Same vocabulary, same Sym numbering, despite reversed insertion.
        prop_assert_eq!(fwd_interner.len(), rev_interner.len());
        // Round-trip: resolve(doc(tokenize(v))) == tokens(v), in order.
        for (v, raw) in a.iter().chain(&b).zip(&fwd_raw) {
            let doc = fwd_interner.doc(raw);
            let resolved: Vec<&str> =
                doc.syms().iter().map(|&s| fwd_interner.resolve(s)).collect();
            let expect = tokens(v);
            let expect: Vec<&str> = expect.iter().map(String::as_str).collect();
            prop_assert_eq!(resolved, expect);
        }
        // The reversed-insertion interner assigns the same Sym to the same
        // token text.
        for (v, raw) in b.iter().chain(&a).zip(&rev_raw) {
            let doc = rev_interner.doc(raw);
            for &s in doc.syms() {
                let text = rev_interner.resolve(s);
                prop_assert_eq!(fwd_interner.lookup(text), Some(s), "token {}", text);
            }
            let _ = v;
        }
    }
}
