//! Property-based tests for the text primitives.

use proptest::prelude::*;
use pse_text::divergence::{jaccard_bags, jensen_shannon, MAX_JS};
use pse_text::normalize::{normalize_attribute_name, normalize_value, values_equivalent};
use pse_text::strsim::{jaro, jaro_winkler, levenshtein, levenshtein_similarity, trigram_dice};
use pse_text::tokenize::{surface_tokens, tokens};
use pse_text::BagOfWords;

proptest! {
    #[test]
    fn tokens_are_lowercase_and_nonempty(s in ".{0,64}") {
        for t in tokens(&s) {
            prop_assert!(!t.is_empty());
            prop_assert_eq!(t.clone(), t.to_lowercase());
            prop_assert!(t.chars().all(char::is_alphanumeric));
        }
    }

    #[test]
    fn tokenization_is_idempotent(s in ".{0,64}") {
        let once = tokens(&s);
        let again = tokens(&once.join(" "));
        prop_assert_eq!(once, again);
    }

    #[test]
    fn surface_tokens_never_split_alnum_runs(s in "[a-zA-Z0-9]{1,20}") {
        prop_assert_eq!(surface_tokens(&s), vec![s.to_lowercase()]);
    }

    #[test]
    fn normalization_is_idempotent(s in ".{0,64}") {
        let n = normalize_attribute_name(&s);
        prop_assert_eq!(normalize_attribute_name(&n), n);
        let v = normalize_value(&s);
        prop_assert_eq!(normalize_value(&v), v);
    }

    #[test]
    fn values_equivalent_is_reflexive_and_symmetric(a in ".{0,32}", b in ".{0,32}") {
        prop_assert!(values_equivalent(&a, &a));
        prop_assert_eq!(values_equivalent(&a, &b), values_equivalent(&b, &a));
    }

    #[test]
    fn js_divergence_bounds_and_symmetry(
        xs in prop::collection::vec("[a-z0-9 ]{1,12}", 0..8),
        ys in prop::collection::vec("[a-z0-9 ]{1,12}", 0..8),
    ) {
        let a = BagOfWords::from_values(xs.iter().map(String::as_str));
        let b = BagOfWords::from_values(ys.iter().map(String::as_str));
        let d = jensen_shannon(&a, &b);
        prop_assert!((0.0..=MAX_JS + 1e-12).contains(&d), "d={d}");
        prop_assert!((d - jensen_shannon(&b, &a)).abs() < 1e-12);
        if !a.is_empty() {
            prop_assert!(jensen_shannon(&a, &a) < 1e-12, "identity");
        }
    }

    #[test]
    fn jaccard_bounds_and_symmetry(
        xs in prop::collection::vec("[a-z0-9 ]{1,12}", 0..8),
        ys in prop::collection::vec("[a-z0-9 ]{1,12}", 0..8),
    ) {
        let a = BagOfWords::from_values(xs.iter().map(String::as_str));
        let b = BagOfWords::from_values(ys.iter().map(String::as_str));
        let j = jaccard_bags(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaccard_bags(&b, &a)).abs() < 1e-12);
        if !a.is_empty() {
            prop_assert!((jaccard_bags(&a, &a) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn levenshtein_metric_properties(a in ".{0,24}", b in ".{0,24}", c in ".{0,24}") {
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Bounded by the longer string.
        prop_assert!(levenshtein(&a, &b) <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn similarity_measures_stay_in_unit_interval(a in ".{0,24}", b in ".{0,24}") {
        for s in [
            levenshtein_similarity(&a, &b),
            jaro(&a, &b),
            jaro_winkler(&a, &b),
            trigram_dice(&a, &b),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "s={s}");
        }
        prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
    }

    #[test]
    fn bag_counts_are_consistent(xs in prop::collection::vec("[a-z0-9 ]{0,16}", 0..10)) {
        let bag = BagOfWords::from_values(xs.iter().map(String::as_str));
        let sum: u64 = bag.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(sum, bag.total());
        let p: f64 = bag.iter().map(|(t, _)| bag.probability(t)).sum();
        if !bag.is_empty() {
            prop_assert!((p - 1.0).abs() < 1e-9);
        }
    }
}
