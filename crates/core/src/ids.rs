//! Strongly-typed identifiers for the entities of the data model.
//!
//! All identifiers are dense indices assigned by the owning collection
//! ([`crate::Taxonomy`], [`crate::Catalog`], offer stores), which keeps
//! lookups O(1) without hashing and makes the identifiers safe to use as
//! `Vec` indices.

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident($repr:ty)) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a dense index.
            #[inline]
            pub fn from_index(i: usize) -> Self {
                Self(i as $repr)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a category in the taxonomy.
    CategoryId(u32)
);
id_type!(
    /// Identifier of a merchant.
    MerchantId(u32)
);
id_type!(
    /// Identifier of a catalog product.
    ProductId(u64)
);
id_type!(
    /// Identifier of a merchant offer.
    OfferId(u64)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let c = CategoryId::from_index(7);
        assert_eq!(c.index(), 7);
        assert_eq!(c, CategoryId(7));
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(ProductId(3) < ProductId(10));
        assert!(OfferId::from_index(0) < OfferId::from_index(1));
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(MerchantId(4).to_string(), "MerchantId(4)");
    }

    #[test]
    fn ids_are_hashable_map_keys() {
        let mut m = std::collections::HashMap::new();
        m.insert(CategoryId(1), "laptops");
        assert_eq!(m[&CategoryId(1)], "laptops");
    }
}
