//! The product catalog: taxonomy plus product instances.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::ids::{CategoryId, ProductId};
use crate::product::Product;
use crate::spec::Spec;
use crate::taxonomy::Taxonomy;

/// The catalog of a Product Search Engine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    taxonomy: Taxonomy,
    products: Vec<Product>,
    by_category: HashMap<CategoryId, Vec<ProductId>>,
}

impl Catalog {
    /// A catalog over the given taxonomy, initially with no products.
    pub fn new(taxonomy: Taxonomy) -> Self {
        Self { taxonomy, products: Vec::new(), by_category: HashMap::new() }
    }

    /// The taxonomy.
    pub fn taxonomy(&self) -> &Taxonomy {
        &self.taxonomy
    }

    /// Add a product instance; the id is assigned densely.
    pub fn add_product(
        &mut self,
        category: CategoryId,
        title: impl Into<String>,
        spec: Spec,
    ) -> ProductId {
        let id = ProductId::from_index(self.products.len());
        self.products.push(Product { id, category, title: title.into(), spec });
        self.by_category.entry(category).or_default().push(id);
        id
    }

    /// Number of products.
    pub fn len(&self) -> usize {
        self.products.len()
    }

    /// Whether the catalog holds no products.
    pub fn is_empty(&self) -> bool {
        self.products.is_empty()
    }

    /// Product by id.
    pub fn product(&self, id: ProductId) -> &Product {
        &self.products[id.index()]
    }

    /// All products.
    pub fn products(&self) -> std::slice::Iter<'_, Product> {
        self.products.iter()
    }

    /// Products of one category.
    pub fn products_in(&self, category: CategoryId) -> impl Iterator<Item = &Product> {
        self.by_category.get(&category).into_iter().flatten().map(|id| self.product(*id))
    }

    /// Check that every product's attributes belong to its category schema.
    /// Returns the offending `(product, attribute)` pairs.
    pub fn validate(&self) -> Vec<(ProductId, String)> {
        let mut bad = Vec::new();
        for p in &self.products {
            let schema = self.taxonomy.schema(p.category);
            for pair in p.spec.iter() {
                if !schema.contains(&pair.name) {
                    bad.push((p.id, pair.name.clone()));
                }
            }
        }
        bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, AttributeKind, CategorySchema};

    fn catalog() -> (Catalog, CategoryId) {
        let mut t = Taxonomy::new();
        let top = t.add_top_level("Computing");
        let hd = t.add_leaf(
            top,
            "Hard Drives",
            CategorySchema::from_attributes([
                AttributeDef::new("Brand", AttributeKind::Text),
                AttributeDef::new("Capacity", AttributeKind::Numeric),
            ]),
        );
        (Catalog::new(t), hd)
    }

    #[test]
    fn add_and_query_products() {
        let (mut c, hd) = catalog();
        let p1 = c.add_product(hd, "Seagate Barracuda", Spec::from_pairs([("Brand", "Seagate")]));
        let p2 = c.add_product(hd, "Hitachi Deskstar", Spec::from_pairs([("Brand", "Hitachi")]));
        assert_eq!(c.len(), 2);
        assert_eq!(c.product(p1).title, "Seagate Barracuda");
        assert_eq!(c.products_in(hd).count(), 2);
        assert_eq!(c.product(p2).id, p2);
        assert!(c.validate().is_empty());
    }

    #[test]
    fn validate_flags_non_schema_attributes() {
        let (mut c, hd) = catalog();
        let p = c.add_product(hd, "X", Spec::from_pairs([("RPM", "7200")]));
        let bad = c.validate();
        assert_eq!(bad, vec![(p, "RPM".to_string())]);
    }

    #[test]
    fn products_in_unknown_category_is_empty() {
        let (c, _) = catalog();
        assert_eq!(c.products_in(CategoryId(99)).count(), 0);
    }
}
