//! Catalog product instances.

use serde::{Deserialize, Serialize};

use crate::ids::{CategoryId, ProductId};
use crate::spec::Spec;

/// A product instance `p = (C, {⟨A1, v1⟩, …, ⟨An, vn⟩})`.
///
/// Attribute names in the specification are expected to belong to the schema
/// of `category`; [`crate::Catalog::validate`] checks this.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Product {
    /// Identifier (dense index into the catalog).
    pub id: ProductId,
    /// The product's (leaf) category.
    pub category: CategoryId,
    /// Human-readable title, e.g. `"Hitachi Deskstar T7K500 500GB"`.
    pub title: String,
    /// The structured specification.
    pub spec: Spec,
}

impl Product {
    /// Value of the given catalog attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.spec.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_lookup() {
        let p = Product {
            id: ProductId(1),
            category: CategoryId(0),
            title: "Hitachi Deskstar".into(),
            spec: Spec::from_pairs([("Capacity", "500 GB"), ("Speed", "7200")]),
        };
        assert_eq!(p.attribute("capacity"), Some("500 GB"));
        assert_eq!(p.attribute("Buffer Size"), None);
    }
}
