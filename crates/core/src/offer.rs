//! Merchants and their offers.

use serde::{Deserialize, Serialize};

use crate::ids::{CategoryId, MerchantId, OfferId};
use crate::spec::Spec;

/// A merchant feeding offers to the Product Search Engine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Merchant {
    /// Identifier (dense index).
    pub id: MerchantId,
    /// Display name, e.g. `"Microwarehouse"`.
    pub name: String,
}

/// A merchant offer
/// `o = (M, price, image, C, URL, title, {⟨A1, v1⟩, …, ⟨An, vn⟩})`.
///
/// The `spec` field holds the *offer specification*: attribute–value pairs
/// either provided in the feed or extracted from the landing page. Most
/// feeds carry little structured data (paper Figure 3), so the run-time
/// pipeline typically fills `spec` via web-page attribute extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Offer {
    /// Identifier (dense index).
    pub id: OfferId,
    /// The merchant selling the product.
    pub merchant: MerchantId,
    /// Price in cents (avoids float money).
    pub price_cents: u64,
    /// URL of the product image, when provided.
    pub image_url: Option<String>,
    /// Category under the *catalog* taxonomy, when known. Offers lacking a
    /// category are classified from the title (Section 2 of the paper).
    pub category: Option<CategoryId>,
    /// URL of the merchant landing page where the product can be bought.
    pub url: String,
    /// Short free-text title, e.g. `"HP 400GB 10K 3.5 DP NSAS HDD"`.
    pub title: String,
    /// The offer specification (possibly empty until extraction runs).
    pub spec: Spec,
}

impl Offer {
    /// Price in currency units as a float (for display only).
    pub fn price(&self) -> f64 {
        self.price_cents as f64 / 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_conversion() {
        let o = Offer {
            id: OfferId(0),
            merchant: MerchantId(0),
            price_cents: 6750,
            image_url: None,
            category: None,
            url: "https://example.com/p/1".into(),
            title: "Gear Head DVD".into(),
            spec: Spec::new(),
        };
        assert!((o.price() - 67.5).abs() < 1e-12);
    }
}
