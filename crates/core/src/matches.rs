//! Historical offer-to-product matches.
//!
//! The business model of a Product Search Engine produces a wealth of known
//! associations between merchant offers and catalog products (via universal
//! identifiers, manual curation, or title matchers). Section 3.1 of the
//! paper builds its distributional-similarity features exclusively from
//! these associations.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::ids::{OfferId, ProductId};

/// A bidirectional map of known offer → product associations.
///
/// Each offer matches at most one product; a product may match many offers.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistoricalMatches {
    offer_to_product: HashMap<OfferId, ProductId>,
    product_to_offers: HashMap<ProductId, Vec<OfferId>>,
}

impl HistoricalMatches {
    /// An empty set of matches.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `offer` is known to sell `product`. Re-inserting an offer
    /// replaces its previous association.
    pub fn insert(&mut self, offer: OfferId, product: ProductId) {
        if let Some(old) = self.offer_to_product.insert(offer, product) {
            if old != product {
                if let Some(v) = self.product_to_offers.get_mut(&old) {
                    v.retain(|o| *o != offer);
                }
            } else {
                return;
            }
        }
        self.product_to_offers.entry(product).or_default().push(offer);
    }

    /// The product a given offer matches, if known.
    pub fn product_of(&self, offer: OfferId) -> Option<ProductId> {
        self.offer_to_product.get(&offer).copied()
    }

    /// The offers known to match a given product.
    pub fn offers_of(&self, product: ProductId) -> &[OfferId] {
        self.product_to_offers.get(&product).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of matched offers.
    pub fn len(&self) -> usize {
        self.offer_to_product.len()
    }

    /// Whether no matches are recorded.
    pub fn is_empty(&self) -> bool {
        self.offer_to_product.is_empty()
    }

    /// Iterate over all `(offer, product)` associations in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (OfferId, ProductId)> + '_ {
        self.offer_to_product.iter().map(|(o, p)| (*o, *p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_lookup() {
        let mut m = HistoricalMatches::new();
        m.insert(OfferId(1), ProductId(10));
        m.insert(OfferId(2), ProductId(10));
        m.insert(OfferId(3), ProductId(11));
        assert_eq!(m.len(), 3);
        assert_eq!(m.product_of(OfferId(1)), Some(ProductId(10)));
        assert_eq!(m.product_of(OfferId(9)), None);
        assert_eq!(m.offers_of(ProductId(10)), [OfferId(1), OfferId(2)]);
        assert_eq!(m.offers_of(ProductId(99)), []);
    }

    #[test]
    fn reinsert_replaces_association() {
        let mut m = HistoricalMatches::new();
        m.insert(OfferId(1), ProductId(10));
        m.insert(OfferId(1), ProductId(11));
        assert_eq!(m.len(), 1);
        assert_eq!(m.product_of(OfferId(1)), Some(ProductId(11)));
        assert!(m.offers_of(ProductId(10)).is_empty());
        assert_eq!(m.offers_of(ProductId(11)), [OfferId(1)]);
    }

    #[test]
    fn reinsert_same_is_idempotent() {
        let mut m = HistoricalMatches::new();
        m.insert(OfferId(1), ProductId(10));
        m.insert(OfferId(1), ProductId(10));
        assert_eq!(m.offers_of(ProductId(10)), [OfferId(1)]);
    }
}
