//! Category schemas: the structured vocabulary of the catalog.
//!
//! Every leaf category has a schema — the set of attributes a product of
//! that category may carry. The paper's clustering step relies on *key
//! attributes* (Model Part Number and universal identifiers such as UPC),
//! which the schema marks explicitly.

use serde::{Deserialize, Serialize};

use pse_text::normalize::normalize_attribute_name;

/// Broad kind of an attribute's values; drives synthetic value generation
/// and value normalization decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Numeric magnitude, possibly rendered with a unit (`"500 GB"`).
    Numeric,
    /// Free or categorical text (`"Serial ATA 300"`).
    Text,
    /// Product identifier with high cardinality (`MPN`, `UPC`, `EAN`).
    Identifier,
}

/// Definition of one catalog attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Canonical catalog name, e.g. `"Capacity"`.
    pub name: String,
    /// Value kind.
    pub kind: AttributeKind,
    /// Whether this attribute identifies the product (used as clustering
    /// key): Model Part Number, UPC, EAN, GTIN.
    pub is_key: bool,
}

impl AttributeDef {
    /// A non-key attribute.
    pub fn new(name: impl Into<String>, kind: AttributeKind) -> Self {
        Self { name: name.into(), kind, is_key: false }
    }

    /// A key (identifying) attribute.
    pub fn key(name: impl Into<String>, kind: AttributeKind) -> Self {
        Self { name: name.into(), kind, is_key: true }
    }

    /// Normalized form of the attribute name.
    pub fn normalized_name(&self) -> String {
        normalize_attribute_name(&self.name)
    }
}

/// The schema of a leaf category: an ordered set of attribute definitions
/// with unique normalized names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategorySchema {
    attributes: Vec<AttributeDef>,
}

impl CategorySchema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from attribute definitions. Definitions whose
    /// normalized name repeats an earlier one are dropped.
    pub fn from_attributes<I: IntoIterator<Item = AttributeDef>>(attrs: I) -> Self {
        let mut s = Self::new();
        for a in attrs {
            s.add(a);
        }
        s
    }

    /// Add a definition; returns `false` (and drops it) when the normalized
    /// name is already present.
    pub fn add(&mut self, attr: AttributeDef) -> bool {
        let n = attr.normalized_name();
        if self.attributes.iter().any(|a| a.normalized_name() == n) {
            return false;
        }
        self.attributes.push(attr);
        true
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Iterate over the attribute definitions.
    pub fn iter(&self) -> std::slice::Iter<'_, AttributeDef> {
        self.attributes.iter()
    }

    /// Look up an attribute by (normalized) name.
    pub fn get(&self, name: &str) -> Option<&AttributeDef> {
        let target = normalize_attribute_name(name);
        self.attributes.iter().find(|a| a.normalized_name() == target)
    }

    /// Whether `name` (after normalization) is a schema attribute.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// The key attributes, in schema order.
    pub fn key_attributes(&self) -> impl Iterator<Item = &AttributeDef> {
        self.attributes.iter().filter(|a| a.is_key)
    }

    /// Canonical (surface) names of all attributes, in schema order.
    pub fn attribute_names(&self) -> impl Iterator<Item = &str> {
        self.attributes.iter().map(|a| a.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hd_schema() -> CategorySchema {
        CategorySchema::from_attributes([
            AttributeDef::key("MPN", AttributeKind::Identifier),
            AttributeDef::new("Brand", AttributeKind::Text),
            AttributeDef::new("Capacity", AttributeKind::Numeric),
            AttributeDef::new("Speed", AttributeKind::Numeric),
            AttributeDef::new("Interface", AttributeKind::Text),
        ])
    }

    #[test]
    fn lookup_and_keys() {
        let s = hd_schema();
        assert_eq!(s.len(), 5);
        assert!(s.contains("brand"));
        assert!(s.contains("  CAPACITY "));
        assert!(!s.contains("rpm"));
        let keys: Vec<_> = s.key_attributes().map(|a| a.name.as_str()).collect();
        assert_eq!(keys, ["MPN"]);
    }

    #[test]
    fn duplicate_normalized_names_are_rejected() {
        let mut s = hd_schema();
        assert!(!s.add(AttributeDef::new("brand", AttributeKind::Text)));
        assert_eq!(s.len(), 5);
        assert!(s.add(AttributeDef::new("Buffer Size", AttributeKind::Numeric)));
    }

    #[test]
    fn empty_schema() {
        let s = CategorySchema::new();
        assert!(s.is_empty());
        assert_eq!(s.key_attributes().count(), 0);
    }

    #[test]
    fn serde_roundtrip() {
        let s = hd_schema();
        let json = serde_json::to_string(&s).unwrap();
        let back: CategorySchema = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
