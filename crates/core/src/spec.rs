//! Attribute–value pairs and specifications.
//!
//! Both products and offers carry a *specification*: an ordered list of
//! `⟨attribute, value⟩` pairs. Order is preserved (it mirrors the source
//! document), but lookup helpers compare attribute names in normalized form.

use serde::{Deserialize, Serialize};

use pse_text::normalize::normalize_attribute_name;

/// One `⟨attribute, value⟩` pair, stored in surface form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributeValue {
    /// Attribute name as it appeared in the source (feed, page, or catalog).
    pub name: String,
    /// Attribute value as it appeared in the source.
    pub value: String,
}

impl AttributeValue {
    /// Construct a pair.
    pub fn new(name: impl Into<String>, value: impl Into<String>) -> Self {
        Self { name: name.into(), value: value.into() }
    }

    /// Normalized form of the attribute name.
    pub fn normalized_name(&self) -> String {
        normalize_attribute_name(&self.name)
    }
}

/// An ordered specification: the `{⟨A1, v1⟩, …, ⟨An, vn⟩}` of Section 2.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Spec {
    pairs: Vec<AttributeValue>,
}

impl Spec {
    /// An empty specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from `(name, value)` pairs.
    pub fn from_pairs<I, N, V>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (N, V)>,
        N: Into<String>,
        V: Into<String>,
    {
        Self { pairs: pairs.into_iter().map(|(n, v)| AttributeValue::new(n, v)).collect() }
    }

    /// Append a pair.
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.pairs.push(AttributeValue::new(name, value));
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the specification has no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterate over the pairs in source order.
    pub fn iter(&self) -> std::slice::Iter<'_, AttributeValue> {
        self.pairs.iter()
    }

    /// First value whose attribute name normalizes to the same form as
    /// `name`, if any.
    pub fn get(&self, name: &str) -> Option<&str> {
        let target = normalize_attribute_name(name);
        self.pairs.iter().find(|p| p.normalized_name() == target).map(|p| p.value.as_str())
    }

    /// All values for attributes whose names normalize to `name`.
    pub fn get_all<'a>(&'a self, name: &str) -> Vec<&'a str> {
        let target = normalize_attribute_name(name);
        self.pairs
            .iter()
            .filter(|p| p.normalized_name() == target)
            .map(|p| p.value.as_str())
            .collect()
    }

    /// The distinct normalized attribute names, in first-appearance order.
    pub fn attribute_names(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for p in &self.pairs {
            let n = p.normalized_name();
            if seen.insert(n.clone()) {
                out.push(n);
            }
        }
        out
    }
}

impl FromIterator<AttributeValue> for Spec {
    fn from_iter<I: IntoIterator<Item = AttributeValue>>(iter: I) -> Self {
        Self { pairs: iter.into_iter().collect() }
    }
}

impl IntoIterator for Spec {
    type Item = AttributeValue;
    type IntoIter = std::vec::IntoIter<AttributeValue>;
    fn into_iter(self) -> Self::IntoIter {
        self.pairs.into_iter()
    }
}

impl<'a> IntoIterator for &'a Spec {
    type Item = &'a AttributeValue;
    type IntoIter = std::slice::Iter<'a, AttributeValue>;
    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_normalized() {
        let spec = Spec::from_pairs([("Hard Disk Size", "500"), ("RPM", "7200 rpm")]);
        assert_eq!(spec.get("hard-disk size"), Some("500"));
        assert_eq!(spec.get("rpm"), Some("7200 rpm"));
        assert_eq!(spec.get("capacity"), None);
    }

    #[test]
    fn order_is_preserved() {
        let spec = Spec::from_pairs([("b", "2"), ("a", "1")]);
        let names: Vec<_> = spec.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["b", "a"]);
    }

    #[test]
    fn duplicate_attributes_are_kept() {
        let spec = Spec::from_pairs([("Interface", "SATA"), ("Interface", "IDE")]);
        assert_eq!(spec.get("interface"), Some("SATA"));
        assert_eq!(spec.get_all("Interface"), ["SATA", "IDE"]);
        assert_eq!(spec.attribute_names(), ["interface"]);
    }

    #[test]
    fn empty_spec() {
        let spec = Spec::new();
        assert!(spec.is_empty());
        assert_eq!(spec.len(), 0);
        assert!(spec.attribute_names().is_empty());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = Spec::from_pairs([("Brand", "Hitachi")]);
        let json = serde_json::to_string(&spec).unwrap();
        let back: Spec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
