//! Core data model for the product-synthesis pipeline.
//!
//! This crate defines the entities of Section 2 of Nguyen et al. (VLDB 2011):
//!
//! * a [`taxonomy::Taxonomy`] of categories, each leaf carrying a
//!   [`schema::CategorySchema`];
//! * catalog [`product::Product`]s —
//!   `p = (C, {⟨A1, v1⟩, …, ⟨An, vn⟩})`;
//! * [`offer::Merchant`]s and their [`offer::Offer`]s —
//!   `o = (M, price, image, C, URL, title, {⟨Ai, vi⟩})`;
//! * [`correspondence::AttributeCorrespondence`]s —
//!   `⟨Ap, Ao, M, C⟩` tuples produced by schema reconciliation;
//! * the [`catalog::Catalog`] tying products to the taxonomy, and
//!   [`matches::HistoricalMatches`] recording known
//!   offer-to-product associations.

pub mod catalog;
pub mod correspondence;
pub mod ids;
pub mod matches;
pub mod offer;
pub mod product;
pub mod schema;
pub mod spec;
pub mod taxonomy;

pub use catalog::Catalog;
pub use correspondence::{AttributeCorrespondence, CorrespondenceSet};
pub use ids::{CategoryId, MerchantId, OfferId, ProductId};
pub use matches::HistoricalMatches;
pub use offer::{Merchant, Offer};
pub use product::Product;
pub use schema::{AttributeDef, AttributeKind, CategorySchema};
pub use spec::{AttributeValue, Spec};
pub use taxonomy::{Category, Taxonomy};
