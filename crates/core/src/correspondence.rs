//! Attribute correspondences — the output of schema reconciliation.
//!
//! Definition 1 of the paper: `⟨Ap, Ao, M, C⟩` is an attribute
//! correspondence from catalog attribute `Ap` to merchant attribute `Ao` for
//! category `C` when both have the same meaning in `C`.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use pse_text::normalize::normalize_attribute_name;

use crate::ids::{CategoryId, MerchantId};

/// One scored correspondence `⟨Ap, Ao, M, C⟩`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeCorrespondence {
    /// Catalog attribute name (canonical surface form).
    pub catalog_attribute: String,
    /// Merchant attribute name (normalized form).
    pub merchant_attribute: String,
    /// The merchant whose schema uses `merchant_attribute`.
    pub merchant: MerchantId,
    /// The category in which the correspondence holds.
    pub category: CategoryId,
    /// Confidence score in `[0, 1]` (classifier probability or matcher
    /// score); name-identity correspondences get 1.0.
    pub score: f64,
}

/// A set of correspondences indexed for run-time schema reconciliation:
/// `(merchant, category, merchant attribute) → (catalog attribute, score)`.
///
/// When several catalog attributes are proposed for the same merchant
/// attribute, the highest-scoring one wins (a merchant uses one name for one
/// meaning — the same assumption the paper uses to build training sets).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CorrespondenceSet {
    map: HashMap<(MerchantId, CategoryId, String), (String, f64)>,
}

impl CorrespondenceSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of scored correspondences, keeping the best catalog
    /// attribute per `(merchant, category, merchant attribute)`.
    pub fn from_correspondences<I>(items: I) -> Self
    where
        I: IntoIterator<Item = AttributeCorrespondence>,
    {
        let mut set = Self::new();
        for c in items {
            set.insert(c);
        }
        set
    }

    /// Insert one correspondence; keeps the higher-scoring mapping on
    /// collision.
    pub fn insert(&mut self, c: AttributeCorrespondence) {
        let key = (c.merchant, c.category, normalize_attribute_name(&c.merchant_attribute));
        match self.map.get_mut(&key) {
            Some(existing) if existing.1 >= c.score => {}
            slot => {
                let value = (c.catalog_attribute, c.score);
                match slot {
                    Some(existing) => *existing = value,
                    None => {
                        self.map.insert(key, value);
                    }
                }
            }
        }
    }

    /// The catalog attribute that `merchant_attribute` (of the given
    /// merchant and category) translates to, if any.
    pub fn translate(
        &self,
        merchant: MerchantId,
        category: CategoryId,
        merchant_attribute: &str,
    ) -> Option<&str> {
        self.map
            .get(&(merchant, category, normalize_attribute_name(merchant_attribute)))
            .map(|(a, _)| a.as_str())
    }

    /// The score of the mapping for `merchant_attribute`, if any.
    pub fn score(
        &self,
        merchant: MerchantId,
        category: CategoryId,
        merchant_attribute: &str,
    ) -> Option<f64> {
        self.map
            .get(&(merchant, category, normalize_attribute_name(merchant_attribute)))
            .map(|(_, s)| *s)
    }

    /// Number of distinct merchant attributes mapped.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over the stored correspondences.
    pub fn iter(&self) -> impl Iterator<Item = AttributeCorrespondence> + '_ {
        self.map.iter().map(|((m, c, ao), (ap, s))| AttributeCorrespondence {
            catalog_attribute: ap.clone(),
            merchant_attribute: ao.clone(),
            merchant: *m,
            category: *c,
            score: *s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corr(ap: &str, ao: &str, m: u32, c: u32, s: f64) -> AttributeCorrespondence {
        AttributeCorrespondence {
            catalog_attribute: ap.into(),
            merchant_attribute: ao.into(),
            merchant: MerchantId(m),
            category: CategoryId(c),
            score: s,
        }
    }

    #[test]
    fn translate_applies_best_mapping() {
        let set = CorrespondenceSet::from_correspondences([
            corr("Speed", "RPM", 0, 0, 0.9),
            corr("Capacity", "Hard Disk Size", 0, 0, 0.8),
        ]);
        assert_eq!(set.translate(MerchantId(0), CategoryId(0), "rpm"), Some("Speed"));
        assert_eq!(set.translate(MerchantId(0), CategoryId(0), "Hard-Disk Size"), Some("Capacity"));
        assert_eq!(set.translate(MerchantId(0), CategoryId(0), "Color"), None);
        assert_eq!(set.translate(MerchantId(1), CategoryId(0), "rpm"), None);
    }

    #[test]
    fn collision_keeps_higher_score() {
        let mut set = CorrespondenceSet::new();
        set.insert(corr("Speed", "RPM", 0, 0, 0.6));
        set.insert(corr("Buffer Size", "RPM", 0, 0, 0.4));
        assert_eq!(set.translate(MerchantId(0), CategoryId(0), "RPM"), Some("Speed"));
        set.insert(corr("Buffer Size", "RPM", 0, 0, 0.95));
        assert_eq!(set.translate(MerchantId(0), CategoryId(0), "RPM"), Some("Buffer Size"));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn iter_roundtrips() {
        let set = CorrespondenceSet::from_correspondences([corr("Speed", "rpm", 2, 3, 0.7)]);
        let all: Vec<_> = set.iter().collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].catalog_attribute, "Speed");
        assert_eq!(all[0].merchant, MerchantId(2));
        assert_eq!(all[0].category, CategoryId(3));
    }
}
