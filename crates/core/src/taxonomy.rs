//! The product taxonomy: a forest of categories.
//!
//! The paper's catalog taxonomy has thousands of categories; each product
//! belongs to exactly one *leaf* category, and only leaves carry schemas.
//! Top-level categories (Cameras, Computing, Home Furnishings, Kitchen &
//! Housewares in the evaluation) group leaves for reporting (Table 3).

use serde::{Deserialize, Serialize};

use crate::ids::CategoryId;
use crate::schema::CategorySchema;

/// One node in the taxonomy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Category {
    /// Identifier (dense index into the taxonomy).
    pub id: CategoryId,
    /// Human-readable name, e.g. `"Hard Drives"`.
    pub name: String,
    /// Parent category; `None` for top-level categories.
    pub parent: Option<CategoryId>,
    /// Schema; populated for leaf categories.
    pub schema: CategorySchema,
}

/// A forest of categories with dense ids.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Taxonomy {
    categories: Vec<Category>,
}

impl Taxonomy {
    /// An empty taxonomy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a top-level category (no schema).
    pub fn add_top_level(&mut self, name: impl Into<String>) -> CategoryId {
        self.push(name.into(), None, CategorySchema::new())
    }

    /// Add a leaf category with its schema under `parent`.
    ///
    /// # Panics
    /// Panics if `parent` is not a valid id of this taxonomy.
    pub fn add_leaf(
        &mut self,
        parent: CategoryId,
        name: impl Into<String>,
        schema: CategorySchema,
    ) -> CategoryId {
        assert!(parent.index() < self.categories.len(), "invalid parent {parent}");
        self.push(name.into(), Some(parent), schema)
    }

    fn push(
        &mut self,
        name: String,
        parent: Option<CategoryId>,
        schema: CategorySchema,
    ) -> CategoryId {
        let id = CategoryId::from_index(self.categories.len());
        self.categories.push(Category { id, name, parent, schema });
        id
    }

    /// Number of categories (all levels).
    pub fn len(&self) -> usize {
        self.categories.len()
    }

    /// Whether the taxonomy is empty.
    pub fn is_empty(&self) -> bool {
        self.categories.is_empty()
    }

    /// Category by id.
    pub fn category(&self, id: CategoryId) -> &Category {
        &self.categories[id.index()]
    }

    /// Schema of a category.
    pub fn schema(&self, id: CategoryId) -> &CategorySchema {
        &self.category(id).schema
    }

    /// Schema of a category, or `None` when `id` is not a valid id of this
    /// taxonomy (e.g. an offer classified against a different taxonomy).
    pub fn try_schema(&self, id: CategoryId) -> Option<&CategorySchema> {
        self.categories.get(id.index()).map(|c| &c.schema)
    }

    /// All categories.
    pub fn iter(&self) -> std::slice::Iter<'_, Category> {
        self.categories.iter()
    }

    /// Leaf categories (those with a parent and a non-empty schema).
    pub fn leaves(&self) -> impl Iterator<Item = &Category> {
        self.categories.iter().filter(|c| c.parent.is_some() && !c.schema.is_empty())
    }

    /// Top-level categories.
    pub fn top_levels(&self) -> impl Iterator<Item = &Category> {
        self.categories.iter().filter(|c| c.parent.is_none())
    }

    /// The top-level ancestor of `id` (possibly `id` itself).
    pub fn top_level_of(&self, id: CategoryId) -> CategoryId {
        let mut cur = id;
        while let Some(p) = self.category(cur).parent {
            cur = p;
        }
        cur
    }

    /// Find a category by exact name (first match).
    pub fn find_by_name(&self, name: &str) -> Option<&Category> {
        self.categories.iter().find(|c| c.name == name)
    }

    /// Leaf categories under the given top-level category.
    pub fn leaves_under(&self, top: CategoryId) -> impl Iterator<Item = &Category> + '_ {
        self.leaves().filter(move |c| self.top_level_of(c.id) == top)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttributeDef, AttributeKind};

    fn tiny() -> Taxonomy {
        let mut t = Taxonomy::new();
        let computing = t.add_top_level("Computing");
        let cameras = t.add_top_level("Cameras");
        let schema =
            CategorySchema::from_attributes([AttributeDef::new("Brand", AttributeKind::Text)]);
        t.add_leaf(computing, "Hard Drives", schema.clone());
        t.add_leaf(computing, "Laptops", schema.clone());
        t.add_leaf(cameras, "Digital Cameras", schema);
        t
    }

    #[test]
    fn structure_queries() {
        let t = tiny();
        assert_eq!(t.len(), 5);
        assert_eq!(t.top_levels().count(), 2);
        assert_eq!(t.leaves().count(), 3);
        let hd = t.find_by_name("Hard Drives").unwrap();
        assert_eq!(t.category(hd.id).name, "Hard Drives");
        assert_eq!(t.top_level_of(hd.id), t.find_by_name("Computing").unwrap().id);
    }

    #[test]
    fn leaves_under_groups_correctly() {
        let t = tiny();
        let computing = t.find_by_name("Computing").unwrap().id;
        let names: Vec<_> = t.leaves_under(computing).map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["Hard Drives", "Laptops"]);
    }

    #[test]
    fn top_level_of_top_level_is_itself() {
        let t = tiny();
        let cameras = t.find_by_name("Cameras").unwrap().id;
        assert_eq!(t.top_level_of(cameras), cameras);
    }

    #[test]
    fn try_schema_rejects_foreign_ids() {
        let t = tiny();
        let hd = t.find_by_name("Hard Drives").unwrap().id;
        assert!(t.try_schema(hd).is_some_and(|s| !s.is_empty()));
        assert!(t.try_schema(CategoryId(999)).is_none());
    }

    #[test]
    #[should_panic(expected = "invalid parent")]
    fn invalid_parent_panics() {
        let mut t = Taxonomy::new();
        t.add_leaf(CategoryId(5), "orphan", CategorySchema::new());
    }
}
