//! The write-ahead log file: framed, checksummed, generation-stamped.
//!
//! ```text
//! file    := header record*
//! header  := magic[8]="PSEWAL01" generation:u64   (16 bytes)
//! record  := len:u32 fnv1a(payload):u64 payload[len]
//! payload := codec::encode(Array[ kind:U64, body ])
//!            kind 0 = Ingest, body = Vec<ReconciledOffer>
//!            kind 1 = Retract, body = Array[U64 offer ids]
//! ```
//!
//! Ingest records carry *reconciled* offers, so replay needs no
//! [`pse_synthesis::SpecProvider`] — reconciliation already happened
//! (and is a pure function of the offer, so logging its output loses
//! nothing).
//!
//! Every snapshot rotates the log to a new generation (see
//! [`crate::Durability`]); the manifest records which generation its
//! segments pair with, so a stale log left by a crash between manifest
//! commit and log rotation is recognized by its generation stamp and
//! skipped — its records are already folded into the segments.
//!
//! A torn final record (short frame or checksum mismatch) marks the end
//! of the durable prefix. [`read_wal`] reports it without touching the
//! file; [`Wal::open_for_append`] physically truncates it.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use pse_core::OfferId;
use pse_synthesis::ReconciledOffer;
use serde::{Deserialize, Serialize, Value};

use crate::{codec, WalError};

/// Magic bytes opening every WAL file (name + format version).
pub const WAL_MAGIC: [u8; 8] = *b"PSEWAL01";

/// Bytes of the file header (magic + generation); records start here.
pub const WAL_HEADER_LEN: u64 = 16;

/// Upper bound on one record's payload: anything larger in a length
/// prefix is garbage, not a batch (guards allocation during recovery).
const MAX_RECORD_BYTES: u32 = 1 << 30;

const KIND_INGEST: u64 = 0;
const KIND_RETRACT: u64 = 1;

/// One logged store mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An ingest batch, already reconciled into catalog vocabulary.
    Ingest(Vec<ReconciledOffer>),
    /// A retraction batch.
    Retract(Vec<OfferId>),
}

impl WalRecord {
    /// Encode this record's payload (the bytes the frame checksums).
    pub fn payload(&self) -> Vec<u8> {
        let value = match self {
            Self::Ingest(offers) => Value::Array(vec![Value::U64(KIND_INGEST), offers.to_value()]),
            Self::Retract(ids) => Value::Array(vec![
                Value::U64(KIND_RETRACT),
                Value::Array(ids.iter().map(|id| Value::U64(id.0)).collect()),
            ]),
        };
        codec::encode_to_vec(&value)
    }

    /// Decode a payload. Only called on checksum-verified bytes, so a
    /// failure here is real corruption, not a torn write.
    pub fn from_payload(bytes: &[u8]) -> Result<Self, WalError> {
        let value = codec::decode_value(bytes)?;
        let Value::Array(parts) = &value else {
            return Err(WalError::Corrupt("record payload is not an array".to_string()));
        };
        match parts.as_slice() {
            [Value::U64(KIND_INGEST), body] => {
                let offers: Vec<ReconciledOffer> = Deserialize::from_value(body)
                    .map_err(|e| WalError::Corrupt(format!("ingest record: {e}")))?;
                Ok(Self::Ingest(offers))
            }
            [Value::U64(KIND_RETRACT), Value::Array(ids)] => {
                let ids = ids
                    .iter()
                    .map(|v| match v {
                        Value::U64(n) => Ok(OfferId(*n)),
                        other => {
                            Err(WalError::Corrupt(format!("retract id is not a u64: {other:?}")))
                        }
                    })
                    .collect::<Result<Vec<OfferId>, WalError>>()?;
                Ok(Self::Retract(ids))
            }
            _ => Err(WalError::Corrupt("unknown record kind".to_string())),
        }
    }
}

/// What [`read_wal`] found: the file's generation, the decodable records
/// (each with the offset just past its frame), and where the durable
/// prefix ends.
#[derive(Debug)]
pub struct WalTail {
    /// Generation stamped in the file header.
    pub gen: u64,
    /// Records in append order, paired with their end offsets — the
    /// crash-point proptests use the offsets to predict exactly which
    /// records survive an arbitrary truncation.
    pub records: Vec<(WalRecord, u64)>,
    /// Offset just past the last intact record; everything after is torn.
    pub durable_len: u64,
    /// Bytes past `durable_len` (a torn final record, or zero).
    pub torn_bytes: u64,
}

/// Read a WAL file without modifying it, starting at `from` (clamped to
/// the header length). Returns `Ok(None)` when the file does not exist.
/// A short or checksum-failing frame ends the durable prefix; bytes
/// beyond it are reported as torn, never decoded.
pub fn read_wal(path: &Path, from: u64) -> Result<Option<WalTail>, WalError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < WAL_HEADER_LEN as usize || bytes[..8] != WAL_MAGIC {
        return Err(WalError::Corrupt(format!(
            "{} is not a WAL file (bad header)",
            path.display()
        )));
    }
    let gen = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let mut at = (from.max(WAL_HEADER_LEN) as usize).min(bytes.len());
    let mut records = Vec::new();
    loop {
        // Frame header: len + checksum.
        if bytes.len() - at < 12 {
            break;
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
        if len == 0 || len > MAX_RECORD_BYTES || (len as usize) > bytes.len() - at - 12 {
            break; // torn or garbage length — durable prefix ends here
        }
        let sum = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().expect("8 bytes"));
        let payload = &bytes[at + 12..at + 12 + len as usize];
        if codec::fnv1a(payload) != sum {
            break; // torn write caught by the checksum
        }
        let end = (at + 12 + len as usize) as u64;
        records.push((WalRecord::from_payload(payload)?, end));
        at = end as usize;
    }
    let durable_len = at as u64;
    Ok(Some(WalTail { gen, records, durable_len, torn_bytes: bytes.len() as u64 - durable_len }))
}

/// An open WAL file positioned for appends. One writer at a time — the
/// serving layer serializes appenders behind its durability mutex.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    gen: u64,
    len: u64,
}

impl Wal {
    /// Create a fresh WAL at `path` (atomically: staged, fsynced,
    /// renamed) and open it for appends.
    pub fn create(path: &Path, gen: u64) -> Result<Self, WalError> {
        crate::atomic_write(path, &header_bytes(gen))?;
        Self::open_for_append(path, gen, WAL_HEADER_LEN)
    }

    /// Open an existing WAL for appends, physically truncating the torn
    /// tail: everything past `durable_len` (as determined by
    /// [`read_wal`]) is cut, and the truncation is fsynced before the
    /// first append can land.
    pub fn open_for_append(path: &Path, gen: u64, durable_len: u64) -> Result<Self, WalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(durable_len)?;
        let started = Instant::now();
        file.sync_all()?;
        pse_obs::observe("wal.fsync_us", started.elapsed().as_micros() as u64);
        file.seek(SeekFrom::End(0))?;
        Ok(Self { file, path: path.to_path_buf(), gen, len: durable_len })
    }

    /// Stage the next generation's (empty) WAL beside `path` without
    /// exposing it. Called before the manifest naming `gen` commits, so
    /// a crash in between leaves the old log intact and the staged file
    /// inert. [`Wal::promote_staged`] performs the rename.
    pub fn stage_next(path: &Path, gen: u64) -> Result<(), WalError> {
        let staged = staged_path(path);
        let mut f = File::create(&staged)?;
        f.write_all(&header_bytes(gen))?;
        f.sync_all()?;
        Ok(())
    }

    /// Rename the staged next-generation WAL over `path` and open it for
    /// appends. Called after the manifest referencing `gen` is durable;
    /// a crash before this rename is healed at open time (the manifest's
    /// generation wins, the stale log is discarded).
    pub fn promote_staged(path: &Path, gen: u64) -> Result<Self, WalError> {
        std::fs::rename(staged_path(path), path)?;
        crate::sync_parent_dir(path)?;
        Self::open_for_append(path, gen, WAL_HEADER_LEN)
    }

    /// Append one record and fsync it. Returns the new file length — the
    /// record is durable iff this returns `Ok`.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let _span = pse_obs::span("wal.append");
        let len = self.stage_record(record)?;
        let started = Instant::now();
        self.file.sync_data()?;
        pse_obs::observe("wal.fsync_us", started.elapsed().as_micros() as u64);
        Ok(len)
    }

    /// Write one record's frame **without** syncing. Returns the record's
    /// commit LSN (the file offset one past its frame); the record is
    /// durable only once a later `sync_data` covers that offset — the
    /// group-commit protocol ([`crate::GroupCommitter`]) owns that sync.
    pub fn stage_record(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        self.stage_payload(&record.payload())
    }

    /// [`Wal::stage_record`] over a pre-encoded payload
    /// ([`WalRecord::payload`]). Encoding a record is the expensive part
    /// of staging; callers that serialize staging behind a lock can
    /// encode outside it and keep only the frame write in the critical
    /// section.
    pub fn stage_payload(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        let _span = pse_obs::span("wal.stage");
        let mut frame = Vec::with_capacity(12 + payload.len());
        frame.extend_from_slice(&u32::try_from(payload.len()).expect("record size").to_le_bytes());
        frame.extend_from_slice(&codec::fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        pse_obs::incr("wal.append");
        pse_obs::add("wal.bytes", frame.len() as u64);
        self.len += frame.len() as u64;
        Ok(self.len)
    }

    /// A duplicate handle to the log file for syncing staged frames
    /// without borrowing the `Wal`. Both handles share one open file
    /// description, so a `sync_data` on the clone covers every write
    /// made through `self`.
    pub fn sync_handle(&self) -> Result<File, WalError> {
        Ok(self.file.try_clone()?)
    }

    /// Current file length in bytes (header + durable records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records (only the header).
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_HEADER_LEN
    }

    /// Generation stamped in this file's header.
    pub fn gen(&self) -> u64 {
        self.gen
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn header_bytes(gen: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(WAL_HEADER_LEN as usize);
    h.extend_from_slice(&WAL_MAGIC);
    h.extend_from_slice(&gen.to_le_bytes());
    h
}

fn staged_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".next");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pse-wal-log-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn retract(ids: &[u64]) -> WalRecord {
        WalRecord::Retract(ids.iter().copied().map(OfferId).collect())
    }

    #[test]
    fn records_roundtrip_through_payload() {
        let r = retract(&[1, 2, 99]);
        assert_eq!(WalRecord::from_payload(&r.payload()).unwrap(), r);
        let i = WalRecord::Ingest(Vec::new());
        assert_eq!(WalRecord::from_payload(&i.payload()).unwrap(), i);
    }

    #[test]
    fn append_then_read_back() {
        let dir = tmp("roundtrip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 7).unwrap();
        assert!(wal.is_empty());
        let records = [retract(&[1]), retract(&[2, 3]), retract(&[])];
        let mut ends = Vec::new();
        for r in &records {
            ends.push(wal.append(r).unwrap());
        }
        assert_eq!(wal.len(), *ends.last().unwrap());
        let tail = read_wal(&path, 0).unwrap().unwrap();
        assert_eq!(tail.gen, 7);
        assert_eq!(tail.durable_len, wal.len());
        assert_eq!(tail.torn_bytes, 0);
        let got: Vec<&WalRecord> = tail.records.iter().map(|(r, _)| r).collect();
        assert_eq!(got, records.iter().collect::<Vec<_>>());
        let got_ends: Vec<u64> = tail.records.iter().map(|(_, e)| *e).collect();
        assert_eq!(got_ends, ends);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_byte_keeps_exactly_the_complete_prefix() {
        let dir = tmp("torn");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 1).unwrap();
        let mut ends = vec![WAL_HEADER_LEN];
        for r in [retract(&[10]), retract(&[11, 12]), retract(&[13])] {
            ends.push(wal.append(&r).unwrap());
        }
        let full = std::fs::read(&path).unwrap();
        for cut in WAL_HEADER_LEN as usize..=full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let tail = read_wal(&path, 0).unwrap().unwrap();
            let expect_records =
                ends.iter().filter(|&&e| e > WAL_HEADER_LEN && e <= cut as u64).count();
            assert_eq!(tail.records.len(), expect_records, "cut at {cut}");
            let durable = *ends.iter().filter(|&&e| e <= cut as u64).max().unwrap();
            assert_eq!(tail.durable_len, durable, "cut at {cut}");
            assert_eq!(tail.torn_bytes, cut as u64 - durable, "cut at {cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_byte_ends_the_durable_prefix() {
        let dir = tmp("flip");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 1).unwrap();
        let first_end = wal.append(&retract(&[1])).unwrap();
        wal.append(&retract(&[2])).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // flip a payload byte of the second record
        std::fs::write(&path, &bytes).unwrap();
        let tail = read_wal(&path, 0).unwrap().unwrap();
        assert_eq!(tail.records.len(), 1, "checksum rejects the damaged record");
        assert_eq!(tail.durable_len, first_end);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_for_append_truncates_the_torn_tail() {
        let dir = tmp("reopen");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 3).unwrap();
        let keep = wal.append(&retract(&[5])).unwrap();
        wal.append(&retract(&[6])).unwrap();
        drop(wal);
        // Tear the second record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..keep as usize + 5]).unwrap();
        let tail = read_wal(&path, 0).unwrap().unwrap();
        let mut wal = Wal::open_for_append(&path, tail.gen, tail.durable_len).unwrap();
        assert_eq!(wal.len(), keep);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), keep, "tail physically cut");
        // Appends continue cleanly after the repair.
        wal.append(&retract(&[7])).unwrap();
        let tail = read_wal(&path, 0).unwrap().unwrap();
        assert_eq!(tail.records.len(), 2);
        assert_eq!(tail.records[1].0, retract(&[7]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stage_and_promote_rotate_generations() {
        let dir = tmp("rotate");
        let path = dir.join("wal.log");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(&retract(&[1])).unwrap();
        Wal::stage_next(&path, 2).unwrap();
        // Old log is still what readers see until promotion.
        assert_eq!(read_wal(&path, 0).unwrap().unwrap().gen, 1);
        let fresh = Wal::promote_staged(&path, 2).unwrap();
        assert!(fresh.is_empty());
        let tail = read_wal(&path, 0).unwrap().unwrap();
        assert_eq!(tail.gen, 2);
        assert!(tail.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_none_and_bad_header_is_corrupt() {
        let dir = tmp("header");
        assert!(read_wal(&dir.join("absent.log"), 0).unwrap().is_none());
        let bad = dir.join("bad.log");
        std::fs::write(&bad, b"not a wal file at all").unwrap();
        assert!(matches!(read_wal(&bad, 0), Err(WalError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
