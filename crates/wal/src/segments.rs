//! Segmented snapshot files and the manifest binding them.
//!
//! A snapshot is a set of files in the snapshot directory:
//!
//! ```text
//! manifest.json            committed last, atomically — THE commit point
//! meta-<snap>.bin          codec(SnapshotMeta): config + correspondences
//! seg-<shard>-<snap>.bin   codec(shard's BTreeMap<ClusterKey, ClusterState>)
//! ```
//!
//! Segment and meta files are content-addressed by snapshot id, so an
//! incremental snapshot can *reuse* a clean shard's existing file by
//! keeping its manifest entry — nothing is rewritten in place, ever. The
//! manifest records each file's byte length and FNV-1a checksum; loads
//! verify both. Files no longer referenced by the committed manifest are
//! garbage-collected afterwards.

use std::path::Path;

use pse_core::CorrespondenceSet;
use pse_synthesis::RuntimeConfig;
use serde::{Deserialize, Serialize};

use crate::{codec, WalError};

/// Version of the manifest/meta/segment layout.
pub const FORMAT_VERSION: u32 = 1;

/// File name of the manifest inside the snapshot directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// One snapshot file the manifest references, with its integrity data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SegmentEntry {
    /// Shard index this segment holds.
    pub shard: usize,
    /// File name inside the snapshot directory.
    pub file: String,
    /// Exact byte length.
    pub bytes: u64,
    /// FNV-1a checksum of the file contents.
    pub fnv: u64,
}

/// The snapshot commit record: which files form the catalog state and
/// which WAL generation/offset continues it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Layout version ([`FORMAT_VERSION`]).
    pub schema_version: u32,
    /// Monotone snapshot counter (names the segment files).
    pub snapshot_id: u64,
    /// WAL generation whose records continue this snapshot. A WAL file
    /// stamped with any other generation is already folded in (or
    /// superseded) and must not be replayed on top.
    pub wal_gen: u64,
    /// Offset in that WAL where replay starts (the header length).
    pub wal_offset: u64,
    /// The meta blob: pipeline config + correspondence set.
    pub meta_file: String,
    /// Meta blob byte length.
    pub meta_bytes: u64,
    /// Meta blob FNV-1a checksum.
    pub meta_fnv: u64,
    /// One entry per shard, in shard order.
    pub segments: Vec<SegmentEntry>,
}

/// What the meta blob decodes to: everything a store needs besides its
/// clusters. Serialized through the same derived impls as the JSON
/// snapshot, so no representation can drift between the two formats.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SnapshotMeta {
    /// Layout version ([`FORMAT_VERSION`]).
    pub schema_version: u32,
    /// The store's pipeline configuration.
    pub config: RuntimeConfig,
    /// The store's correspondence set.
    pub correspondences: CorrespondenceSet,
}

/// Read and validate the manifest; `Ok(None)` when none exists (a fresh
/// directory).
pub fn read_manifest(dir: &Path) -> Result<Option<Manifest>, WalError> {
    let text = match std::fs::read_to_string(dir.join(MANIFEST_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let manifest: Manifest =
        serde_json::from_str(&text).map_err(|e| WalError::Corrupt(format!("manifest: {}", e.0)))?;
    if manifest.schema_version != FORMAT_VERSION {
        return Err(WalError::Corrupt(format!(
            "manifest version {} unsupported (expected {FORMAT_VERSION})",
            manifest.schema_version
        )));
    }
    Ok(Some(manifest))
}

/// Commit a manifest atomically (temp + fsync + rename + dir fsync).
pub fn write_manifest(dir: &Path, manifest: &Manifest) -> Result<(), WalError> {
    let json = serde_json::to_string_pretty(manifest)
        .unwrap_or_else(|e| panic!("manifest serialization is infallible: {}", e.0));
    crate::atomic_write(&dir.join(MANIFEST_FILE), json.as_bytes())?;
    Ok(())
}

/// Write one snapshot blob atomically; returns its FNV-1a checksum.
pub fn write_blob(dir: &Path, name: &str, bytes: &[u8]) -> Result<u64, WalError> {
    crate::atomic_write(&dir.join(name), bytes)?;
    Ok(codec::fnv1a(bytes))
}

/// Read one snapshot blob, verifying its recorded length and checksum.
pub fn read_blob(dir: &Path, name: &str, bytes: u64, fnv: u64) -> Result<Vec<u8>, WalError> {
    let data = std::fs::read(dir.join(name))?;
    if data.len() as u64 != bytes {
        return Err(WalError::Corrupt(format!(
            "{name}: {} bytes on disk, manifest says {bytes}",
            data.len()
        )));
    }
    let sum = codec::fnv1a(&data);
    if sum != fnv {
        return Err(WalError::Corrupt(format!(
            "{name}: checksum {sum:#x} does not match manifest {fnv:#x}"
        )));
    }
    Ok(data)
}

/// Delete snapshot blobs (`seg-*`/`meta-*`) the committed manifest no
/// longer references. Safe to crash during: unreferenced files are
/// inert, and the next snapshot sweeps again. Returns how many files
/// were removed.
pub fn gc(dir: &Path, manifest: &Manifest) -> Result<usize, WalError> {
    let mut removed = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let is_blob = name.starts_with("seg-") || name.starts_with("meta-");
        if !is_blob || name.ends_with(".tmp") {
            continue;
        }
        let referenced =
            name == manifest.meta_file || manifest.segments.iter().any(|s| s.file == name);
        if !referenced {
            std::fs::remove_file(entry.path())?;
            removed += 1;
        }
    }
    Ok(removed)
}

/// Segment file name for one shard of one snapshot.
pub fn segment_file_name(shard: usize, snapshot_id: u64) -> String {
    format!("seg-{shard:04}-{snapshot_id:08}.bin")
}

/// Meta blob file name for one snapshot.
pub fn meta_file_name(snapshot_id: u64) -> String {
    format!("meta-{snapshot_id:08}.bin")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pse-wal-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn manifest_with(segments: Vec<SegmentEntry>, meta_file: &str) -> Manifest {
        Manifest {
            schema_version: FORMAT_VERSION,
            snapshot_id: 1,
            wal_gen: 1,
            wal_offset: crate::WAL_HEADER_LEN,
            meta_file: meta_file.to_string(),
            meta_bytes: 0,
            meta_fnv: codec::fnv1a(b""),
            segments,
        }
    }

    #[test]
    fn manifest_roundtrips_and_missing_is_none() {
        let dir = tmp("manifest");
        assert!(read_manifest(&dir).unwrap().is_none());
        let m = manifest_with(
            vec![SegmentEntry { shard: 0, file: "seg-0000-00000001.bin".into(), bytes: 3, fnv: 9 }],
            "meta-00000001.bin",
        );
        write_manifest(&dir, &m).unwrap();
        assert_eq!(read_manifest(&dir).unwrap().unwrap(), m);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsupported_manifest_version_is_corrupt() {
        let dir = tmp("version");
        let mut m = manifest_with(Vec::new(), "meta-00000001.bin");
        m.schema_version = 99;
        let json = serde_json::to_string_pretty(&m).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), json).unwrap();
        assert!(matches!(read_manifest(&dir), Err(WalError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn blob_verification_catches_length_and_checksum_drift() {
        let dir = tmp("blob");
        let fnv = write_blob(&dir, "seg-0000-00000001.bin", b"payload").unwrap();
        assert_eq!(read_blob(&dir, "seg-0000-00000001.bin", 7, fnv).unwrap(), b"payload");
        assert!(matches!(
            read_blob(&dir, "seg-0000-00000001.bin", 8, fnv),
            Err(WalError::Corrupt(_))
        ));
        assert!(matches!(
            read_blob(&dir, "seg-0000-00000001.bin", 7, fnv ^ 1),
            Err(WalError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_removes_only_unreferenced_blobs() {
        let dir = tmp("gc");
        write_blob(&dir, "seg-0000-00000001.bin", b"old").unwrap();
        write_blob(&dir, "seg-0000-00000002.bin", b"new").unwrap();
        write_blob(&dir, "meta-00000001.bin", b"oldmeta").unwrap();
        write_blob(&dir, "meta-00000002.bin", b"newmeta").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"keep me").unwrap();
        let m = manifest_with(
            vec![SegmentEntry {
                shard: 0,
                file: "seg-0000-00000002.bin".into(),
                bytes: 3,
                fnv: codec::fnv1a(b"new"),
            }],
            "meta-00000002.bin",
        );
        write_manifest(&dir, &m).unwrap();
        assert_eq!(gc(&dir, &m).unwrap(), 2, "stale seg + stale meta");
        assert!(dir.join("seg-0000-00000002.bin").exists());
        assert!(dir.join("meta-00000002.bin").exists());
        assert!(dir.join("unrelated.txt").exists());
        assert!(!dir.join("seg-0000-00000001.bin").exists());
        assert!(!dir.join("meta-00000001.bin").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
