//! The durability protocol: log-then-apply writes, incremental
//! checkpoints, generation-fenced recovery.
//!
//! # Recovery algorithm
//!
//! ```text
//! 1. read manifest.json        (absent + absent WAL → nothing durable)
//! 2. load meta + segments      (checksummed; duplicate cluster keys or
//!    an offer in two clusters → CorruptSnapshot, not a healthy store)
//! 3. read the WAL              (absent → done)
//!    if its generation == manifest.wal_gen:
//!        replay records from manifest.wal_offset, stopping at the
//!        first torn frame; re-validate the offer index afterwards
//!    else: skip the tail — those records are already folded into the
//!        segments (the WAL rotation crashed between manifest commit
//!        and rename; see `write_snapshot` ordering below)
//! ```
//!
//! [`recover`] is strictly read-only so an oracle process can replay a
//! crashed directory before (and independently of) the server reopening
//! it; [`Durability::open`] additionally truncates the torn tail and
//! opens the log for appends.
//!
//! # Snapshot / compaction ordering
//!
//! [`Durability::write_snapshot`] makes the crash window at every step
//! safe:
//!
//! ```text
//! 1. write dirty shards' segments + meta   (new files; old ones untouched)
//! 2. stage wal.log.next, generation G+1    (inert until renamed)
//! 3. commit manifest {snapshot N+1, wal_gen G+1}  ← atomic commit point
//! 4. rename wal.log.next → wal.log         (old log's records now dead —
//!                                           the manifest already says so)
//! 5. gc unreferenced segment files
//! ```
//!
//! Crash before 3 → old manifest + old log: nothing lost. Crash between
//! 3 and 4 → new manifest, old log with generation G: recovery sees the
//! generation mismatch and ignores the stale records (they are inside
//! the new segments); open creates a fresh G+1 log. Crash after 4 → the
//! steady state, minus some garbage files the next gc sweeps.

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

use pse_core::Catalog;
use pse_core::CorrespondenceSet;
use pse_store::ProductStore;
use pse_synthesis::RuntimeConfig;
use serde::{Deserialize, Serialize, Value};

use crate::group::{GroupCommitConfig, GroupCommitter};
use crate::segments::{self, Manifest, SegmentEntry, SnapshotMeta};
use crate::wal::{self, Wal, WalRecord, WAL_HEADER_LEN};
use crate::{codec, WalError, FORMAT_VERSION};

/// Where durable state lives and when to compact it.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// The write-ahead log file.
    pub wal_path: PathBuf,
    /// Directory holding manifest + meta + segment files.
    pub snapshot_dir: PathBuf,
    /// When the WAL grows past this many record bytes, the serving layer
    /// should fold it into fresh segments ([`Durability::wants_compaction`]).
    pub compaction_threshold_bytes: u64,
    /// Group-commit knobs for the stage/wait write path
    /// ([`Durability::stage`] + [`GroupCommitter::wait_durable`]).
    pub group: GroupCommitConfig,
}

/// What recovery found and replayed.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryStats {
    /// Segment files loaded from the manifest.
    pub segments_loaded: usize,
    /// WAL records replayed on top of the segments.
    pub wal_records_replayed: usize,
    /// Bytes of torn final record discarded (0 on a clean shutdown).
    pub torn_bytes: u64,
}

/// What one snapshot wrote (and skipped).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Id of the committed snapshot.
    pub snapshot_id: u64,
    /// Segments rewritten because their shard was dirty.
    pub segments_written: usize,
    /// Clean segments reused from the previous manifest.
    pub segments_skipped: usize,
    /// Bytes written this snapshot (rewritten segments + meta).
    pub bytes_written: u64,
    /// Total bytes the committed snapshot references (all segments + meta).
    pub total_bytes: u64,
}

fn seed_obs_counters() {
    for c in ["wal.append", "wal.bytes", "snapshot.segments_written", "snapshot.segments_skipped"] {
        pse_obs::seed(c);
    }
    // Group-commit distributions: seeded so reports show them whenever a
    // WAL is open, even before (or without) any grouped sync.
    for h in ["wal.group_size", "wal.group_wait_us"] {
        pse_obs::seed_histogram(h);
    }
}

/// Rebuild a store from segments + WAL tail, read-only (no truncation,
/// no rotation — the on-disk state is untouched). Returns `Ok(None)`
/// when neither a manifest nor a WAL exists. `empty_store` supplies the
/// store to replay into when there is a WAL but no snapshot yet.
pub fn recover(
    config: &DurabilityConfig,
    catalog: &Catalog,
    empty_store: impl FnOnce() -> ProductStore,
) -> Result<Option<(ProductStore, RecoveryStats)>, WalError> {
    let _span = pse_obs::span("wal.recover");
    seed_obs_counters();
    let manifest = segments::read_manifest(&config.snapshot_dir)?;
    let mut stats = RecoveryStats::default();
    let (mut store, wal_from, manifest_gen) = match &manifest {
        Some(m) => {
            let meta_bytes =
                segments::read_blob(&config.snapshot_dir, &m.meta_file, m.meta_bytes, m.meta_fnv)?;
            let meta: SnapshotMeta = Deserialize::from_value(&codec::decode_value(&meta_bytes)?)
                .map_err(|e| WalError::Corrupt(format!("meta blob: {e}")))?;
            if meta.schema_version != FORMAT_VERSION {
                return Err(WalError::Corrupt(format!(
                    "meta version {} unsupported (expected {FORMAT_VERSION})",
                    meta.schema_version
                )));
            }
            let mut parts = Vec::with_capacity(m.segments.len());
            for seg in &m.segments {
                let bytes =
                    segments::read_blob(&config.snapshot_dir, &seg.file, seg.bytes, seg.fnv)?;
                parts.push(codec::decode_value(&bytes)?);
            }
            stats.segments_loaded = parts.len();
            let store = ProductStore::from_cluster_parts(meta.config, meta.correspondences, parts)?;
            (store, m.wal_offset, Some(m.wal_gen))
        }
        None => (empty_store(), WAL_HEADER_LEN, None),
    };
    let tail = wal::read_wal(&config.wal_path, wal_from)?;
    if manifest.is_none() && tail.is_none() {
        return Ok(None);
    }
    if let Some(tail) = tail {
        // A generation mismatch means the manifest superseded this log
        // (crash between manifest commit and log rotation): its records
        // are already inside the segments. Replay nothing.
        let generation_matches = manifest_gen.is_none_or(|g| tail.gen == g);
        if generation_matches {
            stats.torn_bytes = tail.torn_bytes;
            for (record, _) in tail.records {
                apply(&mut store, catalog, record);
                stats.wal_records_replayed += 1;
            }
            if stats.wal_records_replayed > 0 {
                // The same corruption screen `restore_json` applies.
                store.validate_offer_index()?;
            }
        }
    }
    Ok(Some((store, stats)))
}

fn apply(store: &mut ProductStore, catalog: &Catalog, record: WalRecord) {
    match record {
        WalRecord::Ingest(reconciled) => {
            store.ingest_reconciled(catalog, reconciled);
        }
        WalRecord::Retract(ids) => {
            store.retract(catalog, &ids);
        }
    }
}

/// An open durability context: the WAL accepting appends, the last
/// committed manifest, and the dirty-shard set accumulated since it.
///
/// One writer at a time — callers serialize `log` + apply behind a
/// mutex so the log order equals the apply order (the serving layer's
/// `durable` module does this).
#[derive(Debug)]
pub struct Durability {
    config: DurabilityConfig,
    wal: Wal,
    /// Group-commit coordinator syncing staged frames; shared with
    /// waiters via [`Self::committer`], re-armed on every WAL rotation.
    committer: Arc<GroupCommitter>,
    manifest: Option<Manifest>,
    /// Shards whose segment must be rewritten at the next snapshot.
    dirty_shards: BTreeSet<usize>,
    /// Rewrite everything at the next snapshot: set on a fresh
    /// directory, after replaying a WAL tail (per-shard dirt unknown),
    /// or when the shard count changed.
    rewrite_all: bool,
    /// Whether the current WAL generation holds records not yet folded
    /// into segments.
    unfolded_records: bool,
}

impl Durability {
    /// Open (or initialize) the durable state under `config`, recovering
    /// any existing store. Creates directories as needed; truncates a
    /// torn WAL tail; heals a crashed rotation. Returns the recovered
    /// store (`None` for a fresh directory — the caller keeps its seed
    /// store and should write an initial snapshot), the open context,
    /// and recovery stats.
    pub fn open(
        config: DurabilityConfig,
        catalog: &Catalog,
        empty_store: impl FnOnce() -> ProductStore,
    ) -> Result<(Option<ProductStore>, Durability, RecoveryStats), WalError> {
        let _span = pse_obs::span("wal.open");
        seed_obs_counters();
        std::fs::create_dir_all(&config.snapshot_dir)?;
        if let Some(parent) = config.wal_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let recovered = recover(&config, catalog, empty_store)?;
        let manifest = segments::read_manifest(&config.snapshot_dir)?;
        let tail = wal::read_wal(&config.wal_path, WAL_HEADER_LEN)?;
        let wal = match (&manifest, &tail) {
            // Healthy pair: truncate the torn tail, keep appending.
            (Some(m), Some(t)) if t.gen == m.wal_gen => {
                Wal::open_for_append(&config.wal_path, t.gen, t.durable_len)?
            }
            // Crashed rotation (or missing log): the manifest's
            // generation wins; its records live in the segments.
            (Some(m), _) => Wal::create(&config.wal_path, m.wal_gen)?,
            // Log without a snapshot yet.
            (None, Some(t)) => Wal::open_for_append(&config.wal_path, t.gen, t.durable_len)?,
            // Fresh directory.
            (None, None) => Wal::create(&config.wal_path, 1)?,
        };
        let (store, stats) = match recovered {
            Some((s, stats)) => (Some(s), stats),
            None => (None, RecoveryStats::default()),
        };
        let unfolded = !wal.is_empty();
        let committer = Arc::new(GroupCommitter::new(config.group.clone()));
        committer.reset(wal.sync_handle()?, wal.len());
        let durability = Durability {
            config,
            wal,
            committer,
            manifest,
            dirty_shards: BTreeSet::new(),
            rewrite_all: unfolded || store.is_none(),
            unfolded_records: unfolded,
        };
        Ok((store, durability, stats))
    }

    /// Whether no snapshot exists yet. Callers should write an initial
    /// full snapshot so pre-loaded (seed) state survives a crash that
    /// happens before the first ingest.
    pub fn needs_initial_snapshot(&self) -> bool {
        self.manifest.is_none()
    }

    /// Append one record and make it durable before returning. The
    /// record is durable when this returns; apply it to the in-memory
    /// store *after* (log-then-apply), under the same exclusion that
    /// ordered the append.
    ///
    /// Implemented as stage + group wait: with no other active writers
    /// the caller immediately elects itself sync leader, so a lone
    /// writer behaves exactly like the old one-fsync-per-record path.
    pub fn log(&mut self, record: &WalRecord) -> Result<(), WalError> {
        let lsn = self.stage(record)?;
        self.committer.wait_durable(lsn)
    }

    /// Stage one record into the log **without** waiting for durability.
    /// Returns the record's commit LSN; pass it to
    /// [`GroupCommitter::wait_durable`] (from [`Self::committer`]) —
    /// outside whatever lock serialized this call — before applying the
    /// record, so fsync-before-apply still holds.
    pub fn stage(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        self.stage_payload(&record.payload())
    }

    /// [`Self::stage`] over a pre-encoded [`WalRecord::payload`], so
    /// concurrent writers encode outside the lock that serializes
    /// staging and the critical section shrinks to the frame write.
    pub fn stage_payload(&mut self, payload: &[u8]) -> Result<u64, WalError> {
        let lsn = self.wal.stage_payload(payload)?;
        self.unfolded_records = true;
        self.committer.staged(lsn);
        Ok(lsn)
    }

    /// The group-commit coordinator for this WAL. Clone the `Arc` and
    /// call [`GroupCommitter::wait_durable`] without holding the lock
    /// that serializes [`Self::stage`] — blocking inside that lock would
    /// keep any group from forming.
    pub fn committer(&self) -> Arc<GroupCommitter> {
        Arc::clone(&self.committer)
    }

    /// Record which shards a just-applied write touched, so the next
    /// incremental snapshot rewrites exactly those segments.
    pub fn mark_dirty(&mut self, shards: impl IntoIterator<Item = usize>) {
        self.dirty_shards.extend(shards);
    }

    /// Current WAL length (header + records), in bytes.
    pub fn wal_len(&self) -> u64 {
        self.wal.len()
    }

    /// Whether the WAL has outgrown the configured threshold and should
    /// be folded into segments.
    pub fn wants_compaction(&self) -> bool {
        self.wal.len().saturating_sub(WAL_HEADER_LEN) > self.config.compaction_threshold_bytes
    }

    /// The configuration this context was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// Write a snapshot and rotate the WAL (the compaction step). Only
    /// segments whose shards are dirty are rewritten — clean shards keep
    /// their existing files via their manifest entries; `shard_clusters`
    /// is called once per rewritten shard to export its cluster map
    /// (`ProductStore::clusters_value`). Returns without touching disk
    /// when nothing changed since the last snapshot.
    pub fn write_snapshot(
        &mut self,
        n_shards: usize,
        config: &RuntimeConfig,
        correspondences: &CorrespondenceSet,
        shard_clusters: impl Fn(usize) -> Value,
    ) -> Result<SnapshotStats, WalError> {
        let _span = pse_obs::span("wal.snapshot");
        let shape_changed = self.manifest.as_ref().is_none_or(|m| m.segments.len() != n_shards);
        let rewrite_all = self.rewrite_all || shape_changed;
        if !rewrite_all && self.dirty_shards.is_empty() && !self.unfolded_records {
            // Nothing to fold; the committed snapshot already covers it.
            let m = self.manifest.as_ref().expect("manifest exists when not rewriting");
            pse_obs::add("snapshot.segments_skipped", n_shards as u64);
            return Ok(SnapshotStats {
                snapshot_id: m.snapshot_id,
                segments_written: 0,
                segments_skipped: n_shards,
                bytes_written: 0,
                total_bytes: m.meta_bytes + m.segments.iter().map(|s| s.bytes).sum::<u64>(),
            });
        }
        let snapshot_id = self.manifest.as_ref().map_or(1, |m| m.snapshot_id + 1);
        let next_gen = self.wal.gen() + 1;
        let dir = self.config.snapshot_dir.clone();
        let mut entries = Vec::with_capacity(n_shards);
        let mut written = 0usize;
        let mut skipped = 0usize;
        let mut bytes_written = 0u64;
        for shard in 0..n_shards {
            if !rewrite_all && !self.dirty_shards.contains(&shard) {
                let prev = self
                    .manifest
                    .as_ref()
                    .and_then(|m| m.segments.iter().find(|s| s.shard == shard))
                    .expect("clean shard has a previous segment");
                entries.push(prev.clone());
                skipped += 1;
                continue;
            }
            let bytes = codec::encode_to_vec(&shard_clusters(shard));
            let file = segments::segment_file_name(shard, snapshot_id);
            let fnv = segments::write_blob(&dir, &file, &bytes)?;
            bytes_written += bytes.len() as u64;
            entries.push(SegmentEntry { shard, file, bytes: bytes.len() as u64, fnv });
            written += 1;
        }
        let meta = SnapshotMeta {
            schema_version: FORMAT_VERSION,
            config: config.clone(),
            correspondences: correspondences.clone(),
        };
        let meta_bytes = codec::encode_to_vec(&meta.to_value());
        let meta_file = segments::meta_file_name(snapshot_id);
        let meta_fnv = segments::write_blob(&dir, &meta_file, &meta_bytes)?;
        bytes_written += meta_bytes.len() as u64;
        // Stage the next log generation before the manifest that names
        // it commits; promote (rename) only after. See the module docs
        // for why every crash window in between is safe.
        Wal::stage_next(&self.config.wal_path, next_gen)?;
        let manifest = Manifest {
            schema_version: FORMAT_VERSION,
            snapshot_id,
            wal_gen: next_gen,
            wal_offset: WAL_HEADER_LEN,
            meta_file,
            meta_bytes: meta_bytes.len() as u64,
            meta_fnv,
            segments: entries,
        };
        segments::write_manifest(&dir, &manifest)?;
        self.wal = Wal::promote_staged(&self.config.wal_path, next_gen)?;
        // Re-arm the committer on the rotated log. Safe because callers
        // exclude in-flight commits around snapshots (the serving
        // layer's snapshot gate), so nothing is staged-but-unsynced.
        self.committer.reset(self.wal.sync_handle()?, self.wal.len());
        segments::gc(&dir, &manifest)?;
        pse_obs::add("snapshot.segments_written", written as u64);
        pse_obs::add("snapshot.segments_skipped", skipped as u64);
        let total_bytes =
            manifest.meta_bytes + manifest.segments.iter().map(|s| s.bytes).sum::<u64>();
        self.manifest = Some(manifest);
        self.dirty_shards.clear();
        self.rewrite_all = false;
        self.unfolded_records = false;
        Ok(SnapshotStats {
            snapshot_id,
            segments_written: written,
            segments_skipped: skipped,
            bytes_written,
            total_bytes,
        })
    }
}
