//! Binary encoding of the serde [`Value`] tree.
//!
//! Every durable artifact (WAL record payloads, snapshot segments, the
//! meta blob) is a `Value` encoded by this module, so the binary path
//! serializes *exactly* what the JSON path serializes — the same derived
//! `Serialize` impls produce the tree both render. The encoding is
//! loss-free where JSON text is lossy-looking: `f64` travels as its raw
//! bit pattern, so decode(encode(v)) == v for every tree, which is what
//! makes recovered stores byte-identical to the JSON oracle.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! value   := tag payload
//! tag     := 0 Null | 1 false | 2 true | 3 U64 | 4 I64 | 5 F64
//!          | 6 Str  | 7 Array | 8 Object
//! U64/I64 := 8 bytes
//! F64     := 8 bytes (f64::to_bits)
//! Str     := len:u32 utf8[len]
//! Array   := count:u32 value[count]
//! Object  := count:u32 (Str value)[count]
//! ```

use serde::Value;

use crate::WalError;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_U64: u8 = 3;
const TAG_I64: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_ARRAY: u8 = 7;
const TAG_OBJECT: u8 = 8;

/// 64-bit FNV-1a over a byte slice — the checksum guarding WAL records
/// and snapshot files (same constants as the shard router's hash).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    bytes.iter().fold(FNV_OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(FNV_PRIME))
}

/// Append the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::U64(n) => {
            out.push(TAG_U64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::I64(n) => {
            out.push(TAG_I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&u32_len(items.len()).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&u32_len(fields.len()).to_le_bytes());
            for (key, value) in fields {
                encode_str(key, out);
                encode_value(value, out);
            }
        }
    }
}

/// Encode `v` into a fresh buffer.
pub fn encode_to_vec(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    encode_value(v, &mut out);
    out
}

/// Decode one value occupying *exactly* `bytes` — trailing garbage is an
/// error, because every durable artifact is a single value.
pub fn decode_value(bytes: &[u8]) -> Result<Value, WalError> {
    let mut at = 0usize;
    let v = decode_at(bytes, &mut at)?;
    if at != bytes.len() {
        return Err(WalError::Corrupt(format!(
            "{} trailing bytes after encoded value",
            bytes.len() - at
        )));
    }
    Ok(v)
}

fn u32_len(n: usize) -> u32 {
    u32::try_from(n).expect("collection too large for the binary codec")
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&u32_len(s.len()).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(bytes: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], WalError> {
    let end = at
        .checked_add(n)
        .filter(|&end| end <= bytes.len())
        .ok_or_else(|| WalError::Corrupt("encoded value truncated".to_string()))?;
    let slice = &bytes[*at..end];
    *at = end;
    Ok(slice)
}

fn take_u32(bytes: &[u8], at: &mut usize) -> Result<u32, WalError> {
    Ok(u32::from_le_bytes(take(bytes, at, 4)?.try_into().expect("4 bytes")))
}

fn take_u64(bytes: &[u8], at: &mut usize) -> Result<u64, WalError> {
    Ok(u64::from_le_bytes(take(bytes, at, 8)?.try_into().expect("8 bytes")))
}

fn take_str(bytes: &[u8], at: &mut usize) -> Result<String, WalError> {
    let len = take_u32(bytes, at)? as usize;
    let raw = take(bytes, at, len)?;
    String::from_utf8(raw.to_vec())
        .map_err(|_| WalError::Corrupt("encoded string is not UTF-8".to_string()))
}

fn decode_at(bytes: &[u8], at: &mut usize) -> Result<Value, WalError> {
    let tag = take(bytes, at, 1)?[0];
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_U64 => Ok(Value::U64(take_u64(bytes, at)?)),
        TAG_I64 => Ok(Value::I64(take_u64(bytes, at)? as i64)),
        TAG_F64 => Ok(Value::F64(f64::from_bits(take_u64(bytes, at)?))),
        TAG_STR => Ok(Value::Str(take_str(bytes, at)?)),
        TAG_ARRAY => {
            let count = take_u32(bytes, at)? as usize;
            // Each element costs at least one tag byte, so a count past
            // the remaining bytes is corruption — reject before allocating.
            if count > bytes.len() - *at {
                return Err(WalError::Corrupt("array count exceeds payload".to_string()));
            }
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_at(bytes, at)?);
            }
            Ok(Value::Array(items))
        }
        TAG_OBJECT => {
            let count = take_u32(bytes, at)? as usize;
            if count > bytes.len() - *at {
                return Err(WalError::Corrupt("object count exceeds payload".to_string()));
            }
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                let key = take_str(bytes, at)?;
                let value = decode_at(bytes, at)?;
                fields.push((key, value));
            }
            Ok(Value::Object(fields))
        }
        other => Err(WalError::Corrupt(format!("unknown value tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let bytes = encode_to_vec(&v);
        let back = decode_value(&bytes).unwrap();
        // Compare via Debug so f64 NaN payloads and -0.0 are compared by
        // representation, not by `==`.
        assert_eq!(format!("{back:?}"), format!("{v:?}"));
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(false));
        roundtrip(Value::Bool(true));
        roundtrip(Value::U64(0));
        roundtrip(Value::U64(u64::MAX));
        roundtrip(Value::I64(-1));
        roundtrip(Value::I64(i64::MIN));
        roundtrip(Value::Str(String::new()));
        roundtrip(Value::Str("ünïcode × emoji 🎯".to_string()));
    }

    #[test]
    fn f64_bit_patterns_are_preserved() {
        for x in [0.0, -0.0, 1.5, 0.1 + 0.2, f64::MIN_POSITIVE, f64::MAX, 1.0 / 3.0] {
            let bytes = encode_to_vec(&Value::F64(x));
            let Value::F64(back) = decode_value(&bytes).unwrap() else { panic!("not F64") };
            assert_eq!(back.to_bits(), x.to_bits(), "bits of {x}");
        }
    }

    #[test]
    fn nested_containers_roundtrip() {
        roundtrip(Value::Array(vec![
            Value::Object(vec![
                ("k".to_string(), Value::Array(vec![Value::U64(1), Value::Null])),
                ("empty".to_string(), Value::Object(Vec::new())),
            ]),
            Value::Str("tail".to_string()),
        ]));
        roundtrip(Value::Array(Vec::new()));
    }

    #[test]
    fn truncation_at_every_byte_is_a_typed_error() {
        let bytes = encode_to_vec(&Value::Array(vec![
            Value::Str("abc".to_string()),
            Value::F64(2.5),
            Value::Object(vec![("x".to_string(), Value::U64(7))]),
        ]));
        for cut in 0..bytes.len() {
            assert!(
                matches!(decode_value(&bytes[..cut]), Err(WalError::Corrupt(_))),
                "cut at {cut} must not decode"
            );
        }
        assert!(decode_value(&bytes).is_ok());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&Value::U64(9));
        bytes.push(0);
        assert!(matches!(decode_value(&bytes), Err(WalError::Corrupt(_))));
    }

    #[test]
    fn oversized_counts_are_rejected_without_allocating() {
        // TAG_ARRAY with a count claiming 4 billion elements in 0 bytes.
        let mut bytes = vec![TAG_ARRAY];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode_value(&bytes), Err(WalError::Corrupt(_))));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }
}
