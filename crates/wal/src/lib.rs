//! Durable catalog state for the product store.
//!
//! The JSON snapshot ([`pse_store::ProductStore::snapshot_json`]) is a
//! single pretty-printed blob written at graceful shutdown — a crash at
//! any other moment loses every ingest since the last clean stop. This
//! crate closes that window with the classic log + checkpoint design:
//!
//! * **[`Wal`]** — a binary write-ahead log. Every `ingest`/`retract`
//!   batch is appended as one length-prefixed, FNV-1a-checksummed record
//!   and fsynced *before* it is applied to the in-memory store, so a
//!   batch the client saw acknowledged is on disk. Concurrent writers
//!   amortize that fsync via group commit ([`GroupCommitter`]): frames
//!   are staged unsynced, one leader `sync_data`s the whole group, and
//!   each waiter blocks until its commit LSN is durable.
//! * **Segmented snapshots** ([`segments`]) — one binary segment per
//!   shard plus a small meta blob (config + correspondences), each
//!   written temp-file → fsync → rename, bound together by a JSON
//!   [`Manifest`] committed with the same atomic-rename protocol. The
//!   incremental mode rewrites only segments whose shards the
//!   dirty-cluster deltas touched since the last snapshot; clean shards
//!   keep their existing files.
//! * **Recovery** ([`recover`]) — load the manifest's segments, then
//!   replay the WAL tail the manifest points at, stopping at the first
//!   torn (short or checksum-failing) record. Recovery is strictly
//!   read-only, so a crashed directory can be inspected (and replayed by
//!   an oracle process) before the server reopens it; the physical
//!   truncation of a torn tail happens only when the WAL is reopened for
//!   appends.
//! * **Compaction** ([`Durability::write_snapshot`]) — folds a long WAL
//!   into fresh segments and rotates the log to a new generation. The
//!   manifest names the WAL generation it pairs with, so a tail from a
//!   previous generation (already folded into segments) is never
//!   replayed twice.
//!
//! The JSON snapshot stays the equivalence oracle: restoring from
//! segments + WAL yields a store whose `snapshot_json` is byte-identical
//! to `restore_json` of the same logical state (pinned by the
//! crash-point proptests in `tests/durability.rs` at the workspace
//! root). That holds because the binary [`codec`] round-trips the serde
//! `Value` tree exactly — including `f64` bit patterns — so no
//! serialization detail can drift between the two paths.

use std::fs::File;
use std::io::Write;
use std::path::Path;

use pse_store::StoreError;

pub mod codec;
pub mod durability;
pub mod group;
pub mod segments;
pub mod wal;

pub use durability::{recover, Durability, DurabilityConfig, RecoveryStats, SnapshotStats};
pub use group::{GroupCommitConfig, GroupCommitter, WriterGuard};
pub use segments::{Manifest, SegmentEntry, FORMAT_VERSION};
pub use wal::{read_wal, Wal, WalRecord, WalTail, WAL_HEADER_LEN, WAL_MAGIC};

/// Why a durability operation failed.
#[derive(Debug)]
pub enum WalError {
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes are not a valid log, segment, or manifest — a
    /// checksum mismatch, bad magic, or an undecodable payload past the
    /// checksum (which a torn write cannot produce).
    Corrupt(String),
    /// Recovered state failed store-level validation (e.g. one offer
    /// claimed by two clusters).
    Store(StoreError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt durable state: {msg}"),
            Self::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Store(e) => Some(e),
            Self::Corrupt(_) => None,
        }
    }
}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<StoreError> for WalError {
    fn from(e: StoreError) -> Self {
        Self::Store(e)
    }
}

/// Write `bytes` to `path` atomically: a `.tmp` sibling in the same
/// directory is written and fsynced, then renamed over the target, then
/// the directory is fsynced so the rename itself is durable. A crash at
/// any point leaves either the old file or the new file — never a torn
/// mix, and never a missing target that previously existed.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path)
}

/// The `.tmp` sibling `atomic_write` stages into — exposed so tests can
/// simulate a crashed partial write at the exact path a real one uses.
pub fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Fsync the directory containing `path`, making a rename into it
/// durable. A no-op on platforms where directories cannot be opened.
pub fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    if let Some(parent) = path.parent() {
        let dir = if parent.as_os_str().is_empty() { Path::new(".") } else { parent };
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pse-wal-lib-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_cleans_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("state.bin");
        atomic_write(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        atomic_write(&path, b"v2-longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v2-longer");
        assert!(!tmp_sibling(&path).exists(), "tmp staging file renamed away");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_staging_write_leaves_old_file_intact() {
        // The regression the shutdown-snapshot bugfix rides on: a crash
        // mid-write used to destroy the only copy. With the staging
        // protocol, a torn `.tmp` (simulated here by truncating a partial
        // write into place) never touches the committed file.
        let dir = tmp_dir("torn");
        let path = dir.join("snapshot.json");
        atomic_write(&path, b"the good snapshot").unwrap();
        // Simulate a crashed writer: partial bytes in the staging file,
        // process dies before rename.
        std::fs::write(tmp_sibling(&path), b"half-writ").unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            b"the good snapshot",
            "old snapshot survives the torn attempt"
        );
        // The next successful writer just overwrites the stale staging file.
        atomic_write(&path, b"the next snapshot").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"the next snapshot");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
