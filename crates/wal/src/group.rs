//! Group commit: amortizing `sync_data` across concurrent writers.
//!
//! The per-record protocol ([`crate::Wal::append`]) pays one fsync per
//! record, so sustained ingest throughput is fsync-bound. Group commit
//! splits the append in two: writers *stage* frames into the log file
//! under the caller's ordering lock ([`crate::Wal::stage_record`], no
//! fsync), then block in [`GroupCommitter::wait_durable`] until their
//! commit LSN is covered by a sync. The first waiter that finds the
//! group ready elects itself **leader**, performs a single `sync_data`
//! covering every staged frame, and wakes the followers.
//!
//! A group is ready when any of these holds:
//!
//! - it is full (`group_size` commits staged and unsynced),
//! - every *active writer* has staged (the group cannot grow — the
//!   self-clocking fast path that keeps a lone writer at zero added
//!   latency; see [`GroupCommitter::writer`]),
//! - the bounded `group_wait` expired for some waiter.
//!
//! Durability semantics are unchanged from the per-record protocol:
//! `wait_durable` returning `Ok` means the record (and the whole log
//! prefix before it) is on disk — fsync-before-apply still holds per
//! group. A failed sync poisons the committer: the leader and every
//! waiter (current and future) gets an error, so no caller can mistake
//! an unsynced record for a durable one.
//!
//! The committer holds a duplicate handle of the log file (same file
//! description), so the leader syncs without borrowing the `Wal` or
//! holding the caller's ordering lock — that is what lets followers
//! stage the next group while the leader's fsync is in flight.

use std::collections::BTreeMap;
use std::fs::File;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::WalError;

/// Group-commit tuning knobs.
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Sync as soon as this many commits are staged (a full group).
    pub group_size: usize,
    /// Upper bound on how long a staged commit waits for company before
    /// a leader syncs the partial group anyway.
    pub group_wait: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        Self { group_size: 8, group_wait: Duration::from_micros(500) }
    }
}

#[derive(Debug)]
struct GroupState {
    /// Duplicate handle of the current log file. Shares the `Wal`'s
    /// file description, so one `sync_data` here covers every frame
    /// staged through the `Wal`.
    file: Option<Arc<File>>,
    /// Highest staged LSN (bytes written to the log file so far).
    staged_lsn: u64,
    /// Highest LSN covered by a completed sync.
    durable_lsn: u64,
    /// Commits staged but not yet covered by a completed sync.
    pending: usize,
    /// A leader is inside `sync_data` right now.
    syncing: bool,
    /// A sync failed; every current and future wait errors out.
    poisoned: bool,
    /// Parked waiters keyed by `(lsn, ticket)` — the LSN each waits on
    /// plus a per-wait ticket so equal LSNs never collide. A completed
    /// sync unparks exactly the waiters it covered (plus one uncovered
    /// waiter to keep leader election moving); waiters past their
    /// deadline wake themselves via `park_timeout`.
    waiting: BTreeMap<(u64, u64), std::thread::Thread>,
    /// Ticket source for `waiting` keys.
    tickets: u64,
}

/// The shared group-commit coordinator for one WAL. See module docs.
#[derive(Debug)]
pub struct GroupCommitter {
    cfg: GroupCommitConfig,
    state: Mutex<GroupState>,
    /// Writers currently inside a commit operation (see [`Self::writer`]).
    writers: AtomicUsize,
}

/// RAII registration of an active writer ([`GroupCommitter::writer`]).
#[derive(Debug)]
pub struct WriterGuard<'a> {
    committer: &'a GroupCommitter,
}

impl Drop for WriterGuard<'_> {
    fn drop(&mut self) {
        self.committer.writers.fetch_sub(1, Ordering::Relaxed);
    }
}

impl GroupCommitter {
    /// A committer with no log attached yet; [`Self::reset`] arms it.
    pub fn new(cfg: GroupCommitConfig) -> Self {
        Self {
            cfg,
            state: Mutex::new(GroupState {
                file: None,
                staged_lsn: 0,
                durable_lsn: 0,
                pending: 0,
                syncing: false,
                poisoned: false,
                waiting: BTreeMap::new(),
                tickets: 0,
            }),
            writers: AtomicUsize::new(0),
        }
    }

    /// The knobs this committer runs with.
    pub fn config(&self) -> &GroupCommitConfig {
        &self.cfg
    }

    /// Point the committer at a fresh (or rotated) log file whose length
    /// `durable_lsn` is already fully durable. Callers must exclude
    /// in-flight commits first — the serving layer's snapshot gate does —
    /// so no waiter can observe the LSN space jumping backwards.
    pub fn reset(&self, file: File, durable_lsn: u64) {
        let mut s = self.state.lock().expect("group-commit state");
        debug_assert!(!s.syncing && s.pending == 0, "reset with commits in flight");
        let stale = std::mem::take(&mut s.waiting);
        let tickets = s.tickets;
        *s = GroupState {
            file: Some(Arc::new(file)),
            staged_lsn: durable_lsn,
            durable_lsn,
            pending: 0,
            syncing: false,
            poisoned: false,
            waiting: BTreeMap::new(),
            tickets,
        };
        drop(s);
        for (_, thread) in stale {
            thread.unpark();
        }
    }

    /// Register the calling thread as an active writer for the lifetime
    /// of the returned guard (ideally the whole commit operation, from
    /// before staging until after apply). Leader election compares the
    /// staged count against the active-writer count: once every active
    /// writer has staged, the group cannot grow, so the leader syncs
    /// immediately instead of waiting out `group_wait`.
    pub fn writer(&self) -> WriterGuard<'_> {
        self.writers.fetch_add(1, Ordering::Relaxed);
        WriterGuard { committer: self }
    }

    /// Note a record staged at `lsn`. Call under the same exclusion that
    /// ordered the staging write (the caller's durability mutex), so
    /// `staged_lsn` only ever advances.
    pub fn staged(&self, lsn: u64) {
        let mut s = self.state.lock().expect("group-commit state");
        debug_assert!(lsn >= s.staged_lsn, "stage calls must be ordered");
        s.staged_lsn = s.staged_lsn.max(lsn);
        s.pending += 1;
        // No notify: the staging thread enters `wait_durable` next and
        // runs leader election itself, so waking the already-parked
        // waiters here only makes them recompute and sleep again — a
        // per-commit broadcast herd. Waiters that could newly lead are
        // covered by their bounded `group_wait` timeout.
    }

    /// Block until every byte up to `lsn` is durable, electing this
    /// thread as the sync leader when the group is ready (module docs).
    /// `Ok` means the log prefix through `lsn` is on disk.
    pub fn wait_durable(&self, lsn: u64) -> Result<(), WalError> {
        let entered = Instant::now();
        let deadline = entered + self.cfg.group_wait;
        let mut ticket: Option<(u64, u64)> = None;
        let mut s = self.state.lock().expect("group-commit state");
        loop {
            if let Some(key) = ticket.take() {
                // Back from a park: drop our waiter entry (the waker
                // usually removed it already when it unparked us).
                s.waiting.remove(&key);
            }
            if s.durable_lsn >= lsn {
                pse_obs::observe("wal.group_wait_us", entered.elapsed().as_micros() as u64);
                return Ok(());
            }
            if s.poisoned {
                return Err(WalError::Io(std::io::Error::other(
                    "wal group sync failed; committer is poisoned",
                )));
            }
            let quorum =
                self.writers.load(Ordering::Relaxed).max(1).min(self.cfg.group_size.max(1));
            let now = Instant::now();
            if !s.syncing && (s.pending >= quorum || now >= deadline) {
                // Become the leader: one sync_data covers every frame
                // staged so far, with no locks held across the IO.
                s.syncing = true;
                let target = s.staged_lsn;
                let covered = s.pending;
                let file = Arc::clone(s.file.as_ref().expect("committer has a log handle"));
                drop(s);
                let started = Instant::now();
                let synced = file.sync_data();
                pse_obs::observe("wal.fsync_us", started.elapsed().as_micros() as u64);
                s = self.state.lock().expect("group-commit state");
                s.syncing = false;
                match synced {
                    Ok(()) => {
                        pse_obs::observe("wal.group_size", covered as u64);
                        s.durable_lsn = s.durable_lsn.max(target);
                        // Commits staged while the sync was in flight
                        // stay pending for the next leader.
                        s.pending = s.pending.saturating_sub(covered);
                        // Wake exactly the waiters this sync covered —
                        // the next group's would only recompute and
                        // sleep again — plus, when commits are already
                        // pending, one uncovered waiter so leader
                        // election keeps moving even if that group
                        // fully staged while we were syncing.
                        let durable = s.durable_lsn;
                        let uncovered = s.waiting.split_off(&(durable + 1, 0));
                        let mut wake: Vec<std::thread::Thread> =
                            std::mem::replace(&mut s.waiting, uncovered).into_values().collect();
                        if s.pending >= quorum {
                            // The next group may have fully staged while
                            // we were syncing — every member parked, no
                            // future stager to run the election. Hand
                            // one of them the leader check; sub-quorum
                            // groups are driven by arriving stagers and
                            // the bounded deadline instead.
                            if let Some((&key, _)) = s.waiting.iter().next() {
                                wake.extend(s.waiting.remove(&key));
                            }
                        }
                        drop(s);
                        for thread in wake {
                            thread.unpark();
                        }
                        s = self.state.lock().expect("group-commit state");
                    }
                    Err(e) => {
                        s.poisoned = true;
                        let stale = std::mem::take(&mut s.waiting);
                        drop(s);
                        for (_, thread) in stale {
                            thread.unpark();
                        }
                        return Err(e.into());
                    }
                }
                continue;
            }
            // Not our turn to lead: park until the covering sync (or a
            // poisoning) unparks us. Past the deadline (a leader is
            // mid-sync), re-arm a full `group_wait` so the loop never
            // busy-spins.
            let wait = if now >= deadline {
                self.cfg.group_wait.max(Duration::from_micros(100))
            } else {
                deadline - now
            };
            s.tickets += 1;
            let key = (lsn, s.tickets);
            ticket = Some(key);
            s.waiting.insert(key, std::thread::current());
            drop(s);
            std::thread::park_timeout(wait);
            s = self.state.lock().expect("group-commit state");
        }
    }

    /// Highest LSN known durable (for tests and diagnostics).
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().expect("group-commit state").durable_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::{read_wal, Wal, WalRecord};
    use pse_core::OfferId;
    use std::path::PathBuf;
    use std::sync::Mutex as StdMutex;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pse-wal-group-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn retract(ids: &[u64]) -> WalRecord {
        WalRecord::Retract(ids.iter().copied().map(OfferId).collect())
    }

    fn committer_for(wal: &Wal, cfg: GroupCommitConfig) -> GroupCommitter {
        let c = GroupCommitter::new(cfg);
        c.reset(wal.sync_handle().unwrap(), wal.len());
        c
    }

    #[test]
    fn lone_writer_commits_without_waiting_for_a_full_group() {
        let dir = tmp("lone");
        let mut wal = Wal::create(&dir.join("wal.log"), 1).unwrap();
        // A huge group and a huge wait: only the self-clocking path
        // (all active writers staged) can return promptly.
        let cfg = GroupCommitConfig { group_size: 64, group_wait: Duration::from_secs(30) };
        let committer = committer_for(&wal, cfg);
        let _w = committer.writer();
        let started = Instant::now();
        let lsn = wal.stage_record(&retract(&[1])).unwrap();
        committer.staged(lsn);
        committer.wait_durable(lsn).unwrap();
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "lone writer must not wait out group_wait"
        );
        assert_eq!(committer.durable_lsn(), lsn);
        let tail = read_wal(wal.path(), 0).unwrap().unwrap();
        assert_eq!(tail.durable_len, lsn);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_all_become_durable() {
        let dir = tmp("many");
        let wal = Wal::create(&dir.join("wal.log"), 1).unwrap();
        let committer = std::sync::Arc::new(committer_for(
            &wal,
            GroupCommitConfig { group_size: 4, group_wait: Duration::from_millis(2) },
        ));
        let wal = std::sync::Arc::new(StdMutex::new(wal));
        let n = 16u64;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let committer = std::sync::Arc::clone(&committer);
                let wal = std::sync::Arc::clone(&wal);
                std::thread::spawn(move || {
                    let _w = committer.writer();
                    let lsn = {
                        let mut w = wal.lock().unwrap();
                        let lsn = w.stage_record(&retract(&[i])).unwrap();
                        committer.staged(lsn);
                        lsn
                    };
                    committer.wait_durable(lsn).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let path = wal.lock().unwrap().path().to_path_buf();
        let tail = read_wal(&path, 0).unwrap().unwrap();
        assert_eq!(tail.records.len(), n as usize);
        assert_eq!(tail.torn_bytes, 0);
        assert_eq!(committer.durable_lsn(), tail.durable_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bounded_wait_syncs_a_partial_group() {
        let dir = tmp("partial");
        let mut wal = Wal::create(&dir.join("wal.log"), 1).unwrap();
        let cfg = GroupCommitConfig { group_size: 8, group_wait: Duration::from_millis(20) };
        let committer = committer_for(&wal, cfg);
        // Two registered writers but only one ever stages: the quorum
        // of 2 is unreachable, so only the deadline can release us.
        let _w1 = committer.writer();
        let _w2 = committer.writer();
        let started = Instant::now();
        let lsn = wal.stage_record(&retract(&[9])).unwrap();
        committer.staged(lsn);
        committer.wait_durable(lsn).unwrap();
        let waited = started.elapsed();
        assert!(waited >= Duration::from_millis(15), "deadline path should bound the wait");
        assert!(waited < Duration::from_secs(5), "partial group must still commit");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
